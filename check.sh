#!/usr/bin/env bash
# Repository gate: offline build, full test suite, and the websec-lint
# static checks (which also run the WS001-WS005 analyzer unit tests as
# part of the workspace tests). Fails on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --offline"
cargo test -q --offline

echo "==> websec-lint --deny-warnings"
cargo run --release --offline --bin websec-lint -- --deny-warnings

echo "==> serving-layer throughput smoke (BENCH_serving.json)"
cargo run --release --offline -p websec-examples --bin serving_bench

echo "check.sh: all gates passed"
