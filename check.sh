#!/usr/bin/env bash
# Repository gate: offline build, full test suite, the websec-lint static
# checks, the WS001-WS012 analyzer over every example stack (byte-diffed
# for determinism, failing on error findings), and the serving benchmark
# with its speedup and incremental-analysis gates. Fails on the first
# broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

# Chaos sweep width for tests/tests/chaos.rs: 25 seeds keeps tier-1 fast;
# raise it (e.g. CHAOS_SEEDS=200 ./check.sh) for a deep soak, or pin a
# single failing seed when reproducing (see README "Testing & chaos").
export CHAOS_SEEDS="${CHAOS_SEEDS:-25}"

echo "==> cargo test --offline (CHAOS_SEEDS=${CHAOS_SEEDS})"
cargo test -q --offline

echo "==> websec-lint --deny-warnings"
cargo run --release --offline --bin websec-lint -- --deny-warnings

echo "==> analyzer over example stacks (deterministic, fails on errors)"
cargo run --release --offline -p websec-examples --bin analyze_examples > ANALYSIS_run1.json
cargo run --release --offline -p websec-examples --bin analyze_examples > ANALYSIS_run2.json
if ! cmp -s ANALYSIS_run1.json ANALYSIS_run2.json; then
    echo "check.sh: FAIL — analyze_examples output is not deterministic" >&2
    diff ANALYSIS_run1.json ANALYSIS_run2.json >&2 || true
    exit 1
fi
mv ANALYSIS_run1.json ANALYSIS_examples.json
rm -f ANALYSIS_run2.json

echo "==> serving-layer worker sweep (BENCH_serving.json)"
cargo run --release --offline -p websec-examples --bin serving_bench

# Gate: the 4-worker batch engine must not lose to the serial serve() loop.
serial_qps=$(awk -F': ' '/"serial_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
parallel_qps=$(awk -F': ' '/"parallel_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
ratio=$(awk "BEGIN {printf \"%.2f\", $parallel_qps / $serial_qps}")
echo "==> parallel/serial ratio: ${ratio}x (parallel ${parallel_qps} q/s vs serial ${serial_qps} q/s)"
if awk "BEGIN {exit !($parallel_qps < $serial_qps)}"; then
    echo "check.sh: FAIL — parallel serving (${parallel_qps} q/s) is slower than serial (${serial_qps} q/s)" >&2
    exit 1
fi

# Gate: the batch engine must keep its edge under the seeded ~10% fault plan.
f_serial_qps=$(awk -F': ' '/"faulted_serial_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
f_parallel_qps=$(awk -F': ' '/"faulted_parallel_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
f_ratio=$(awk "BEGIN {printf \"%.2f\", $f_parallel_qps / $f_serial_qps}")
echo "==> faulted parallel/serial ratio: ${f_ratio}x (parallel ${f_parallel_qps} q/s vs serial ${f_serial_qps} q/s)"
if awk "BEGIN {exit !($f_parallel_qps < $f_serial_qps)}"; then
    echo "check.sh: FAIL — faulted parallel serving (${f_parallel_qps} q/s) is slower than faulted serial (${f_serial_qps} q/s)" >&2
    exit 1
fi

# Gate: incremental re-analysis after one mutation must not cost more than
# the cold full fixpoint (it re-runs only the affected passes).
a_full=$(awk -F': ' '/"analysis_full_us"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
a_incr=$(awk -F': ' '/"analysis_incremental_us"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
echo "==> analysis full ${a_full} us vs incremental ${a_incr} us"
if awk "BEGIN {exit !($a_incr > $a_full)}"; then
    echo "check.sh: FAIL — incremental re-analysis (${a_incr} us) is slower than a full run (${a_full} us)" >&2
    exit 1
fi

echo "check.sh: all gates passed"
