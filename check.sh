#!/usr/bin/env bash
# Repository gate: offline build, full test suite, the websec-lint static
# checks, the WS001-WS012 analyzer over every example stack (byte-diffed
# for determinism, failing on error findings), the WS013-WS018 static
# policy verifier over the seed fixtures (byte-diffed against the
# committed ANALYSIS_policy.json baseline), and the serving benchmark
# with its speedup and incremental-analysis gates. Fails on the first
# broken step. `./check.sh --verify-policies` runs just the policy
# verifier step.
set -euo pipefail
cd "$(dirname "$0")"

# Static policy verifier (WS013-WS018) over the seed fixtures: rebuilt
# twice for determinism, then byte-diffed against the committed
# ANALYSIS_policy.json baseline, exactly like LOCKORDER.json. Runs inside
# the full gate and standalone via `./check.sh --verify-policies`.
verify_policies_step() {
    echo "==> policy verifier baseline (ANALYSIS_policy.json)"
    cargo run --release --offline -p websec-examples --bin verify_policies > ANALYSIS_policy_run1.json
    cargo run --release --offline -p websec-examples --bin verify_policies > ANALYSIS_policy_run2.json
    if ! cmp -s ANALYSIS_policy_run1.json ANALYSIS_policy_run2.json; then
        echo "check.sh: FAIL — verify_policies output is not deterministic" >&2
        diff ANALYSIS_policy_run1.json ANALYSIS_policy_run2.json >&2 || true
        exit 1
    fi
    if ! cmp -s ANALYSIS_policy_run1.json ANALYSIS_policy.json; then
        echo "check.sh: FAIL — policy-verifier findings drifted from the committed ANALYSIS_policy.json" >&2
        echo "  (inspect the diff; if the change is intended, commit the new baseline)" >&2
        diff ANALYSIS_policy.json ANALYSIS_policy_run1.json >&2 || true
        exit 1
    fi
    rm -f ANALYSIS_policy_run1.json ANALYSIS_policy_run2.json
}

if [ "${1:-}" = "--verify-policies" ]; then
    echo "==> cargo build --release --offline"
    cargo build --release --offline
    verify_policies_step
    echo "check.sh: policy-verifier gate passed"
    exit 0
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

# Chaos sweep width for tests/tests/chaos.rs: 25 seeds keeps tier-1 fast;
# raise it (e.g. CHAOS_SEEDS=200 ./check.sh) for a deep soak, or pin a
# single failing seed when reproducing (see README "Testing & chaos").
export CHAOS_SEEDS="${CHAOS_SEEDS:-25}"

echo "==> cargo test --offline (CHAOS_SEEDS=${CHAOS_SEEDS})"
cargo test -q --offline

# Concurrency-correctness pass: the chaos + serving + lockdep suites rerun
# with the lock-order/race detector armed; any WS110/WS111 finding fails a
# test. 200 seeds is the regression oracle for future lock-free refactors
# (LOCKDEP_CHAOS_SEEDS overrides).
export LOCKDEP_CHAOS_SEEDS="${LOCKDEP_CHAOS_SEEDS:-200}"
echo "==> cargo test with WEBSEC_LOCKDEP=1 (CHAOS_SEEDS=${LOCKDEP_CHAOS_SEEDS})"
WEBSEC_LOCKDEP=1 CHAOS_SEEDS="${LOCKDEP_CHAOS_SEEDS}" \
    cargo test -q --offline -p websec-integration-tests \
    --test chaos --test serving --test lockdep --test scheduler \
    --test compiled_decisions --test scenarios

echo "==> lock-order graph baseline (LOCKORDER.json)"
cargo run --release --offline -p websec-examples --bin lockorder_dump LOCKORDER_run1.json
cargo run --release --offline -p websec-examples --bin lockorder_dump LOCKORDER_run2.json
if ! cmp -s LOCKORDER_run1.json LOCKORDER_run2.json; then
    echo "check.sh: FAIL — lockorder_dump output is not deterministic" >&2
    diff LOCKORDER_run1.json LOCKORDER_run2.json >&2 || true
    exit 1
fi
if ! cmp -s LOCKORDER_run1.json LOCKORDER.json; then
    echo "check.sh: FAIL — lock-order graph drifted from the committed LOCKORDER.json" >&2
    echo "  (inspect the diff; if the change is intended, commit the new baseline)" >&2
    diff LOCKORDER.json LOCKORDER_run1.json >&2 || true
    exit 1
fi
rm -f LOCKORDER_run1.json LOCKORDER_run2.json

echo "==> websec-lint --deny-warnings"
cargo run --release --offline --bin websec-lint -- --deny-warnings

echo "==> analyzer over example stacks (deterministic, fails on errors)"
cargo run --release --offline -p websec-examples --bin analyze_examples > ANALYSIS_run1.json
cargo run --release --offline -p websec-examples --bin analyze_examples > ANALYSIS_run2.json
if ! cmp -s ANALYSIS_run1.json ANALYSIS_run2.json; then
    echo "check.sh: FAIL — analyze_examples output is not deterministic" >&2
    diff ANALYSIS_run1.json ANALYSIS_run2.json >&2 || true
    exit 1
fi
mv ANALYSIS_run1.json ANALYSIS_examples.json
rm -f ANALYSIS_run2.json

verify_policies_step

echo "==> serving-layer worker sweep (BENCH_serving.json)"
cargo run --release --offline -p websec-examples --bin serving_bench

# Gate: the 4-worker batch engine must not lose to the serial serve() loop.
serial_qps=$(awk -F': ' '/"serial_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
parallel_qps=$(awk -F': ' '/"parallel_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
ratio=$(awk "BEGIN {printf \"%.2f\", $parallel_qps / $serial_qps}")
echo "==> parallel/serial ratio: ${ratio}x (parallel ${parallel_qps} q/s vs serial ${serial_qps} q/s)"
if awk "BEGIN {exit !($parallel_qps < $serial_qps)}"; then
    echo "check.sh: FAIL — parallel serving (${parallel_qps} q/s) is slower than serial (${serial_qps} q/s)" >&2
    exit 1
fi

# Gate: the batch engine must keep its edge under the seeded ~10% fault plan.
f_serial_qps=$(awk -F': ' '/"faulted_serial_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
f_parallel_qps=$(awk -F': ' '/"faulted_parallel_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
f_ratio=$(awk "BEGIN {printf \"%.2f\", $f_parallel_qps / $f_serial_qps}")
echo "==> faulted parallel/serial ratio: ${f_ratio}x (parallel ${f_parallel_qps} q/s vs serial ${f_serial_qps} q/s)"
if awk "BEGIN {exit !($f_parallel_qps < $f_serial_qps)}"; then
    echo "check.sh: FAIL — faulted parallel serving (${f_parallel_qps} q/s) is slower than faulted serial (${f_serial_qps} q/s)" >&2
    exit 1
fi

# Gate: on the worst-case no-duplicate workload (nothing coalesces, no
# cache level answers twice) an 8-worker batch must beat 1 worker by the
# core-aware factor the bench computed (3x on >= 8 cores, a no-regression
# floor on a single-core box).
nd_1w=$(awk -F': ' '/"nodup_qps_1w"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
nd_8w=$(awk -F': ' '/"nodup_qps_8w"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
nd_speedup=$(awk -F': ' '/"nodup_speedup_8w_over_1w"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
nd_expected=$(awk -F': ' '/"nodup_expected_speedup"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
echo "==> no-dup 8w/1w speedup: ${nd_speedup}x (8w ${nd_8w} q/s vs 1w ${nd_1w} q/s; expected >= ${nd_expected}x)"
if awk "BEGIN {exit !($nd_speedup < $nd_expected)}"; then
    echo "check.sh: FAIL — no-dup 8-worker speedup ${nd_speedup}x is below the core-aware bar ${nd_expected}x" >&2
    exit 1
fi

# Gate: incremental re-analysis after one mutation must not cost more than
# the cold full fixpoint (it re-runs only the affected passes).
a_full=$(awk -F': ' '/"analysis_full_us"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
a_incr=$(awk -F': ' '/"analysis_incremental_us"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
echo "==> analysis full ${a_full} us vs incremental ${a_incr} us"
if awk "BEGIN {exit !($a_incr > $a_full)}"; then
    echo "check.sh: FAIL — incremental re-analysis (${a_incr} us) is slower than a full run (${a_full} us)" >&2
    exit 1
fi

# Gate: the policy verifier's token-keyed incremental re-check after a
# snapshot republication must not cost more than the cold WS013-WS018 run
# (it reuses the cached report wholesale when the policy base is unchanged).
pv_full=$(awk -F': ' '/"policy_verify_full_us"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
pv_incr=$(awk -F': ' '/"policy_verify_incremental_us"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
echo "==> policy verify full ${pv_full} us vs incremental ${pv_incr} us"
if awk "BEGIN {exit !($pv_incr > $pv_full)}"; then
    echo "check.sh: FAIL — incremental policy re-verify (${pv_incr} us) is slower than a full run (${pv_full} us)" >&2
    exit 1
fi

# Gate: the snapshot-compiled decision path must beat the interpreting
# engine >= 5x on unique-subject cache-miss traffic over the generated
# large store (100k docs, 10k subjects).
c_interp=$(awk -F': ' '/"interpreted_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
c_comp=$(awk -F': ' '/"compiled_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
c_speedup=$(awk -F': ' '/"compiled_speedup"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
echo "==> compiled/interpreted ratio: ${c_speedup}x (compiled ${c_comp} v/s vs interpreted ${c_interp} v/s)"
if awk "BEGIN {exit !($c_speedup < 5.0)}"; then
    echo "check.sh: FAIL — compiled decision path (${c_comp} v/s) is below 5x the interpreter (${c_interp} v/s)" >&2
    exit 1
fi

# Gate: the two decision paths must agree byte-for-byte on the sampled
# traffic, and the analyzer cross-check (WS001/WS002 + equivalence classes
# re-run over the compiled form) must accept the published artifact.
c_equiv=$(awk -F': ' '/"compiled_equivalent"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
c_verify=$(awk -F': ' '/"compiled_verify_ok"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
if [ "${c_equiv}" != "1" ]; then
    echo "check.sh: FAIL — compiled and interpreted views diverged on sampled traffic" >&2
    exit 1
fi
if [ "${c_verify}" != "1" ]; then
    echo "check.sh: FAIL — analyzer cross-check rejected the compiled artifact (WS109)" >&2
    exit 1
fi

# Gate: the tracked sync wrappers with the detector compiled in but
# disabled must stay within 2% of raw std::sync on the parallel probe.
ld_untracked=$(awk -F': ' '/"lockdep_probe_untracked_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
ld_tracked=$(awk -F': ' '/"lockdep_probe_tracked_off_qps"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
ld_ratio=$(awk -F': ' '/"lockdep_off_ratio"/ {gsub(/,/, "", $2); print $2}' BENCH_serving.json)
echo "==> lockdep detector-off ratio: ${ld_ratio} (tracked-off ${ld_tracked} op/s vs raw ${ld_untracked} op/s)"
if awk "BEGIN {exit !($ld_ratio < 0.98)}"; then
    echo "check.sh: FAIL — detector-off overhead exceeds 2% (tracked-off ${ld_tracked} op/s < 0.98 x ${ld_untracked} op/s)" >&2
    exit 1
fi

# Scenario smoke suite: the declared workloads (baseline, no-dup, faulted,
# revocation storm, adversarial replay/tamper, UDDI churn, mining) run
# with their invariants checked and their history appended to
# BENCH_scenarios.json. The fingerprint cache makes unchanged re-runs
# free; --gate-trend fails a scenario whose headline q/s drops below
# SCENARIO_TREND_FLOOR (default 0.5) times its history median — both the
# cache and the trend gate bootstrap cleanly on a missing or short
# history (first run: everything executes, trend passes). SCENARIO_FILTER
# narrows the suite by name substring when iterating on one scenario.
export SCENARIO_FILTER="${SCENARIO_FILTER:-}"
echo "==> scenario smoke suite (BENCH_scenarios.json, SCENARIO_report.html)"
cargo run --release --offline -p websec-scenarios -- --suite smoke --gate-trend

echo "check.sh: all gates passed"
