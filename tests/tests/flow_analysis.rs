//! End-to-end exercise of the whole-stack information-flow passes
//! (WS006–WS012) through the public stack API, the seeded determinism /
//! idempotence property suite, and the serving layer's incremental
//! re-analysis and [`AnalysisGate`] behavior.
//!
//! Each pass gets a purpose-built firing configuration plus a minimal
//! change that silences it; a fully configured well-formed stack analyzes
//! clean end to end.

use std::collections::BTreeSet;

use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;
use websec_core::rdf::schema::rdfs;
use websec_core::rdf::store::rdf as rdf_vocab;
use websec_core::uddi::{BindingTemplate, TModel};

fn hospital() -> Document {
    Document::parse(
        "<hospital><patient id=\"p1\" ssn=\"1\"><name>Alice</name></patient>\
         <admin><budget>9</budget></admin></hospital>",
    )
    .unwrap()
}

fn portion(path: &str) -> ObjectSpec {
    ObjectSpec::Portion {
        document: "h.xml".into(),
        path: Path::parse(path).unwrap(),
    }
}

fn base_stack() -> SecureWebStack {
    let mut s = SecureWebStack::new([7u8; 32]);
    s.add_document("h.xml", hospital(), ContextLabel::fixed(Level::Unclassified));
    s.policies.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(portion("//patient")).privilege(Privilege::Read).grant());
    s
}

fn iri_triple(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// A store whose schema closure declassifies: the premise
/// `(alice type CovertOperative)` is Secret, yet the entailed
/// `(alice type SecretAgent)` carries no label (Unclassified).
fn leaky_store() -> SecureStore {
    let mut ss = SecureStore::new();
    ss.store
        .insert(&iri_triple("alice", rdf_vocab::TYPE, "CovertOperative"));
    ss.store
        .insert(&iri_triple("CovertOperative", rdfs::SUB_CLASS_OF, "SecretAgent"));
    ss.add_label(
        TriplePattern::new(
            PatternTerm::v("s"),
            PatternTerm::c(Term::iri(rdf_vocab::TYPE)),
            PatternTerm::c(Term::iri("CovertOperative")),
        ),
        ContextLabel::fixed(Level::Secret),
    );
    ss
}

/// [`leaky_store`] with the entailed pattern labeled as high as its
/// premise, so the entailment no longer declassifies.
fn sealed_store() -> SecureStore {
    let mut ss = leaky_store();
    ss.add_label(
        TriplePattern::new(
            PatternTerm::v("s"),
            PatternTerm::c(Term::iri(rdf_vocab::TYPE)),
            PatternTerm::c(Term::iri("SecretAgent")),
        ),
        ContextLabel::fixed(Level::Secret),
    );
    ss
}

/// A registry exposing one binding that implements the (registered)
/// `tm:pay` tModel.
fn registry_with_binding() -> UddiRegistry {
    let mut reg = UddiRegistry::new();
    reg.save_tmodel(TModel::new("tm:pay", "payment interface"));
    let mut svc = BusinessService::new("s1", "payments");
    svc.binding_templates.push(BindingTemplate {
        binding_key: "bind1".into(),
        access_point: "https://acme.example/pay".into(),
        description: String::new(),
        tmodel_keys: vec!["tm:pay".into()],
    });
    let mut biz = BusinessEntity::new("b1", "Acme");
    biz.services.push(svc);
    reg.save_business(biz);
    reg
}

fn notary_profile() -> SubjectProfile {
    let mut p = SubjectProfile::new("alice");
    p.credentials.push(Credential::new("notary", "alice"));
    p
}

/// A stack with every analyzer input section populated and well-formed:
/// the default-configuration regression for WS001–WS012.
fn configured_stack() -> SecureWebStack {
    let mut s = base_stack();
    s.policies.add(Authorization::for_subject(SubjectSpec::WithCredentials(CredentialExpr::OfType("notary".into()))).on(portion("//admin")).privilege(Privilege::Read).id(5).grant());
    s.policies
        .hierarchy
        .add_seniority(Role::new("chief"), Role::new("intern"));

    let mut store = sealed_store();
    store
        .hierarchy
        .add_seniority(Role::new("chief"), Role::new("intern"));
    s.semantic_stores.push(("agents".into(), store));

    s.privacy_constraints
        .push(PrivacyConstraint::new(&["name", "diagnosis"], PrivacyLevel::Private));
    s.table_schemas.push((
        "admissions".into(),
        vec!["patient_id".into(), "name".into()],
    ));
    s.table_schemas.push((
        "treatments".into(),
        vec!["visit_id".into(), "diagnosis".into()],
    ));

    let map = RegionMap::build(&s.policies, "h.xml", &hospital());
    let doctor = SubjectProfile::new("doctor");
    let keyring = KeyAuthority::new("h.xml", [9u8; 32]).keys_for(&s.policies, &map, &doctor);
    s.dissemination_audits.push((map, vec![(doctor, keyring)]));

    let signed: BTreeSet<String> = std::iter::once("tm:pay".to_string()).collect();
    s.uddi = Some((registry_with_binding(), signed));

    s.registered_profiles.push(notary_profile());
    s.registered_profiles.push(SubjectProfile::new("doctor"));
    s
}

#[test]
fn configured_stack_analyzes_clean() {
    let s = configured_stack();
    let report = s.analyze();
    assert!(report.is_clean(), "{}", report.human());
    assert!(s.analyze_strict().is_ok());
}

#[test]
fn ws006_entailment_leak_fires_and_labeled_entailment_silences() {
    let mut s = base_stack();
    s.semantic_stores.push(("agents".into(), leaky_store()));
    let report = s.analyze();
    let hits = report.with_code("WS006");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(hits[0].span.contains("rdf store 'agents'"), "{}", hits[0].span);
    // The leak is error severity: strict boot refuses.
    match s.analyze_strict() {
        Err(StackError::Misconfigured(m)) => assert!(m.contains("WS006"), "{m}"),
        other => panic!("expected Misconfigured, got {other:?}"),
    }

    s.semantic_stores[0].1 = sealed_store();
    let report = s.analyze();
    assert!(report.with_code("WS006").is_empty(), "{}", report.human());
}

#[test]
fn ws007_cross_table_join_fires_and_guarding_join_column_silences() {
    let mut s = base_stack();
    s.privacy_constraints
        .push(PrivacyConstraint::new(&["name", "diagnosis"], PrivacyLevel::Private));
    s.table_schemas
        .push(("admissions".into(), vec!["patient_id".into(), "name".into()]));
    s.table_schemas.push((
        "treatments".into(),
        vec!["patient_id".into(), "diagnosis".into()],
    ));
    let report = s.analyze();
    let hits = report.with_code("WS007");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(
        hits[0].span.contains("admissions") && hits[0].span.contains("treatments"),
        "{}",
        hits[0].span
    );
    assert!(hits[0].message.contains("patient_id"), "{}", hits[0].message);

    // Covering the join column with its own constraint severs the linkage.
    s.privacy_constraints.push(PrivacyConstraint::new(
        &["patient_id", "diagnosis"],
        PrivacyLevel::Private,
    ));
    let report = s.analyze();
    assert!(report.with_code("WS007").is_empty(), "{}", report.human());
}

#[test]
fn ws008_revoked_keyring_fires_and_current_entitlement_silences() {
    // Keys are cut while the doctor's grant is live: the audit is clean.
    let mut s = base_stack();
    let map = RegionMap::build(&s.policies, "h.xml", &hospital());
    assert!(!map.regions.is_empty());
    let doctor = SubjectProfile::new("doctor");
    let keyring = KeyAuthority::new("h.xml", [9u8; 32]).keys_for(&s.policies, &map, &doctor);
    assert!(!keyring.is_empty());
    s.dissemination_audits.push((map, vec![(doctor, keyring)]));
    let report = s.analyze();
    assert!(report.with_code("WS008").is_empty(), "{}", report.human());

    // Revoking the grant without re-keying leaves the key over-covering.
    let granted = s.policies.authorizations()[0].id;
    assert!(s.policies.revoke(granted));
    let report = s.analyze();
    let hits = report.with_code("WS008");
    assert!(!hits.is_empty(), "{}", report.human());
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
    assert!(hits[0].span.contains("subject 'doctor'"), "{}", hits[0].span);
    assert!(hits[0].message.contains("revocation"), "{}", hits[0].message);
}

#[test]
fn ws009_opposed_hierarchies_fire_and_aligned_hierarchies_silence() {
    let mut s = base_stack();
    s.policies
        .hierarchy
        .add_seniority(Role::new("chief"), Role::new("intern"));
    let mut store = SecureStore::new();
    store
        .hierarchy
        .add_seniority(Role::new("intern"), Role::new("chief"));
    s.semantic_stores.push(("agents".into(), store));
    let report = s.analyze();
    let hits = report.with_code("WS009");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(
        hits[0].span.contains("chief") && hits[0].span.contains("intern"),
        "{}",
        hits[0].span
    );

    let mut aligned = SecureStore::new();
    aligned
        .hierarchy
        .add_seniority(Role::new("chief"), Role::new("intern"));
    s.semantic_stores[0].1 = aligned;
    let report = s.analyze();
    assert!(report.with_code("WS009").is_empty(), "{}", report.human());
}

#[test]
fn ws010_unsanitized_declassification_fires_and_sanitizer_silences() {
    let mut s = base_stack();
    s.add_document(
        "war.xml",
        Document::parse("<ops><plan>x</plan></ops>").unwrap(),
        ContextLabel::fixed(Level::Secret).unless_condition("peacetime", Level::Unclassified),
    );
    let report = s.analyze();
    let hits = report.with_code("WS010");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(hits[0].span.contains("war.xml"), "{}", hits[0].span);

    s.sanitized_documents.insert("war.xml".into());
    let report = s.analyze();
    assert!(report.with_code("WS010").is_empty(), "{}", report.human());
}

#[test]
fn ws011_unsigned_binding_fires_and_signed_tmodel_silences() {
    let mut s = base_stack();
    s.uddi = Some((registry_with_binding(), BTreeSet::new()));
    let report = s.analyze();
    let hits = report.with_code("WS011");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(
        hits[0].span.contains("binding 'bind1'") && hits[0].span.contains("service 's1'"),
        "{}",
        hits[0].span
    );

    let signed: BTreeSet<String> = std::iter::once("tm:pay".to_string()).collect();
    s.uddi = Some((registry_with_binding(), signed));
    let report = s.analyze();
    assert!(report.with_code("WS011").is_empty(), "{}", report.human());
}

#[test]
fn ws012_dead_credential_fires_and_enrolled_holder_silences() {
    let mut s = base_stack();
    let needs_notary = s.policies.add(Authorization::for_subject(SubjectSpec::WithCredentials(CredentialExpr::OfType("notary".into()))).on(portion("//admin")).privilege(Privilege::Read).id(5).grant());
    // No registered profiles: the pass has no census to check against.
    assert!(s.analyze().with_code("WS012").is_empty());

    s.registered_profiles.push(SubjectProfile::new("alice"));
    let report = s.analyze();
    let hits = report.with_code("WS012");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert_eq!(hits[0].severity, Severity::Warning);
    assert_eq!(hits[0].span, format!("authorization #{}", needs_notary.0));
    assert!(hits[0].message.contains("'notary'"), "{}", hits[0].message);

    s.registered_profiles[0] = notary_profile();
    let report = s.analyze();
    assert!(report.with_code("WS012").is_empty(), "{}", report.human());
}

/// Deterministic pseudo-random source for the property suite (no
/// `rand` dependency; constants from Knuth's MMIX).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Builds a stack whose configuration (which sections are populated, and
/// whether they are well-formed or firing) is drawn from `seed`.
fn random_stack(seed: u64) -> SecureWebStack {
    let mut rng = Lcg(seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
    let mut s = base_stack();
    if rng.flip() {
        let store = if rng.flip() { leaky_store() } else { sealed_store() };
        s.semantic_stores.push(("agents".into(), store));
    }
    if rng.flip() {
        s.privacy_constraints
            .push(PrivacyConstraint::new(&["name", "diagnosis"], PrivacyLevel::Private));
        s.table_schemas
            .push(("admissions".into(), vec!["patient_id".into(), "name".into()]));
        s.table_schemas.push((
            "treatments".into(),
            vec!["patient_id".into(), "diagnosis".into()],
        ));
    }
    if rng.flip() {
        let signed = if rng.flip() {
            std::iter::once("tm:pay".to_string()).collect()
        } else {
            BTreeSet::new()
        };
        s.uddi = Some((registry_with_binding(), signed));
    }
    if rng.flip() {
        s.policies.add(Authorization::for_subject(SubjectSpec::WithCredentials(CredentialExpr::OfType("notary".into()))).on(portion("//admin")).privilege(Privilege::Read).id(5).grant());
        let profile = if rng.flip() {
            notary_profile()
        } else {
            SubjectProfile::new("alice")
        };
        s.registered_profiles.push(profile);
    }
    if rng.flip() {
        s.add_document(
            "war.xml",
            Document::parse("<ops><plan>x</plan></ops>").unwrap(),
            ContextLabel::fixed(Level::Secret).unless_condition("peacetime", Level::Unclassified),
        );
        if rng.flip() {
            s.sanitized_documents.insert("war.xml".into());
        }
    }
    s
}

#[test]
fn analysis_is_deterministic_and_idempotent_across_100_seeds() {
    for seed in 0..100u64 {
        let a = random_stack(seed);
        let b = random_stack(seed);
        let first = a.analyze();
        let again = a.analyze();
        let rebuilt = b.analyze();
        assert_eq!(
            first.to_json(),
            again.to_json(),
            "re-analysis differed at seed {seed}"
        );
        assert_eq!(
            first.to_json(),
            rebuilt.to_json(),
            "rebuilt stack differed at seed {seed}"
        );
        assert_eq!(first.machine(), rebuilt.machine(), "machine rendering at seed {seed}");
        // normalize is idempotent: a second pass changes nothing.
        let mut normalized = first.clone();
        normalized.normalize();
        let once = normalized.to_json();
        normalized.normalize();
        assert_eq!(once, normalized.to_json(), "normalize not idempotent at seed {seed}");
    }
}

#[test]
fn normalized_report_is_invariant_under_safe_reordering() {
    // Configuration order of stores / constraints / profiles is not part of
    // any diagnostic's identity, so after `normalize` the JSON must be
    // byte-identical whatever order the sections were populated in.
    // (Schema order *is* semantic — spans join table names in schema order —
    // so it stays fixed.)
    type Op = Box<dyn Fn(&mut SecureWebStack)>;
    let ops: Vec<Op> = vec![
        Box::new(|s| s.semantic_stores.push(("agents".into(), leaky_store()))),
        Box::new(|s| s.semantic_stores.push(("ops".into(), leaky_store()))),
        Box::new(|s| {
            s.privacy_constraints
                .push(PrivacyConstraint::new(&["name", "diagnosis"], PrivacyLevel::Private))
        }),
        Box::new(|s| {
            s.registered_profiles.push(SubjectProfile::new("alice"));
            s.registered_profiles.push(notary_profile());
        }),
        Box::new(|s| s.uddi = Some((registry_with_binding(), BTreeSet::new()))),
    ];

    let baseline: String = {
        let mut s = base_stack();
        for op in &ops {
            op(&mut s);
        }
        let mut r = s.analyze();
        r.normalize();
        r.to_json()
    };
    assert!(baseline.contains("WS006"), "fixture should fire: {baseline}");

    for seed in 1..20u64 {
        let mut rng = Lcg(seed);
        let mut order: Vec<usize> = (0..ops.len()).collect();
        for i in (1..order.len()).rev() {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut s = base_stack();
        for &i in &order {
            ops[i](&mut s);
        }
        let mut r = s.analyze();
        r.normalize();
        assert_eq!(baseline, r.to_json(), "order {order:?} changed the report");
    }
}

#[test]
fn incremental_reanalysis_runs_only_affected_passes() {
    let server = StackServer::new(configured_stack());

    // Cold start: every pass runs.
    let report = server.analyze();
    assert!(report.is_clean(), "{}", report.human());
    assert_eq!(server.last_passes_run().len(), 12);
    let m = server.metrics();
    assert_eq!(m.analysis_passes_run, 12);
    assert_eq!(m.analysis_passes_reused, 0);

    // Same token: the cached report is reused wholesale.
    let _ = server.analyze();
    assert!(server.last_passes_run().is_empty());
    let m = server.metrics();
    assert_eq!(m.analysis_passes_run, 12);
    assert_eq!(m.analysis_passes_reused, 12);

    // A privacy-section mutation re-runs exactly the passes that read it.
    server.update(|s| {
        s.privacy_constraints
            .push(PrivacyConstraint::new(&["ssn", "name"], PrivacyLevel::Private));
    });
    let _ = server.analyze();
    assert_eq!(server.last_passes_run(), vec!["WS004", "WS007", "WS010"]);
    let m = server.metrics();
    assert_eq!(m.analysis_passes_run, 15);
    assert_eq!(m.analysis_passes_reused, 21);

    // An RDF-section mutation re-runs exactly the semantic passes.
    server.update(|s| s.semantic_stores.push(("extra".into(), sealed_store())));
    let _ = server.analyze();
    assert_eq!(server.last_passes_run(), vec!["WS006", "WS009"]);
    let m = server.metrics();
    assert_eq!(m.analysis_passes_run, 17);
    assert_eq!(m.analysis_passes_reused, 31);
}

#[test]
fn analysis_gate_deny_rejects_leak_introducing_update() {
    let server = StackServer::new(configured_stack());
    assert_eq!(server.analysis_gate(), AnalysisGate::Off);
    server.set_analysis_gate(AnalysisGate::Deny);
    assert_eq!(server.analysis_gate(), AnalysisGate::Deny);

    let before = server.snapshot().semantic_stores.len();
    let result = server.try_update(|s| s.semantic_stores.push(("planted".into(), leaky_store())));
    match result {
        Err(e) => {
            assert_eq!(e.code(), "WS109");
            let rendered = e.to_string();
            assert!(rendered.contains("WS006"), "{rendered}");
            assert!(rendered.contains("planted"), "{rendered}");
        }
        Ok(()) => panic!("leak-introducing update was admitted"),
    }
    // The snapshot is untouched and the stack still serves clean.
    assert_eq!(server.snapshot().semantic_stores.len(), before);
    assert!(server.analyze().is_clean());
    let m = server.metrics();
    assert_eq!(m.gate_denials, 1);
    assert_eq!(m.analysis_errors, 0);

    // A well-formed update passes the same gate.
    let result = server.try_update(|s| {
        s.semantic_stores.push(("benign".into(), sealed_store()));
    });
    assert!(result.is_ok());
    assert_eq!(server.snapshot().semantic_stores.len(), before + 1);
}

#[test]
fn analysis_gate_warn_admits_and_surfaces_findings_in_metrics() {
    let server = StackServer::new(configured_stack());
    server.set_analysis_gate(AnalysisGate::Warn);

    let result = server.try_update(|s| s.semantic_stores.push(("planted".into(), leaky_store())));
    assert!(result.is_ok());
    assert_eq!(server.snapshot().semantic_stores.len(), 2);
    let m = server.metrics();
    assert_eq!(m.gate_denials, 0);
    assert!(m.analysis_errors >= 1, "errors: {}", m.analysis_errors);
}

#[test]
fn analysis_gate_grandfathers_baseline_errors() {
    // The stack already carries a WS006 error when the gate is enabled:
    // unrelated updates must still be admitted (the gate blocks
    // *regressions*, not pre-existing findings)…
    let mut stack = configured_stack();
    stack.semantic_stores.push(("legacy".into(), leaky_store()));
    let server = StackServer::new(stack);
    server.set_analysis_gate(AnalysisGate::Deny);

    let result = server.try_update(|s| {
        s.table_schemas.push(("audit_log".into(), vec!["event".into()]));
    });
    assert!(result.is_ok(), "{result:?}");

    // …while a *new* error-severity finding is still rejected.
    let result = server.try_update(|s| s.semantic_stores.push(("planted".into(), leaky_store())));
    match result {
        Err(e) => {
            assert_eq!(e.code(), "WS109");
            let rendered = e.to_string();
            assert!(rendered.contains("planted"), "{rendered}");
            assert!(!rendered.contains("legacy"), "{rendered}");
        }
        Ok(()) => panic!("regression was admitted past a grandfathered baseline"),
    }
}

#[test]
fn analysis_gate_off_behaves_like_update() {
    let server = StackServer::new(configured_stack());
    let result = server.try_update(|s| s.semantic_stores.push(("planted".into(), leaky_store())));
    assert!(result.is_ok());
    assert_eq!(server.snapshot().semantic_stores.len(), 2);
    // Nothing analyzed, nothing denied.
    let m = server.metrics();
    assert_eq!(m.gate_denials, 0);
    assert_eq!(m.analysis_passes_run, 0);
}
