//! Wire-format robustness: everything that crosses a trust boundary gets
//! fuzz-ish adversarial input (attacker-controlled bytes must never panic,
//! only error).

use proptest::prelude::*;
use websec_core::prelude::*;
use websec_core::rdf::ntriples::from_ntriples;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The XML parser never panics on arbitrary input.
    #[test]
    fn xml_parser_total(input in ".{0,300}") {
        let _ = Document::parse(&input);
    }

    /// The path parser never panics on arbitrary input.
    #[test]
    fn path_parser_total(input in ".{0,80}") {
        let _ = Path::parse(&input);
    }

    /// The N-Triples parser never panics on arbitrary input.
    #[test]
    fn ntriples_parser_total(input in ".{0,300}") {
        let _ = from_ntriples(&input);
    }

    /// The SOAP envelope parser never panics on arbitrary input.
    #[test]
    fn envelope_parser_total(input in ".{0,300}") {
        let _ = Envelope::parse(&input);
    }

    /// The dissemination record decoder never panics on arbitrary bytes
    /// (this is what an attacker-controlled region decrypts to under a
    /// wrong key — though the MAC rejects that earlier).
    #[test]
    fn dissem_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = websec_core::dissem::package::decode_records(&bytes);
    }

    /// Parsed-then-serialized XML re-parses to the same serialization
    /// (idempotent normal form).
    #[test]
    fn xml_normal_form_idempotent(input in "<a>[a-z<>/ ]{0,60}") {
        if let Ok(doc) = Document::parse(&input) {
            let once = doc.to_xml_string();
            let twice = Document::parse(&once).expect("serializer emits well-formed XML")
                .to_xml_string();
            prop_assert_eq!(once, twice);
        }
    }
}
