//! Harness-level tests for the `websec-scenarios` orchestrator.
//!
//! The scenario harness is itself test infrastructure, so these tests hold
//! it to the same bar as the engine: determinism of [`ScenarioResult`]
//! across 100 seeds, honest fingerprint-cache accounting, invariant
//! failures that actually propagate to a failed suite (including from a
//! cached row), the adversarial replay/tamper scenario's WS1xx-only
//! contract, and the `BENCH_scenarios.json` row schema.

use std::path::PathBuf;
use websec_scenarios::prelude::*;

/// A per-test temp history path (removed before use so every test starts
/// from the bootstrap state a fresh checkout sees).
fn temp_history(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "websec-scenarios-{tag}-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Same scenario + same seed must produce a byte-identical
/// [`ScenarioResult`] — the property the fingerprint cache and the
/// seed-replay workflow both stand on. 100 seeds, each run twice.
#[test]
fn scenario_results_are_deterministic_across_100_seeds() {
    for seed in 0..100u64 {
        let scenario = suite::tiny(seed);
        let first = run_scenario(&scenario, "det-rev");
        let second = run_scenario(&scenario, "det-rev");
        assert_eq!(
            first.result, second.result,
            "seed {seed}: ScenarioResult diverged between identical runs"
        );
        assert_eq!(first.fingerprint, second.fingerprint, "seed {seed}");
        assert!(
            first.result.violations.is_empty(),
            "seed {seed}: tiny scenario violated its invariants: {:?}",
            first.result.violations
        );
        assert!(first.result.ok > 0, "seed {seed}: no request succeeded");
    }
}

/// First run misses, identical re-run hits for every scenario, `force`
/// bypasses the cache, and editing a scenario's declared data re-runs
/// only that scenario.
#[test]
fn fingerprint_cache_accounting() {
    let history = temp_history("cache");
    let mut a = suite::tiny(11);
    a.name = "cache_a".to_string();
    let mut b = suite::tiny(12);
    b.name = "cache_b".to_string();
    let scenarios = vec![a, b];
    let opts = SuiteOptions {
        history_path: history.clone(),
        ..SuiteOptions::default()
    };

    let first = run_suite(&scenarios, &opts);
    assert_eq!(first.cache_misses, 2, "bootstrap run executes everything");
    assert_eq!(first.cache_hits, 0);
    assert!(!first.failed);

    let second = run_suite(&scenarios, &opts);
    assert_eq!(second.cache_hits, 2, "unchanged suite is answered from cache");
    assert_eq!(second.cache_misses, 0);
    assert!(!second.failed);
    for entry in &second.entries {
        assert_eq!(entry.cache, CacheState::Hit, "{}", entry.name);
        assert!(entry.headline_qps > 0.0, "{}: cached qps lost", entry.name);
    }

    let forced = run_suite(
        &scenarios,
        &SuiteOptions {
            force: true,
            history_path: history.clone(),
            ..SuiteOptions::default()
        },
    );
    assert_eq!(forced.cache_misses, 2, "--force ignores the cache");

    // Editing one scenario's declared data (here: the seed) invalidates
    // exactly that scenario's fingerprint.
    let mut edited = suite::tiny(13);
    edited.name = "cache_b".to_string();
    let third = run_suite(&[scenarios[0].clone(), edited], &opts);
    assert_eq!(third.cache_hits, 1);
    assert_eq!(third.cache_misses, 1);

    let _ = std::fs::remove_file(&history);
}

/// The substring filter (the `SCENARIO_FILTER` contract) narrows the
/// suite without touching the skipped scenarios' history.
#[test]
fn name_filter_narrows_the_suite() {
    let history = temp_history("filter");
    let mut a = suite::tiny(21);
    a.name = "filter_keep".to_string();
    let mut b = suite::tiny(22);
    b.name = "filter_drop".to_string();
    let summary = run_suite(
        &[a, b],
        &SuiteOptions {
            history_path: history.clone(),
            filter: Some("keep".to_string()),
            ..SuiteOptions::default()
        },
    );
    assert_eq!(summary.entries.len(), 1);
    assert_eq!(summary.entries[0].name, "filter_keep");
    let _ = std::fs::remove_file(&history);
}

/// A deliberately-broken scenario (ErrorFree declared over traffic that
/// contains unknown-document requests) must fail — both on a live run and
/// again when its failing row is answered from the fingerprint cache.
#[test]
fn invariant_failures_propagate() {
    let run = run_scenario(&suite::broken(5), "broken-rev");
    assert!(
        !run.result.violations.is_empty(),
        "the broken scenario must report violations"
    );
    assert!(
        run.result
            .violations
            .iter()
            .any(|v| v.starts_with("error_free:")),
        "violations must name the declared invariant: {:?}",
        run.result.violations
    );

    let history = temp_history("broken");
    let opts = SuiteOptions {
        history_path: history.clone(),
        ..SuiteOptions::default()
    };
    let scenarios = vec![suite::broken(5)];
    let live = run_suite(&scenarios, &opts);
    assert!(live.failed, "a violated invariant must fail the suite");
    let cached = run_suite(&scenarios, &opts);
    assert_eq!(cached.cache_hits, 1);
    assert!(
        cached.failed,
        "a cached failing row must still fail the suite"
    );
    let _ = std::fs::remove_file(&history);
}

/// The declared adversarial scenario: every tampered record rejected with
/// the session still usable, every replayed record rejected by the
/// sequence check, and every workload error a stable WS1xx code.
#[test]
fn adversarial_scenario_rejects_attacks_ws1xx_only() {
    let scenario = suite::smoke()
        .into_iter()
        .find(|s| s.name == "adversarial_replay_tamper")
        .expect("the smoke suite declares the adversarial scenario");
    let spec = scenario.adversarial.clone().expect("adversarial spec");
    let run = run_scenario(&scenario, "adv-rev");
    assert!(
        run.result.violations.is_empty(),
        "adversarial violations: {:?}",
        run.result.violations
    );
    assert_eq!(run.result.tamper_rejected, spec.tampers as u64);
    assert_eq!(run.result.replay_rejected, spec.replays as u64);
    assert_eq!(
        run.result.adversarial_attempts,
        (spec.tampers + spec.replays) as u64
    );
    assert!(
        run.result.errors > 0,
        "the mix contains secret probes and missing docs, so errors must appear"
    );
    for (code, count) in &run.result.error_codes {
        assert!(
            code.len() == 5 && code.starts_with("WS1"),
            "non-WS1xx error code {code} ({count} occurrence(s))"
        );
    }
}

/// The `BENCH_scenarios.json` row shape: every consumer-facing key is
/// present, the row round-trips through the JSON parser, and the leading
/// key stays `name` (history diffs key on it).
#[test]
fn result_row_schema_is_stable() {
    let run = run_scenario(&suite::tiny(31), "schema-rev");
    let row = websec_scenarios::orchestrator::result_row(&run, "schema-rev");
    let parsed = Json::parse(&row.render()).expect("row renders as valid JSON");

    const KEYS: [&str; 24] = [
        "name",
        "seed",
        "fingerprint",
        "rev",
        "requests",
        "ok",
        "errors",
        "error_codes",
        "view_digest",
        "revocation_updates",
        "stale_after_revocation",
        "tamper_rejected",
        "replay_rejected",
        "adversarial_attempts",
        "uddi_digest",
        "uddi_ops",
        "mining_rules",
        "mining_digest",
        "gate_probes",
        "gate_rejections",
        "violations",
        "serial_qps",
        "headline_qps",
        "points",
    ];
    for key in KEYS {
        assert!(parsed.get(key).is_some(), "missing row key '{key}'");
    }
    let object = parsed.as_object().expect("row is an object");
    assert_eq!(object.len(), KEYS.len(), "undeclared extra keys in the row");
    assert_eq!(object[0].0, "name", "rows are keyed by name first");

    assert_eq!(parsed.get("name").and_then(Json::as_str), Some("tiny"));
    assert_eq!(parsed.get("rev").and_then(Json::as_str), Some("schema-rev"));
    assert_eq!(parsed.get("requests").and_then(Json::as_u64), Some(48));
    assert_eq!(
        parsed.get("fingerprint").and_then(Json::as_str).map(str::len),
        Some(16),
        "fingerprints are 16 hex chars"
    );
    assert!(
        parsed
            .get("violations")
            .and_then(Json::as_array)
            .is_some_and(<[Json]>::is_empty),
        "tiny passes, so the recorded violations are empty"
    );
    let points = parsed.get("points").and_then(Json::as_array).expect("points");
    assert_eq!(points.len(), 1, "tiny sweeps one worker width");
    assert_eq!(points[0].get("workers").and_then(Json::as_u64), Some(2));
    assert!(points[0].get("qps").and_then(Json::as_f64).is_some());
}

/// The history file itself keeps the `{"bench": "scenarios", "rows": []}`
/// envelope and survives a load/save round trip byte-for-byte.
#[test]
fn history_file_round_trips() {
    let history_path = temp_history("roundtrip");
    let mut scenario = suite::tiny(41);
    scenario.name = "roundtrip".to_string();
    let opts = SuiteOptions {
        history_path: history_path.clone(),
        ..SuiteOptions::default()
    };
    let _ = run_suite(&[scenario], &opts);

    let text = std::fs::read_to_string(&history_path).expect("history written");
    let parsed = Json::parse(&text).expect("history is valid JSON");
    assert_eq!(
        parsed.get("bench").and_then(Json::as_str),
        Some("scenarios"),
        "history envelope names the bench"
    );
    let rows = parsed.get("rows").and_then(Json::as_array).expect("rows");
    assert_eq!(rows.len(), 1);

    let reloaded = History::parse(&text).expect("history parses");
    assert_eq!(reloaded.render(), text, "render/parse round trip is exact");
    let _ = std::fs::remove_file(&history_path);
}
