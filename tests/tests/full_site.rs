//! The whole web-database lifecycle at one site, end to end: metadata
//! registration, DTD-validated ingest, multimedia attachment, federated
//! querying with provenance, and trust-gated third-party verification.

use websec_core::blobs::{attach_blob, fetch_authorized, BlobError, BlobStore};
use websec_core::metadata::{DocumentMeta, MetadataRepository, Placement};
use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;

/// A site's documents are catalogued in metadata, validated on ingest,
/// carry multimedia, and answer federated queries — with every layer
/// enforcing.
#[test]
fn lifecycle_ingest_to_federated_query() {
    // --- ingest with DTD validation --------------------------------------
    let dtd = Dtd::new("ward")
        .declare(
            "ward",
            websec_core::xml::dtd::ElementDecl::default().with_children(&["patient"]),
        )
        .declare(
            "patient",
            websec_core::xml::dtd::ElementDecl::default()
                .with_children(&["name", "scan"])
                .require_attrs(&["id"]),
        )
        .declare(
            "name",
            websec_core::xml::dtd::ElementDecl::default().with_text(),
        )
        .declare(
            "scan",
            websec_core::xml::dtd::ElementDecl::default().allow_only_attrs(&["blobRef"]),
        );
    let mut doc = Document::parse(
        "<ward><patient id=\"p1\"><name>Alice</name><scan/></patient></ward>",
    )
    .unwrap();
    assert!(dtd.is_valid(&doc));

    // --- multimedia attachment --------------------------------------------
    let mut blobs = BlobStore::new([8u8; 32]);
    let scan_el = Path::parse("//scan").unwrap().select_nodes(&doc)[0];
    attach_blob(&mut doc, scan_el, &mut blobs, b"DICOM bytes");
    assert!(dtd.is_valid(&doc), "blobRef attribute is declared");

    // --- metadata registration ---------------------------------------------
    let mut metadata = MetadataRepository::new(Placement::Centralized, &[]);
    metadata.register(DocumentMeta {
        document: "ward.xml".into(),
        site: "hospital-a".into(),
        content_type: "xml".into(),
        label: ContextLabel::fixed(Level::Confidential),
        policy_count: 1,
        epoch: 0,
    });
    // Metadata enhances security: a public subject cannot even discover
    // the document.
    let ctx = SecurityContext::new();
    assert!(metadata
        .lookup_cleared("ward.xml", Clearance(Level::Unclassified), &ctx)
        .is_none());
    assert!(metadata
        .lookup_cleared("ward.xml", Clearance(Level::Confidential), &ctx)
        .is_some());

    // --- the site joins a federation ----------------------------------------
    let mut site = Site::new("hospital-a");
    site.documents.insert("ward.xml", doc.clone());
    site.policies.add(Authorization::for_subject(SubjectSpec::Identity("researcher".into())).on(ObjectSpec::Document("ward.xml".into())).privilege(Privilege::Read).grant());
    let mut federation = Federation::new();
    federation.add_site(site);
    let hits = federation.query(
        &SubjectProfile::new("researcher"),
        &Path::parse("//patient").unwrap(),
    );
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].site, "hospital-a");
    assert!(hits[0].hit.xml.contains("Alice"));

    // --- blob fetch inherits the document policy ------------------------------
    let mut policies = PolicyStore::new();
    policies.add(Authorization::for_subject(SubjectSpec::Identity("researcher".into())).on(ObjectSpec::Document("ward.xml".into())).privilege(Privilege::Read).grant());
    let engine = PolicyEngine::default();
    let researcher = SubjectProfile::new("researcher");
    assert_eq!(
        fetch_authorized(&blobs, &policies, &engine, &researcher, "ward.xml", &doc, scan_el)
            .unwrap(),
        b"DICOM bytes"
    );
    assert_eq!(
        fetch_authorized(
            &blobs,
            &policies,
            &engine,
            &SubjectProfile::new("stranger"),
            "ward.xml",
            &doc,
            scan_el
        )
        .unwrap_err(),
        BlobError::AccessDenied
    );
}

/// Metadata placements answer the paper's placement question with numbers:
/// replication trades write-time sync for constant-probe lookups.
#[test]
fn metadata_placement_tradeoffs() {
    let sites = ["a", "b", "c", "d"];
    let register_all = |repo: &mut MetadataRepository| {
        for (i, s) in sites.iter().enumerate() {
            repo.register(DocumentMeta {
                document: format!("doc-{i}"),
                site: (*s).to_string(),
                content_type: "xml".into(),
                label: ContextLabel::fixed(Level::Unclassified),
                policy_count: 0,
                epoch: 0,
            });
        }
    };

    // Per-site: probes grow with site count for far documents.
    let mut per_site = MetadataRepository::new(Placement::PerSite, &sites);
    register_all(&mut per_site);
    per_site.lookup("doc-3"); // lives at the last site
    assert_eq!(per_site.probes(), 4);

    // Replicated: after sync, one probe regardless of placement.
    let mut replicated = MetadataRepository::new(Placement::Replicated, &sites);
    register_all(&mut replicated);
    assert!(replicated.stale_replicas() > 0);
    replicated.sync();
    assert_eq!(replicated.stale_replicas(), 0);
    replicated.lookup("doc-3");
    assert_eq!(replicated.probes(), 1);
}
