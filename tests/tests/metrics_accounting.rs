//! Accounting invariants of [`MetricsSnapshot`]: the cache counters
//! partition the allowed requests exactly, the L1/L2 split sums to the
//! hit total, and the per-shard [`ShardStats`] breakdown reconciles with
//! the global counters — all under a real 8-worker batch run.

use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;

const SUBJECTS: usize = 16;
const PATIENTS: usize = 40;
const WORKERS: usize = 8;
const BATCH: usize = 512;

fn build_stack() -> SecureWebStack {
    let mut stack = SecureWebStack::new([5u8; 32]);
    let mut xml = String::from("<hospital>");
    for i in 0..PATIENTS {
        xml.push_str(&format!("<patient id=\"p{i}\"><record>r{i}</record></patient>"));
    }
    xml.push_str("</hospital>");
    stack.add_document(
        "records.xml",
        Document::parse(&xml).unwrap(),
        ContextLabel::fixed(Level::Unclassified),
    );
    stack.add_document(
        "secret.xml",
        Document::parse("<ops><plan>atlantis</plan></ops>").unwrap(),
        ContextLabel::fixed(Level::Secret),
    );
    for d in 0..SUBJECTS {
        stack.policies.add(Authorization::for_subject(SubjectSpec::Identity(format!("subject-{d}"))).on(ObjectSpec::Portion {
                document: "records.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
    }
    stack.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("secret.xml".into())).privilege(Privilege::Read).grant());
    stack
}

/// Mixed workload: authorized queries (many per subject, so L1 and L2 both
/// see traffic), duplicates (coalescing), denials, and unknown documents.
fn build_requests(n: usize) -> Vec<QueryRequest> {
    (0..n)
        .map(|i| {
            let subject = SubjectProfile::new(&format!("subject-{}", i % SUBJECTS));
            if i % 9 == 4 {
                QueryRequest::for_doc("secret.xml")
                    .path(Path::parse("//plan").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else if i % 11 == 7 {
                QueryRequest::for_doc("missing.xml")
                    .path(Path::parse("//x").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else {
                QueryRequest::for_doc("records.xml")
                    .path(Path::parse(&format!("//patient[@id='p{}']", i % PATIENTS)).unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            }
        })
        .collect()
}

/// Every allowed response is served exactly one way — worker-local L1 hit,
/// shared L2 hit, coalesced onto another evaluation, or a fresh
/// computation — so the four counters must partition `allowed` with no
/// request lost or double-counted, across two 8-worker batches.
#[test]
fn cache_counters_partition_allowed_requests_exactly() {
    let server = StackServer::with_shards(build_stack(), 16);
    let batch = BatchRequest::new(build_requests(BATCH)).workers(WORKERS);
    let first = server.serve_batch(&batch);
    let second = server.serve_batch(&batch);
    assert_eq!(first.results.len(), BATCH);
    assert_eq!(second.results.len(), BATCH);
    // The per-batch stats agree with the global ledger: the two coalesced
    // tallies sum to the metrics counter checked below.
    let batch_coalesced = first.stats.coalesced + second.stats.coalesced;

    let m = server.metrics();
    assert_eq!(m.requests, 2 * BATCH as u64);
    assert_eq!(
        m.allowed + m.denied + m.errors,
        m.requests,
        "every request resolves to exactly one outcome \
         (allowed={}, denied={}, errors={}, requests={})",
        m.allowed,
        m.denied,
        m.errors,
        m.requests
    );
    assert_eq!(
        m.l1_hits + m.l2_hits + m.coalesced + m.cache_misses,
        m.allowed,
        "view lookups must partition the allowed requests \
         (l1={}, l2={}, coalesced={}, misses={}, allowed={})",
        m.l1_hits,
        m.l2_hits,
        m.coalesced,
        m.cache_misses,
        m.allowed
    );
    assert_eq!(
        m.cache_hits,
        m.l1_hits + m.l2_hits,
        "the hit total must be exactly the L1/L2 split"
    );
    // The workload exercises every path: the second batch hits L2 (fresh
    // worker states), repeated subject/doc pairs hit L1 within a batch,
    // and exact duplicates coalesce.
    assert!(m.l1_hits > 0, "no L1 traffic in a {BATCH}-request batch");
    assert!(m.l2_hits > 0, "no L2 traffic across two batches");
    assert!(m.coalesced > 0, "duplicate requests never coalesced");
    assert_eq!(m.coalesced, batch_coalesced, "BatchStats disagrees with the ledger");
    assert!(m.cache_misses > 0, "cold views never computed");
    // Latency is recorded for exactly the allowed responses.
    assert_eq!(m.latency.count, m.allowed);
}

/// The per-shard breakdown reconciles with the globals: shard sums equal
/// the aggregate counters, and the L2 shard hit/miss tallies explain every
/// L2 lookup (an L2 lookup happens exactly when L1 misses and no coalesced
/// answer was shared).
#[test]
fn per_shard_stats_sum_to_the_global_counters() {
    let server = StackServer::with_shards(build_stack(), 8);
    let batch = BatchRequest::new(build_requests(BATCH)).workers(WORKERS);
    let _ = server.serve_batch(&batch);
    let _ = server.serve_batch(&batch);

    let m = server.metrics();
    assert_eq!(m.per_shard.len(), 8);
    let sum = |f: fn(&ShardStats) -> u64| m.per_shard.iter().map(f).sum::<u64>();
    assert_eq!(sum(|s| s.sessions_open), m.sessions_open);
    assert_eq!(sum(|s| s.cached_views), m.cached_views);
    assert_eq!(sum(|s| s.session_lock_waits), m.session_lock_waits);
    assert_eq!(sum(|s| s.cache_lock_waits), m.cache_lock_waits);
    assert_eq!(sum(|s| s.l2_hits), m.l2_hits);
    // Each global cache miss performed exactly one (missing) L2 lookup, so
    // the shard-level lookup tallies reconcile with the global split.
    assert_eq!(
        sum(|s| s.l2_hits) + sum(|s| s.l2_misses),
        m.l2_hits + m.cache_misses,
        "L2 shard lookups must equal L2 hits plus computed views"
    );
    // One session per subject, hashed across shards.
    assert_eq!(m.sessions_open, SUBJECTS as u64);
    assert_eq!(m.sessions_established, SUBJECTS as u64);
    let used = m.per_shard.iter().filter(|s| s.sessions_open > 0).count();
    assert!(used > 1, "all {SUBJECTS} subjects clumped into one shard");
    // Shard indices are positional.
    for (i, shard) in m.per_shard.iter().enumerate() {
        assert_eq!(shard.shard, i);
    }
}

/// Single-request serves and batch serves feed the same accounting: a
/// serial tail after a batch keeps every identity intact.
#[test]
fn serial_and_batch_paths_share_one_ledger() {
    let server = StackServer::new(build_stack());
    let requests = build_requests(128);
    let _ = server.serve_batch(&BatchRequest::new(requests.clone()).workers(WORKERS));
    for request in requests.iter().take(32) {
        let _ = server.serve(request);
    }
    let m = server.metrics();
    assert_eq!(m.requests, 160);
    assert_eq!(m.allowed + m.denied + m.errors, m.requests);
    assert_eq!(m.l1_hits + m.l2_hits + m.coalesced + m.cache_misses, m.allowed);
    assert_eq!(m.cache_hits, m.l1_hits + m.l2_hits);
    assert_eq!(m.latency.count, m.allowed);
}
