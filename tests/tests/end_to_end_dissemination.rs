//! Cross-crate integration: policy engine × regions × encrypted packages.
//!
//! The dissemination pipeline must agree with direct policy evaluation: a
//! subscriber's decrypted view contains exactly the content the engine
//! says it may read.

use websec_core::prelude::*;

fn hospital() -> Document {
    Document::parse(
        "<hospital>\
           <patient id=\"p1\"><name>Alice</name><record>flu</record></patient>\
           <patient id=\"p2\"><name>Bob</name><record>injury</record></patient>\
           <staff><doctor id=\"d1\"><phone>555</phone></doctor></staff>\
           <admin><budget>100</budget></admin>\
         </hospital>",
    )
    .unwrap()
}

fn policies() -> PolicyStore {
    let mut store = PolicyStore::new();
    store.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Portion {
            document: "h.xml".into(),
            path: Path::parse("//patient").unwrap(),
        }).privilege(Privilege::Read).grant());
    store.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Portion {
            document: "h.xml".into(),
            path: Path::parse("//staff").unwrap(),
        }).privilege(Privilege::Read).grant());
    store.add(Authorization::for_subject(SubjectSpec::Identity("accountant".into())).on(ObjectSpec::Portion {
            document: "h.xml".into(),
            path: Path::parse("//admin").unwrap(),
        }).privilege(Privilege::Read).grant());
    store
}

/// Every piece of text visible in the decrypted package view must also be
/// visible in the engine-computed view, and vice versa.
#[test]
fn package_view_matches_engine_view() {
    let doc = hospital();
    let store = policies();
    let engine = PolicyEngine::default();
    let map = RegionMap::build(&store, "h.xml", &doc);
    let authority = KeyAuthority::new("h.xml", [1u8; 32]);
    let package = DissemPackage::seal(&map, b"t1", |r| authority.region_key(&map, r.id));

    for identity in ["doctor", "accountant"] {
        let profile = SubjectProfile::new(identity);
        let engine_view = engine.compute_view(&store, &profile, "h.xml", &doc);
        let keyring = authority.keys_for(&store, &map, &profile);
        let package_view = package.open(&keyring).unwrap();

        // Text contents must coincide (structure may differ in shells).
        let mut engine_text: Vec<String> = engine_view
            .all_nodes()
            .iter()
            .filter_map(|&n| match engine_view.kind(n) {
                websec_core::xml::NodeKind::Text(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        let mut package_text: Vec<String> = package_view
            .all_nodes()
            .iter()
            .filter_map(|&n| match package_view.kind(n) {
                websec_core::xml::NodeKind::Text(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        engine_text.sort();
        package_text.sort();
        assert_eq!(engine_text, package_text, "subject {identity}");
    }
}

#[test]
fn no_region_leaks_across_subjects() {
    let doc = hospital();
    let store = policies();
    let map = RegionMap::build(&store, "h.xml", &doc);
    let authority = KeyAuthority::new("h.xml", [1u8; 32]);
    let package = DissemPackage::seal(&map, b"t2", |r| authority.region_key(&map, r.id));

    let accountant = authority.keys_for(&store, &map, &SubjectProfile::new("accountant"));
    let view = package.open(&accountant).unwrap();
    let xml = view.to_xml_string();
    assert!(xml.contains("budget"));
    for secret in ["Alice", "Bob", "flu", "injury", "555"] {
        assert!(!xml.contains(secret), "leaked {secret}: {xml}");
    }
}

#[test]
fn key_count_is_minimal() {
    // Number of keys equals the number of distinct non-empty policy sets,
    // not the number of subjects or policies.
    let doc = hospital();
    let mut store = policies();
    // Add three more identities sharing the same patient policy shape.
    for who in ["d2", "d3", "d4"] {
        store.add(Authorization::for_subject(SubjectSpec::Identity((*who).into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
    }
    let map = RegionMap::build(&store, "h.xml", &doc);
    // Regions: {patients: doctor+d2+d3+d4}, {staff: doctor}, {admin: accountant}.
    assert_eq!(map.key_count(), 3);
}

#[test]
fn revocation_changes_regions_and_keys() {
    let doc = hospital();
    let mut store = policies();
    let map_before = RegionMap::build(&store, "h.xml", &doc);
    let authority = KeyAuthority::new("h.xml", [1u8; 32]);
    let doctor_keys_before =
        authority.keys_for(&store, &map_before, &SubjectProfile::new("doctor"));
    assert_eq!(doctor_keys_before.len(), 2);

    // Revoke the staff grant.
    let staff_auth = store.authorizations()[1].id;
    assert!(store.revoke(staff_auth));
    let map_after = RegionMap::build(&store, "h.xml", &doc);
    let doctor_keys_after =
        authority.keys_for(&store, &map_after, &SubjectProfile::new("doctor"));
    assert_eq!(doctor_keys_after.len(), 1);

    // The re-sealed package no longer contains the staff region at all.
    let package = DissemPackage::seal(&map_after, b"t3", |r| {
        authority.region_key(&map_after, r.id)
    });
    let view = package.open(&doctor_keys_after).unwrap();
    assert!(!view.to_xml_string().contains("555"));
}
