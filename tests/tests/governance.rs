//! Cross-crate integration: administered policies, XML-expressed privacy
//! configuration, ontology security and the statistical gate.

use websec_core::prelude::*;
use websec_core::privacy::xml_config;
use websec_core::rdf::schema::rdfs;
use websec_core::rdf::store::rdf as rdf_vocab;

/// Delegated administration drives the live policy base that the engine
/// evaluates.
#[test]
fn delegated_administration_to_enforcement() {
    let mut admin = AdministeredStore::new();
    admin.register_owner("h.xml", "alice");
    admin
        .delegate_admin("alice", "h.xml", "bob", false)
        .unwrap();

    // Bob (delegate) grants a read to the doctors role.
    let bob = SubjectProfile::new("bob");
    admin
        .try_add(
            &bob,
            Authorization::for_subject(SubjectSpec::InRole(Role::new("doctor"))).on(ObjectSpec::Document("h.xml".into())).privilege(Privilege::Read).grant(),
        )
        .unwrap();
    // Mallory cannot.
    let mallory = SubjectProfile::new("mallory");
    assert!(admin
        .try_add(
            &mallory,
            Authorization::for_subject(SubjectSpec::Identity("mallory".into())).on(ObjectSpec::Document("h.xml".into())).privilege(Privilege::Read).grant(),
        )
        .is_err());

    // The grant is live in the engine.
    let doc = Document::parse("<hospital><patient/></hospital>").unwrap();
    let engine = PolicyEngine::default();
    let doctor = SubjectProfile::new("dr-x").with_role(Role::new("doctor"));
    assert_eq!(
        engine.check(&admin.store, &doctor, "h.xml", &doc, doc.root(), Privilege::Read),
        AccessDecision::Granted
    );
}

/// Privacy constraints shipped as XML configure a live inference
/// controller ("XML may be extended to include privacy constraints").
#[test]
fn xml_constraints_drive_inference_controller() {
    let config = Document::parse(
        "<privacyConstraints>\
           <constraint level=\"private\">\
             <attribute>name</attribute><attribute>diagnosis</attribute>\
           </constraint>\
         </privacyConstraints>",
    )
    .unwrap();
    let constraints = xml_config::constraints_from_xml(&config).unwrap();

    let mut table = Table::new("patients", &["id", "name", "diagnosis"]);
    table.insert(vec![1i64.into(), "Alice".into(), "flu".into()]);
    let mut controller = InferenceController::new(table, "id", constraints);

    let d = controller.execute("analyst", &Query::select(&["name", "diagnosis"]));
    assert!(matches!(d, QueryDecision::Sanitized { .. }), "{d:?}");
}

/// A P3P policy survives the full wire path: build → XML → text → parse →
/// preference check.
#[test]
fn p3p_policy_over_the_wire() {
    use websec_core::privacy::{DataCategory, PolicyMatch, Purpose, Recipient, Retention, Statement};
    let policy = PrivacyPolicy::new("svc").with_statement(Statement {
        categories: vec![DataCategory::Behaviour],
        purpose: Purpose::Profiling,
        recipient: Recipient::ThirdParty,
        retention: Retention::Indefinite,
    });
    let wire = xml_config::policy_to_xml(&policy).to_xml_string();
    let received = xml_config::policy_from_xml(&Document::parse(&wire).unwrap()).unwrap();
    let prefs = UserPreferences::permissive().cap(
        DataCategory::Behaviour,
        Purpose::Admin,
        Recipient::Ours,
        Retention::Legal,
    );
    assert!(matches!(prefs.check(&received), PolicyMatch::Rejected(_)));
}

/// Ontology-level protection composes with the plain triple store: the
/// guard blocks instance data of protected classes even when typed only
/// through subclasses.
#[test]
fn ontology_guard_over_shared_store() {
    let mut store = TripleStore::new();
    let t = |s: &str, p: &str, o: &str| {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    };
    store.insert(&t("VipPatient", rdfs::SUB_CLASS_OF, "Patient"));
    store.insert(&t("p-9", rdf_vocab::TYPE, "VipPatient"));
    store.insert(&t("p-9", "admittedTo", "ward-3"));
    store.insert(&t("visitor-1", "visited", "ward-3"));

    let mut guard = OntologyGuard::new();
    guard.add_authorization(ClassAuthorization {
        subject: SubjectSpec::Anyone,
        class: Term::iri("Patient"),
        sign: Sign::Minus,
    });
    let everything = TriplePattern::new(PatternTerm::Any, PatternTerm::Any, PatternTerm::Any);
    let visible = guard.query(
        &store,
        &SubjectProfile::new("u"),
        Level::TopSecret,
        &SecurityContext::new(),
        &everything,
    );
    // Nothing about p-9 (a Patient via the subclass) is visible; the
    // visitor triple and the schema triple are.
    assert!(visible.iter().all(|tr| tr.s != Term::iri("p-9")), "{visible:?}");
    assert!(visible.iter().any(|tr| tr.s == Term::iri("visitor-1")));
}

/// The statistical gate protects an aggregate reporting service: a
/// tracker-style query pair is blocked.
#[test]
fn statistical_gate_blocks_tracker_pair() {
    let mut table = Table::new("staff", &["id", "dept", "team", "salary"]);
    for (id, dept, team, salary) in [
        (1i64, "eng", "alpha", 100i64),
        (2, "eng", "beta", 110),
        (3, "eng", "beta", 120),
        (4, "eng", "beta", 130),
        (5, "ops", "gamma", 90),
        (6, "ops", "gamma", 95),
        (7, "ops", "gamma", 105),
    ] {
        table.insert(vec![id.into(), dept.into(), team.into(), salary.into()]);
    }
    let mut gate = StatisticalGate::new(table, 2);
    let q_all_eng = AggregateQuery::sum("salary").filter("dept", "eng");
    let q_beta = AggregateQuery::sum("salary")
        .filter("dept", "eng")
        .filter("team", "beta");
    assert!(matches!(
        gate.execute("snoop", &q_all_eng),
        AggregateDecision::Answer(460)
    ));
    // Differs by exactly the alpha victim: blocked.
    assert!(matches!(
        gate.execute("snoop", &q_beta),
        AggregateDecision::SuppressedDifferencing { overlap_gap: 1 }
    ));
}

/// Auction outcomes recorded into a DTD-validated, versioned catalogue,
/// then disseminated selectively: the full web-database lifecycle.
#[test]
fn auction_to_dissemination_lifecycle() {
    // 1. A validated listing enters the versioned catalogue.
    let listing =
        Document::parse("<item sku=\"lamp\"><title>Lamp</title></item>").unwrap();
    let dtd = websec_core::xml::Dtd::new("item")
        .declare(
            "item",
            websec_core::xml::dtd::ElementDecl::default()
                .with_children(&["title"])
                .require_attrs(&["sku"]),
        )
        .declare(
            "title",
            websec_core::xml::dtd::ElementDecl::default().with_text(),
        );
    assert!(dtd.is_valid(&listing));
    let mut catalogue = VersionedStore::new();
    catalogue.put("lamp", listing);

    // 2. The auction runs and commits its outcome.
    let mut auction = Auction::open("lamp", 50);
    auction.place_bid("bob", 80).unwrap();
    auction.close();
    auction.record_outcome(&mut catalogue).unwrap();

    // 3. The sold record is disseminated: buyers see price, the public
    //    does not.
    let (_, sold_doc) = catalogue.read("lamp").unwrap();
    let mut store = PolicyStore::new();
    store.add(Authorization::for_subject(SubjectSpec::Identity("auditor".into())).on(ObjectSpec::Document("lamp".into())).privilege(Privilege::Read).grant());
    store.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Portion {
            document: "lamp".into(),
            path: Path::parse("/item/title").unwrap(),
        }).privilege(Privilege::Read).grant());
    let map = RegionMap::build(&store, "lamp", &sold_doc);
    let authority = KeyAuthority::new("lamp", [3u8; 32]);
    let package = DissemPackage::seal(&map, b"post-sale", |r| authority.region_key(&map, r.id));

    let auditor_view = package
        .open(&authority.keys_for(&store, &map, &SubjectProfile::new("auditor")))
        .unwrap();
    assert!(auditor_view.to_xml_string().contains("buyer"));
    let public_view = package
        .open(&authority.keys_for(&store, &map, &SubjectProfile::new("public")))
        .unwrap();
    let s = public_view.to_xml_string();
    assert!(s.contains("Lamp"), "{s}");
    assert!(!s.contains("bob"), "{s}");
}
