//! Property-based tests for third-party publishing: random documents and
//! queries; honest answers always verify, tampered answers never do.

use proptest::prelude::*;
use websec_core::prelude::*;
use websec_core::publish::VerifyError;

/// Strategy: a small random XML document.
fn arb_document() -> impl Strategy<Value = Document> {
    // Random tree described as a nesting plan: at each node, a name index,
    // an optional attribute, optional text, and children.
    #[derive(Debug, Clone)]
    struct Plan {
        name: u8,
        attr: Option<u8>,
        text: Option<u8>,
        children: Vec<Plan>,
    }
    fn arb_plan(depth: u32) -> BoxedStrategy<Plan> {
        let leaf = (0u8..5, proptest::option::of(0u8..4), proptest::option::of(0u8..6)).prop_map(
            |(name, attr, text)| Plan {
                name,
                attr,
                text,
                children: Vec::new(),
            },
        );
        if depth == 0 {
            leaf.boxed()
        } else {
            (
                0u8..5,
                proptest::option::of(0u8..4),
                proptest::option::of(0u8..6),
                proptest::collection::vec(arb_plan(depth - 1), 0..4),
            )
                .prop_map(|(name, attr, text, children)| Plan {
                    name,
                    attr,
                    text,
                    children,
                })
                .boxed()
        }
    }
    fn build(doc: &mut Document, parent: websec_core::xml::NodeId, plan: &Plan) {
        let e = doc.add_element(parent, &format!("n{}", plan.name));
        if let Some(a) = plan.attr {
            doc.set_attribute(e, "a", &format!("v{a}"));
        }
        if let Some(t) = plan.text {
            doc.add_text(e, &format!("text-{t}"));
        }
        for c in &plan.children {
            build(doc, e, c);
        }
    }
    arb_plan(3).prop_map(|plan| {
        let mut doc = Document::new("root");
        let root = doc.root();
        build(&mut doc, root, &plan);
        doc
    })
}

/// Strategy: a random path over the generated name alphabet.
fn arb_path() -> impl Strategy<Value = Path> {
    (0u8..5, 0u8..5, any::<bool>()).prop_map(|(a, b, descendant)| {
        let src = if descendant {
            format!("//n{a}/n{b}")
        } else {
            format!("/root/n{a}//n{b}")
        };
        Path::parse(&src).expect("valid path")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn honest_answers_always_verify(doc in arb_document(), path in arb_path()) {
        let mut rng = SecureRng::seeded(1);
        let mut owner = Owner::new(&mut rng, 1);
        let (auth, sig) = owner.publish("d.xml", &doc).unwrap();
        let mut publisher = Publisher::new();
        publisher.host(doc.clone(), auth, sig);

        let answer = publisher.answer("d.xml", &path).unwrap();
        let expected_matches = path.select_nodes(&doc).len();
        let verified = verify_answer(&answer, &owner.public_key(), "d.xml", &path)
            .expect("honest answer must verify");
        prop_assert_eq!(verified.matched.len(), expected_matches);
    }

    #[test]
    fn dropped_match_is_always_detected(doc in arb_document(), path in arb_path()) {
        let mut rng = SecureRng::seeded(2);
        let mut owner = Owner::new(&mut rng, 1);
        let (auth, sig) = owner.publish("d.xml", &doc).unwrap();
        let mut publisher = Publisher::new();
        publisher.host(doc.clone(), auth, sig);

        let mut answer = publisher.answer("d.xml", &path).unwrap();
        prop_assume!(!answer.matched.is_empty());
        answer.matched.remove(0);
        let err = verify_answer(&answer, &owner.public_key(), "d.xml", &path).unwrap_err();
        let incomplete = matches!(err, VerifyError::Incomplete { .. });
        prop_assert!(incomplete);
    }

    #[test]
    fn content_tamper_is_always_detected(doc in arb_document(), path in arb_path(), victim in 0usize..8) {
        let mut rng = SecureRng::seeded(3);
        let mut owner = Owner::new(&mut rng, 1);
        let (auth, sig) = owner.publish("d.xml", &doc).unwrap();
        let mut publisher = Publisher::new();
        publisher.host(doc.clone(), auth, sig);

        let mut answer = publisher.answer("d.xml", &path).unwrap();
        prop_assume!(!answer.revealed.is_empty());
        let idx = victim % answer.revealed.len();
        answer.revealed[idx].1.push(b'X'); // append garbage to the content
        let result = verify_answer(&answer, &owner.public_key(), "d.xml", &path);
        prop_assert!(result.is_err());
    }
}

#[test]
fn verification_roundtrip_large_document() {
    // A deeper deterministic document exercising proofs over many leaves.
    let mut doc = Document::new("catalog");
    let root = doc.root();
    for i in 0..50 {
        let item = doc.add_element(root, "item");
        doc.set_attribute(item, "sku", &format!("s{i}"));
        let price = doc.add_element(item, "price");
        doc.add_text(price, &format!("{}", 10 + i));
    }
    let mut rng = SecureRng::seeded(4);
    let mut owner = Owner::new(&mut rng, 1);
    let (auth, sig) = owner.publish("c.xml", &doc).unwrap();
    let mut publisher = Publisher::new();
    publisher.host(doc, auth, sig);

    let path = Path::parse("/catalog/item[@sku='s25']/price").unwrap();
    let answer = publisher.answer("c.xml", &path).unwrap();
    let verified = verify_answer(&answer, &owner.public_key(), "c.xml", &path).unwrap();
    assert_eq!(verified.matched.len(), 1);
    assert!(verified.view.to_xml_string().contains("35"));
}
