//! Property-style tests for third-party publishing: random documents and
//! queries; honest answers always verify, tampered answers never do.
//! Randomized cases are driven by seeded [`SecureRng`] iteration.

use websec_core::prelude::*;
use websec_core::publish::VerifyError;

/// A small random XML document: a random nesting plan with names from a
/// five-letter alphabet, optional attributes and text.
fn random_subtree(rng: &mut SecureRng, doc: &mut Document, parent: websec_core::xml::NodeId, depth: u32) {
    let e = doc.add_element(parent, &format!("n{}", rng.gen_range(5)));
    if rng.gen_range(2) == 0 {
        let a = rng.gen_range(4);
        doc.set_attribute(e, "a", &format!("v{a}"));
    }
    if rng.gen_range(2) == 0 {
        let t = rng.gen_range(6);
        doc.add_text(e, &format!("text-{t}"));
    }
    if depth > 0 {
        let children = rng.gen_range(4);
        for _ in 0..children {
            random_subtree(rng, doc, e, depth - 1);
        }
    }
}

fn random_document(rng: &mut SecureRng) -> Document {
    let mut doc = Document::new("root");
    let root = doc.root();
    random_subtree(rng, &mut doc, root, 3);
    doc
}

/// A random path over the generated name alphabet.
fn random_path(rng: &mut SecureRng) -> Path {
    let a = rng.gen_range(5);
    let b = rng.gen_range(5);
    let src = if rng.gen_range(2) == 0 {
        format!("//n{a}/n{b}")
    } else {
        format!("/root/n{a}//n{b}")
    };
    Path::parse(&src).expect("valid path")
}

#[test]
fn honest_answers_always_verify() {
    let mut rng = SecureRng::seeded(0x9b1);
    for _ in 0..48 {
        let doc = random_document(&mut rng);
        let path = random_path(&mut rng);
        let mut owner_rng = SecureRng::seeded(1);
        let mut owner = Owner::new(&mut owner_rng, 1);
        let (auth, sig) = owner.publish("d.xml", &doc).unwrap();
        let mut publisher = Publisher::new();
        publisher.host(doc.clone(), auth, sig);

        let answer = publisher.answer("d.xml", &path).unwrap();
        let expected_matches = path.select_nodes(&doc).len();
        let verified = verify_answer(&answer, &owner.public_key(), "d.xml", &path)
            .expect("honest answer must verify");
        assert_eq!(verified.matched.len(), expected_matches);
    }
}

#[test]
fn dropped_match_is_always_detected() {
    let mut rng = SecureRng::seeded(0x9b2);
    for _ in 0..48 {
        let doc = random_document(&mut rng);
        let path = random_path(&mut rng);
        let mut owner_rng = SecureRng::seeded(2);
        let mut owner = Owner::new(&mut owner_rng, 1);
        let (auth, sig) = owner.publish("d.xml", &doc).unwrap();
        let mut publisher = Publisher::new();
        publisher.host(doc.clone(), auth, sig);

        let mut answer = publisher.answer("d.xml", &path).unwrap();
        if answer.matched.is_empty() {
            continue;
        }
        answer.matched.remove(0);
        let err = verify_answer(&answer, &owner.public_key(), "d.xml", &path).unwrap_err();
        let incomplete = matches!(err, VerifyError::Incomplete { .. });
        assert!(incomplete);
    }
}

#[test]
fn content_tamper_is_always_detected() {
    let mut rng = SecureRng::seeded(0x9b3);
    for _ in 0..48 {
        let doc = random_document(&mut rng);
        let path = random_path(&mut rng);
        let victim = rng.gen_range(8) as usize;
        let mut owner_rng = SecureRng::seeded(3);
        let mut owner = Owner::new(&mut owner_rng, 1);
        let (auth, sig) = owner.publish("d.xml", &doc).unwrap();
        let mut publisher = Publisher::new();
        publisher.host(doc.clone(), auth, sig);

        let mut answer = publisher.answer("d.xml", &path).unwrap();
        if answer.revealed.is_empty() {
            continue;
        }
        let idx = victim % answer.revealed.len();
        answer.revealed[idx].1.push(b'X'); // append garbage to the content
        let result = verify_answer(&answer, &owner.public_key(), "d.xml", &path);
        assert!(result.is_err());
    }
}

#[test]
fn verification_roundtrip_large_document() {
    // A deeper deterministic document exercising proofs over many leaves.
    let mut doc = Document::new("catalog");
    let root = doc.root();
    for i in 0..50 {
        let item = doc.add_element(root, "item");
        doc.set_attribute(item, "sku", &format!("s{i}"));
        let price = doc.add_element(item, "price");
        doc.add_text(price, &format!("{}", 10 + i));
    }
    let mut rng = SecureRng::seeded(4);
    let mut owner = Owner::new(&mut rng, 1);
    let (auth, sig) = owner.publish("c.xml", &doc).unwrap();
    let mut publisher = Publisher::new();
    publisher.host(doc, auth, sig);

    let path = Path::parse("/catalog/item[@sku='s25']/price").unwrap();
    let answer = publisher.answer("c.xml", &path).unwrap();
    let verified = verify_answer(&answer, &owner.public_key(), "c.xml", &path).unwrap();
    assert_eq!(verified.matched.len(), 1);
    assert!(verified.view.to_xml_string().contains("35"));
}
