//! Golden-file test for the scenario HTML report.
//!
//! [`render_report`] is a pure function of the history rows — no
//! timestamps, no environment reads — so a fixed two-scenario history must
//! render byte-identically forever. The golden file pins those bytes;
//! regenerate it with `BLESS=1 cargo test -p websec-integration-tests
//! --test scenario_report` after an *intentional* report change and review
//! the diff like any other artifact.

use websec_scenarios::prelude::*;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/scenario_report_golden.html"
);

/// A fixed two-scenario history: `alpha` with three passing runs (a
/// visible throughput trend) and `beta` with one failing run whose
/// violation text exercises HTML escaping.
fn fixed_history() -> History {
    let mut history = History::default();
    for (qps, rev) in [(1000.0, "rev-aaa"), (1100.0, "rev-bbb"), (1250.0, "rev-ccc")] {
        history.append_row(Json::obj(vec![
            ("name", Json::str("alpha")),
            ("seed", Json::int(0x5EED)),
            ("fingerprint", Json::str("00ff00ff00ff00ff")),
            ("rev", Json::str(rev)),
            ("requests", Json::int(1024)),
            ("ok", Json::int(879)),
            ("errors", Json::int(145)),
            ("view_digest", Json::str("8badf00d8badf00d")),
            ("violations", Json::Arr(Vec::new())),
            ("serial_qps", Json::Num(qps / 2.0)),
            ("headline_qps", Json::Num(qps)),
        ]));
    }
    history.append_row(Json::obj(vec![
        ("name", Json::str("beta")),
        ("seed", Json::int(7)),
        ("fingerprint", Json::str("deadbeefdeadbeef")),
        ("rev", Json::str("rev-ccc")),
        ("requests", Json::int(64)),
        ("ok", Json::int(60)),
        ("errors", Json::int(4)),
        ("view_digest", Json::str("cafecafecafecafe")),
        (
            "violations",
            Json::Arr(vec![Json::str(
                "error_free: request 3 failed with WS101 <unknown & unloved>",
            )]),
        ),
        ("serial_qps", Json::Num(321.5)),
        ("headline_qps", Json::Num(450.0)),
    ]));
    history
}

#[test]
fn report_matches_golden_bytes() {
    let html = render_report(&fixed_history());
    if std::env::var("BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &html).expect("bless the golden report");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (regenerate with BLESS=1)");
    assert_eq!(
        html, golden,
        "report bytes drifted from the golden file; if the change is \
         intentional, regenerate with BLESS=1 and review the diff"
    );
}

/// Sanity on top of the byte pin: the golden file itself contains the
/// things a human looks for, so a blessed-but-broken report can't sneak
/// through as "the new golden".
#[test]
fn golden_report_content_is_sound() {
    let html = render_report(&fixed_history());
    assert!(html.contains("<h2>alpha</h2>"));
    assert!(html.contains("<h2>beta</h2>"));
    assert!(html.contains("1 violation(s)"));
    assert!(
        html.contains("&lt;unknown &amp; unloved&gt;"),
        "violation text is HTML-escaped"
    );
    assert!(
        html.contains("width:240px"),
        "the best run's trend bar spans the full scale"
    );
    assert!(!html.contains("<script"), "no scripts in the static report");
}
