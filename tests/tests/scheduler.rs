//! Steal-storm suite for the lock-free batch scheduler: the Chase-Lev
//! deque's owner/thief race on the last element and the injector's claim
//! cursor are the two spots where a memory-ordering mistake would surface
//! as a lost or doubled request — or, under `WEBSEC_LOCKDEP=1`, as a
//! `WS110`/`WS111` finding from the tracked `websec_core::sync` wrappers
//! the scheduler's cursors are built on.
//!
//! Run under the detector (as check.sh does) with:
//! `WEBSEC_LOCKDEP=1 cargo test --test scheduler`

use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;

const SEEDS: u64 = 100;
const STORM_WORKERS: usize = 8;

/// With `WEBSEC_LOCKDEP=1` every test must finish with zero `WS110`/`WS111`
/// findings; with detection off the list is empty by construction.
fn assert_no_sync_findings() {
    let findings = websec_core::sync::lockdep_findings();
    assert!(
        findings.is_empty(),
        "scheduler produced sync findings:\n{}",
        findings
            .iter()
            .map(websec_core::sync::SyncFinding::machine_line)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn build_stack() -> SecureWebStack {
    let mut stack = SecureWebStack::new([9u8; 32]);
    let mut xml = String::from("<ward>");
    for i in 0..8 {
        xml.push_str(&format!("<patient id=\"p{i}\"><name>N{i}</name></patient>"));
    }
    xml.push_str("</ward>");
    stack.add_document(
        "ward.xml",
        Document::parse(&xml).unwrap(),
        ContextLabel::fixed(Level::Unclassified),
    );
    stack.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Portion {
            document: "ward.xml".into(),
            path: Path::parse("//patient").unwrap(),
        }).privilege(Privilege::Read).grant());
    stack
}

fn request(subject: &str, patient: usize) -> QueryRequest {
    QueryRequest::for_doc("ward.xml")
        .path(Path::parse(&format!("//patient[@id='p{patient}']")).unwrap())
        .subject(&SubjectProfile::new(subject))
        .clearance(Clearance(Level::Unclassified))
}

/// The 100-seed storm the tentpole is gated on: 1-element batches at an
/// 8-worker request. The scheduler must clamp to one real worker (seven
/// idle deques would only be steal targets), answer the single request,
/// and leave the detector silent — 100 times over, with the subject (and
/// so the shard placement) varying per seed.
#[test]
fn hundred_seed_steal_storm_on_single_element_batches() {
    let server = StackServer::new(build_stack());
    for seed in 0..SEEDS {
        let batch = BatchRequest::new(vec![request(
            &format!("storm-{seed}"),
            (seed % 8) as usize,
        )])
        .workers(STORM_WORKERS);
        let response = server.serve_batch(&batch);
        assert_eq!(response.results.len(), 1, "seed {seed}");
        let ok = response.results[0].as_ref().unwrap_or_else(|e| {
            panic!("seed {seed}: single-element batch failed: {e}");
        });
        assert!(ok.xml.contains(&format!("p{}", seed % 8)), "seed {seed}");
        assert_eq!(
            response.stats.workers, 1,
            "seed {seed}: a 1-element batch must clamp to one worker"
        );
        assert_eq!(response.stats.admitted, 1, "seed {seed}");
        assert_eq!(response.stats.steals, 0, "seed {seed}: nothing to steal");
    }
    assert_no_sync_findings();
}

/// Maximal steal contention: one item per deque across all eight workers,
/// so every pop is the owner/thief last-element race. Every index must be
/// claimed exactly once (the positional contract makes loss or doubling
/// visible), 100 seeds in a row.
#[test]
fn hundred_seed_storm_with_one_item_per_deque() {
    for seed in 0..SEEDS {
        let server = StackServer::new(build_stack());
        let batch = BatchRequest::new(
            (0..STORM_WORKERS)
                .map(|i| request(&format!("storm-{seed}-{i}"), i))
                .collect(),
        )
        .workers(STORM_WORKERS);
        let response = server.serve_batch(&batch);
        assert_eq!(response.results.len(), STORM_WORKERS, "seed {seed}");
        for (i, result) in response.results.iter().enumerate() {
            let ok = result.as_ref().unwrap_or_else(|e| {
                panic!("seed {seed}, position {i}: lost to the storm: {e}");
            });
            assert!(
                ok.xml.contains(&format!("p{i}")),
                "seed {seed}, position {i}: answered with someone else's view: {}",
                ok.xml
            );
        }
        assert_eq!(response.stats.workers, STORM_WORKERS, "seed {seed}");
        assert_eq!(
            response.stats.steals, response.stats.stolen_requests,
            "seed {seed}: every steal claims exactly one request"
        );
        assert_eq!(response.stats.coalesced, 0, "seed {seed}: distinct keys");
        let m = server.metrics();
        assert_eq!(m.requests, STORM_WORKERS as u64, "seed {seed}");
        assert_eq!(m.allowed, STORM_WORKERS as u64, "seed {seed}");
    }
    assert_no_sync_findings();
}

/// Deque overflow: a single-worker batch larger than the per-worker deque
/// capacity spills its tail into the shared injector, and the injector's
/// claim cursor hands every spilled index out exactly once, in order.
#[test]
fn overflow_batches_drain_through_the_injector_exactly_once() {
    let server = StackServer::new(build_stack());
    // 300 distinct subjects > the 256-slot deque: 44 spill to the injector.
    let batch = BatchRequest::new(
        (0..300).map(|i| request(&format!("spill-{i}"), i % 8)).collect(),
    )
    .workers(1);
    let response = server.serve_batch(&batch);
    assert_eq!(response.results.len(), 300);
    for (i, result) in response.results.iter().enumerate() {
        assert!(result.is_ok(), "position {i}: {result:?}");
    }
    assert_eq!(response.stats.injector_pops, 44, "300 - 256 spill over");
    assert_eq!(response.stats.steals, 0, "one worker has no one to steal from");
    assert_eq!(server.metrics().requests, 300);
    assert_no_sync_findings();
}

/// The storm under fire: small batches racing a fault plan that drops
/// channels and slows evaluations. Faults may fail requests (stable WS1xx
/// codes only) but the scheduler must still claim every index exactly once
/// and the detector must stay silent.
#[test]
fn steal_storm_under_fault_injection_stays_exactly_once() {
    let server = StackServer::new(build_stack());
    server.install_faults(
        FaultPlan::seeded(77)
            .rule(FaultRule::new(FaultKind::ChannelDrop).on(FaultSchedule::Random {
                permille: 120,
            }))
            .rule(FaultRule::new(FaultKind::SlowEval { ticks: 1 }).on(FaultSchedule::Random {
                permille: 80,
            })),
    );
    for seed in 0..SEEDS {
        let batch = BatchRequest::new(
            (0..STORM_WORKERS)
                .map(|i| request(&format!("fire-{seed}-{i}"), i))
                .collect(),
        )
        .workers(STORM_WORKERS);
        let response = server.serve_batch(&batch);
        assert_eq!(response.results.len(), STORM_WORKERS, "seed {seed}");
        for (i, result) in response.results.iter().enumerate() {
            match result {
                Ok(ok) => assert!(
                    ok.xml.contains(&format!("p{i}")),
                    "seed {seed}, position {i}: wrong view under faults"
                ),
                Err(e) => assert!(
                    e.code().starts_with("WS1"),
                    "seed {seed}, position {i}: unstable code {}",
                    e.code()
                ),
            }
        }
    }
    assert_no_sync_findings();
}
