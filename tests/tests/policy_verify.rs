//! End-to-end exercise of the static policy verifier (WS013–WS018)
//! through the serving layer: the [`AnalysisGate`] extension over the
//! compiled decision plane, token-keyed incremental re-verification
//! accounting, determinism of the emitted report, and the policy
//! error/warning gauges in [`MetricsSnapshot`].
//!
//! The per-pass positive/negative fixture matrix lives in the analyzer's
//! unit tests and in `examples/src/bin/verify_policies.rs` (the
//! `ANALYSIS_policy.json` baseline); these tests cover the serving-layer
//! integration the baseline cannot see.

use websec_core::prelude::*;
use websec_scenarios::{hospital_stack, HospitalSpec};

fn spec() -> HospitalSpec {
    HospitalSpec::small()
}

fn server() -> StackServer {
    StackServer::new(hospital_stack(&spec()))
}

/// A read probe a granted subject can answer — used to pin the served
/// bytes across a rejected publication.
fn probe() -> QueryRequest {
    QueryRequest::for_doc("records.xml")
        .path(Path::parse("//patient[@id='p0']").expect("valid path"))
        .subject(&SubjectProfile::new(&spec().granted_subject(0)))
        .clearance(Clearance(Level::Unclassified))
}

/// An equal-priority grant/deny pair on the same portion: under
/// [`ConflictStrategy::ExplicitPriority`] this is the WS014 unresolvable
/// tie (error severity), which the Deny gate must refuse to publish.
fn plant_ws014_conflict(stack: &mut SecureWebStack) {
    stack.engine.strategy = ConflictStrategy::ExplicitPriority;
    let conflicted = |sign: bool| {
        let auth = Authorization::for_subject(SubjectSpec::Anyone)
            .on(ObjectSpec::Portion {
                document: "records.xml".into(),
                path: Path::parse("//patient").expect("valid path"),
            })
            .privilege(Privilege::Read)
            .priority(3);
        if sign {
            auth.grant()
        } else {
            auth.deny()
        }
    };
    stack.policies.add(conflicted(true));
    stack.policies.add(conflicted(false));
}

#[test]
fn deny_gate_rejects_ws014_conflict_without_publishing() {
    let server = server();
    server.set_analysis_gate(AnalysisGate::Deny);
    let before = server.serve(&probe()).expect("granted probe serves").xml;

    let result = server.try_update(plant_ws014_conflict);
    match result {
        Err(e) => {
            assert_eq!(e.code(), "WS109");
            let rendered = e.to_string();
            assert!(rendered.contains("WS014"), "{rendered}");
        }
        Ok(()) => panic!("WS014-conflicting update was admitted"),
    }

    // The rejected candidate never became the snapshot: the same probe
    // serves byte-identically and the denial is accounted.
    let after = server.serve(&probe()).expect("probe still serves").xml;
    assert_eq!(before, after, "served bytes changed across a rejected update");
    let m = server.metrics();
    assert_eq!(m.gate_denials, 1);
    assert_eq!(m.policy_errors, 0, "no error published to the live snapshot");

    // A benign policy update passes the same gate.
    server
        .try_update(|s| {
            s.policies.add(
                Authorization::for_subject(SubjectSpec::Identity("auditor".into()))
                    .on(ObjectSpec::Document("records.xml".into()))
                    .privilege(Privilege::Read)
                    .grant(),
            );
        })
        .expect("benign policy update admitted");
}

#[test]
fn warn_gate_admits_conflict_and_surfaces_policy_gauges() {
    let server = server();
    server.set_analysis_gate(AnalysisGate::Warn);

    server
        .try_update(plant_ws014_conflict)
        .expect("warn gate admits");
    let m = server.metrics();
    assert_eq!(m.gate_denials, 0);
    assert!(m.policy_errors >= 1, "WS014 tie must show as a policy error gauge");
    let report = server.verify_policies();
    assert!(
        report.diagnostics.iter().any(|d| d.code == "WS014"),
        "{}",
        report.human()
    );
}

#[test]
fn policy_verifier_reuses_across_republication_and_reruns_on_policy_change() {
    let server = server();

    // Cold run: all six passes execute.
    let baseline = server.verify_policies();
    let m = server.metrics();
    assert_eq!(m.policy_passes_run, 6);
    assert_eq!(m.policy_passes_reused, 0);

    // Same token: the cached report is reused wholesale.
    let again = server.verify_policies();
    assert_eq!(baseline.to_json(), again.to_json());
    let m = server.metrics();
    assert_eq!(m.policy_passes_run, 6);
    assert_eq!(m.policy_passes_reused, 6);

    // A republication moves the token but not the policy base: the
    // fingerprint check reuses the run (this is the incremental path a
    // cache flush or unrelated epoch churn takes).
    server.invalidate_views();
    let _ = server.verify_policies();
    let m = server.metrics();
    assert_eq!(m.policy_passes_run, 6);
    assert_eq!(m.policy_passes_reused, 12);

    // A policy mutation changes the base fingerprint: the passes re-run
    // and the new report sees the planted dead rule (WS015: ghost.xml is
    // served by no document store).
    server.update(|s| {
        s.policies.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("ghost.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
    });
    let report = server.verify_policies();
    let m = server.metrics();
    assert_eq!(m.policy_passes_run, 12);
    assert_eq!(m.policy_passes_reused, 12);
    assert!(
        report.diagnostics.iter().any(|d| d.code == "WS015"),
        "{}",
        report.human()
    );
}

#[test]
fn policy_reports_are_deterministic_across_servers() {
    let first = server().verify_policies();
    let second = server().verify_policies();
    assert_eq!(first.to_json(), second.to_json());
    // Normalization is idempotent: re-normalizing changes nothing.
    let mut renorm = first.clone();
    renorm.normalize();
    assert_eq!(renorm.to_json(), first.to_json());
}
