//! Equivalence tests for every remaining `#[deprecated]` shim: each shim
//! family gets one module asserting the legacy surface returns exactly
//! what its replacement returns, so the shims can be deleted next release
//! with confidence that nothing diverged in the meantime.

#![allow(deprecated)]

/// The positional `SecureWebStack::query()` shim over the
/// `QueryRequest`/`execute()` API.
mod stack_query_shim {
    use websec_core::policy::mls::ContextLabel;
    use websec_core::prelude::*;

    fn build_stack() -> SecureWebStack {
        let mut stack = SecureWebStack::new([4u8; 32]);
        stack.add_document(
            "h.xml",
            Document::parse(
                "<hospital><patient id=\"p1\"><name>Alice</name></patient>\
                 <admin><budget>9</budget></admin></hospital>",
            )
            .unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        stack.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity("doctor".into()),
            ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            },
            Privilege::Read,
        ));
        stack
    }

    #[test]
    fn query_matches_execute_for_allowed_and_empty_views() {
        let stack = build_stack();
        let mut legacy = build_stack();
        for (identity, path_src) in [
            ("doctor", "//patient"),
            ("doctor", "//patient/name"),
            ("doctor", "//admin"),
            ("outsider", "//patient"),
        ] {
            let profile = SubjectProfile::new(identity);
            let path = Path::parse(path_src).unwrap();
            let request = QueryRequest::for_doc("h.xml")
                .path(path.clone())
                .subject(&profile)
                .clearance(Clearance(Level::Unclassified));
            let modern = stack.execute(&request).unwrap();
            let (legacy_xml, legacy_timings) = legacy
                .query(&profile, Clearance(Level::Unclassified), "h.xml", &path)
                .unwrap();
            assert_eq!(
                legacy_xml, modern.xml,
                "query()/execute() diverged for {identity} on {path_src}"
            );
            assert!(legacy_timings.total_ns() > 0);
        }
    }

    #[test]
    fn query_matches_execute_on_errors() {
        let stack = build_stack();
        let mut legacy = build_stack();
        let profile = SubjectProfile::new("doctor");
        let path = Path::parse("//x").unwrap();
        let request = QueryRequest::for_doc("missing.xml")
            .path(path.clone())
            .subject(&profile)
            .clearance(Clearance(Level::Unclassified));
        assert_eq!(stack.execute(&request).unwrap_err().code(), "WS101");
        assert!(legacy
            .query(&profile, Clearance(Level::Unclassified), "missing.xml", &path)
            .is_err());
    }
}

/// The `ServerMetrics` type alias and the deprecated `cached_views()` /
/// `session_count()` accessors over `metrics()`.
mod server_metrics_shims {
    use websec_core::policy::mls::ContextLabel;
    use websec_core::prelude::*;

    fn server() -> StackServer {
        let mut stack = SecureWebStack::new([4u8; 32]);
        stack.add_document(
            "h.xml",
            Document::parse("<h><a id=\"x\">1</a></h>").unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        stack.policies.add(Authorization::grant(
            0,
            SubjectSpec::Anyone,
            ObjectSpec::Document("h.xml".into()),
            Privilege::Read,
        ));
        StackServer::new(stack)
    }

    #[test]
    fn alias_and_accessors_agree_with_the_snapshot() {
        let server = server();
        for i in 0..6 {
            let request = QueryRequest::for_doc("h.xml")
                .path(Path::parse("//a").unwrap())
                .subject(&SubjectProfile::new(&format!("reader-{}", i % 3)))
                .clearance(Clearance(Level::Unclassified));
            server.serve(&request).unwrap();
        }
        // The alias is the same type: a snapshot binds under either name.
        let snapshot: ServerMetrics = server.metrics();
        let modern: MetricsSnapshot = server.metrics();
        assert_eq!(snapshot.requests, modern.requests);
        assert_eq!(snapshot.requests, 6);
        // Deprecated counters mirror their snapshot replacements.
        assert_eq!(server.cached_views() as u64, modern.cached_views);
        assert_eq!(server.session_count() as u64, modern.sessions_open);
        assert_eq!(modern.sessions_open, 3);
        assert_eq!(modern.cached_views, 3);
    }
}

/// The positional `StackServer::serve_batch_positional(&[QueryRequest],
/// workers)` shim over the `BatchRequest` builder + `serve_batch()` API.
mod serve_batch_positional_shim {
    use websec_core::policy::mls::ContextLabel;
    use websec_core::prelude::*;

    fn build_stack() -> SecureWebStack {
        let mut stack = SecureWebStack::new([4u8; 32]);
        let mut xml = String::from("<ward>");
        for i in 0..8 {
            xml.push_str(&format!("<patient id=\"p{i}\"><name>N{i}</name></patient>"));
        }
        xml.push_str("</ward>");
        stack.add_document(
            "ward.xml",
            Document::parse(&xml).unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        for d in 0..4 {
            stack.policies.add(Authorization::grant(
                0,
                SubjectSpec::Identity(format!("doctor-{d}")),
                ObjectSpec::Portion {
                    document: "ward.xml".into(),
                    path: Path::parse("//patient").unwrap(),
                },
                Privilege::Read,
            ));
        }
        stack
    }

    /// Mixed successes (with duplicates, so coalescing engages) and
    /// unknown-document errors.
    fn build_requests() -> Vec<QueryRequest> {
        (0..64)
            .map(|i| {
                let doc = if i % 13 == 5 { "missing.xml" } else { "ward.xml" };
                QueryRequest::for_doc(doc)
                    .path(Path::parse(&format!("//patient[@id='p{}']", i % 8)).unwrap())
                    .subject(&SubjectProfile::new(&format!("doctor-{}", i % 4)))
                    .clearance(Clearance(Level::Unclassified))
            })
            .collect()
    }

    #[test]
    fn positional_shim_matches_batch_request_for_every_position() {
        let requests = build_requests();
        for workers in [1, 4] {
            let legacy_server = StackServer::new(build_stack());
            let legacy = legacy_server.serve_batch_positional(&requests, workers);

            let modern_server = StackServer::new(build_stack());
            let modern = modern_server
                .serve_batch(&BatchRequest::new(requests.clone()).workers(workers))
                .results;

            assert_eq!(legacy.len(), modern.len());
            for (i, (l, m)) in legacy.iter().zip(modern.iter()).enumerate() {
                match (l, m) {
                    (Ok(lr), Ok(mr)) => {
                        assert_eq!(lr.xml, mr.xml, "request {i} ({workers} workers)");
                        assert_eq!(lr.decision, mr.decision, "request {i}");
                    }
                    (Err(le), Err(me)) => {
                        assert_eq!(le.code(), me.code(), "request {i} ({workers} workers)");
                    }
                    _ => panic!("request {i} ({workers} workers): shim and API disagree"),
                }
            }
        }
    }

    #[test]
    fn shed_tail_is_identical_through_both_surfaces() {
        let requests = build_requests();
        let legacy_server = StackServer::new(build_stack());
        legacy_server.set_queue_limit(4);
        let legacy = legacy_server.serve_batch_positional(&requests, 2);

        let modern_server = StackServer::new(build_stack());
        modern_server.set_queue_limit(4);
        let modern = modern_server
            .serve_batch(&BatchRequest::new(requests.clone()).workers(2))
            .results;

        for (i, (l, m)) in legacy.iter().zip(modern.iter()).enumerate() {
            assert_eq!(l.is_ok(), m.is_ok(), "request {i}");
            if i >= 8 {
                assert_eq!(l.as_ref().unwrap_err().code(), "WS108", "request {i}");
                assert_eq!(m.as_ref().unwrap_err().code(), "WS108", "request {i}");
            }
        }
    }
}

/// The positional `Authorization::grant()` / `Authorization::deny()`
/// constructors over the `Authorization::for_subject(..)` builder.
mod authorization_positional_shims {
    use websec_core::prelude::*;

    fn objects() -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::AllDocuments,
            ObjectSpec::Document("h.xml".into()),
            ObjectSpec::Collection("wards".into()),
            ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient/@ssn").unwrap(),
            },
            ObjectSpec::PortionAll(Path::parse("//record").unwrap()),
        ]
    }

    fn subjects() -> Vec<SubjectSpec> {
        vec![
            SubjectSpec::Anyone,
            SubjectSpec::Identity("alice".into()),
            SubjectSpec::InRole(Role::new("doctor")),
            SubjectSpec::WithCredentials(CredentialExpr::OfType("physician".into())),
        ]
    }

    #[test]
    fn builder_matches_positional_across_the_matrix() {
        for subject in subjects() {
            for object in objects() {
                for privilege in [
                    Privilege::Browse,
                    Privilege::Read,
                    Privilege::Write,
                    Privilege::Admin,
                ] {
                    for id in [0u32, 7] {
                        let legacy =
                            Authorization::grant(id, subject.clone(), object.clone(), privilege);
                        let modern = Authorization::for_subject(subject.clone())
                            .on(object.clone())
                            .privilege(privilege)
                            .id(id)
                            .grant();
                        assert_eq!(format!("{legacy:?}"), format!("{modern:?}"));

                        let legacy =
                            Authorization::deny(id, subject.clone(), object.clone(), privilege);
                        let modern = Authorization::for_subject(subject.clone())
                            .on(object.clone())
                            .privilege(privilege)
                            .id(id)
                            .deny();
                        assert_eq!(format!("{legacy:?}"), format!("{modern:?}"));
                    }
                }
            }
        }
    }

    #[test]
    fn builder_overrides_match_with_style_chains() {
        let legacy = Authorization::grant(
            0,
            SubjectSpec::Anyone,
            ObjectSpec::Document("h.xml".into()),
            Privilege::Read,
        )
        .with_propagation(Propagation::FirstLevel)
        .with_priority(9);
        let modern = Authorization::for_subject(SubjectSpec::Anyone)
            .on(ObjectSpec::Document("h.xml".into()))
            .privilege(Privilege::Read)
            .propagation(Propagation::FirstLevel)
            .priority(9)
            .grant();
        assert_eq!(format!("{legacy:?}"), format!("{modern:?}"));
        // The explicit-sign terminal is the grant/deny generalization.
        let signed = Authorization::for_subject(SubjectSpec::Anyone)
            .on(ObjectSpec::Document("h.xml".into()))
            .privilege(Privilege::Read)
            .propagation(Propagation::FirstLevel)
            .priority(9)
            .sign(Sign::Plus);
        assert_eq!(format!("{signed:?}"), format!("{modern:?}"));
    }
}

/// The panicking `FlexibleEnforcer::set_level` over `try_set_level`.
mod flexible_set_level_shim {
    use websec_core::policy::flexible::InvalidLevel;
    use websec_core::prelude::*;

    #[test]
    fn valid_updates_agree() {
        let mut legacy = FlexibleEnforcer::new(10, [6u8; 32]);
        let mut modern = FlexibleEnforcer::new(10, [6u8; 32]);
        for level in [0u8, 30, 100] {
            legacy.set_level(level);
            modern.try_set_level(level).unwrap();
            assert_eq!(legacy.level(), modern.level());
            for key in [b"req-a".as_slice(), b"req-b"] {
                assert_eq!(legacy.decide(key), modern.decide(key));
            }
        }
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn shim_still_panics_where_try_errs() {
        let mut gate = FlexibleEnforcer::new(10, [6u8; 32]);
        assert_eq!(gate.try_set_level(200), Err(InvalidLevel(200)));
        gate.set_level(200);
    }
}

/// The `Registry` alias and the positional UDDI inquiry shims over the
/// `InquiryRequest` builder + `inquire()` entry point.
mod uddi_inquiry_shims {
    use websec_core::prelude::*;
    use websec_core::uddi::{
        BindingTemplate, BusinessEntity, BusinessService, FindQualifier, InquiryRequest,
        InquiryResponse, PublisherAssertion, Registry, TModel, UddiRegistry,
    };

    fn fixture() -> UddiRegistry {
        let mut registry = UddiRegistry::new();
        let mut acme = BusinessEntity::new("biz-acme", "Acme Healthcare");
        let mut scheduling = BusinessService::new("svc-sched", "Appointment Scheduling");
        scheduling.binding_templates.push(BindingTemplate {
            binding_key: "bind-1".into(),
            access_point: "https://acme.example/soap".into(),
            description: "production".into(),
            tmodel_keys: vec!["uddi:tm-sched".into()],
        });
        acme.services.push(scheduling);
        registry.save_business(acme);
        registry.save_business(BusinessEntity::new("biz-beta", "Beta Records"));
        registry.save_tmodel(TModel::new("uddi:tm-sched", "Scheduling Interface"));
        registry.add_assertion(PublisherAssertion {
            from_key: "biz-acme".into(),
            to_key: "biz-beta".into(),
            relationship: "peer-peer".into(),
        });
        registry.add_assertion(PublisherAssertion {
            from_key: "biz-beta".into(),
            to_key: "biz-acme".into(),
            relationship: "peer-peer".into(),
        });
        registry.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity("agent".into()),
            ObjectSpec::Document("biz-acme".into()),
            Privilege::Read,
        ));
        registry
    }

    #[test]
    fn registry_alias_is_the_same_type() {
        let mut registry: Registry = Registry::new();
        registry.save_business(BusinessEntity::new("biz-1", "Gamma"));
        assert_eq!(registry.business_count(), 1);
        let response = registry
            .inquire(&InquiryRequest::find_business().name_approx("gam"))
            .unwrap();
        match response {
            InquiryResponse::Businesses(rows) => assert_eq!(rows[0].business_key, "biz-1"),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn find_shims_match_inquire() {
        let registry = fixture();
        let q = FindQualifier::NameApprox("acme".into());
        match registry
            .inquire(&InquiryRequest::find_business().qualifier(q.clone()))
            .unwrap()
        {
            InquiryResponse::Businesses(rows) => assert_eq!(rows, registry.find_business(&q)),
            other => panic!("unexpected response {other:?}"),
        }
        let q = FindQualifier::UsesTModel("uddi:tm-sched".into());
        match registry
            .inquire(&InquiryRequest::find_service().qualifier(q.clone()))
            .unwrap()
        {
            InquiryResponse::Services(rows) => assert_eq!(rows, registry.find_service(&q)),
            other => panic!("unexpected response {other:?}"),
        }
        let q = FindQualifier::NameApprox("sched".into());
        match registry
            .inquire(&InquiryRequest::find_tmodel().qualifier(q.clone()))
            .unwrap()
        {
            InquiryResponse::TModels(rows) => {
                let legacy = registry.find_tmodel(&q);
                assert_eq!(
                    rows.iter()
                        .map(|tm| (tm.tmodel_key.clone(), tm.name.clone()))
                        .collect::<Vec<_>>(),
                    legacy
                );
                assert!(!legacy.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
        match registry
            .inquire(&InquiryRequest::find_related("biz-acme"))
            .unwrap()
        {
            InquiryResponse::RelatedBusinesses(keys) => {
                assert_eq!(keys, registry.find_related_businesses("biz-acme"));
                assert_eq!(keys, vec!["biz-beta".to_string()]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn drill_down_shims_match_inquire() {
        let registry = fixture();
        match registry
            .inquire(&InquiryRequest::get_business("biz-acme"))
            .unwrap()
        {
            InquiryResponse::BusinessDetail(be) => {
                assert_eq!(&be, registry.get_business_detail("biz-acme").unwrap());
            }
            other => panic!("unexpected response {other:?}"),
        }
        match registry
            .inquire(&InquiryRequest::get_service("svc-sched"))
            .unwrap()
        {
            InquiryResponse::ServiceDetail {
                business_key,
                service,
            } => {
                let (legacy_key, legacy_svc) = registry.get_service_detail("svc-sched").unwrap();
                assert_eq!(business_key, legacy_key);
                assert_eq!(&service, legacy_svc);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match registry
            .inquire(&InquiryRequest::get_binding("bind-1"))
            .unwrap()
        {
            InquiryResponse::BindingDetail(bt) => {
                assert_eq!(&bt, registry.get_binding_detail("bind-1").unwrap());
            }
            other => panic!("unexpected response {other:?}"),
        }
        match registry
            .inquire(&InquiryRequest::get_tmodel("uddi:tm-sched"))
            .unwrap()
        {
            InquiryResponse::TModelDetail(tm) => {
                assert_eq!(&tm, registry.get_tmodel_detail("uddi:tm-sched").unwrap());
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Unknown keys err identically through both surfaces.
        assert_eq!(
            registry
                .inquire(&InquiryRequest::get_business("biz-none"))
                .unwrap_err(),
            registry.get_business_detail("biz-none").unwrap_err()
        );
    }

    #[test]
    fn access_controlled_shims_match_inquire() {
        let registry = fixture();
        let agent = SubjectProfile::new("agent");
        let outsider = SubjectProfile::new("outsider");

        match registry
            .inquire(&InquiryRequest::get_business("biz-acme").on_behalf_of(&agent))
            .unwrap()
        {
            InquiryResponse::AuthorizedBusinessView(view) => {
                let legacy = registry.get_business_detail_for("biz-acme", &agent).unwrap();
                assert_eq!(view.to_xml_string(), legacy.to_xml_string());
                assert!(view.to_xml_string().contains("Acme Healthcare"));
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Denied identically through both surfaces.
        assert!(registry
            .inquire(&InquiryRequest::get_business("biz-acme").on_behalf_of(&outsider))
            .is_err());
        assert!(registry
            .get_business_detail_for("biz-acme", &outsider)
            .is_err());

        let q = FindQualifier::NameApprox(String::new());
        match registry
            .inquire(
                &InquiryRequest::find_business()
                    .qualifier(q.clone())
                    .on_behalf_of(&agent),
            )
            .unwrap()
        {
            InquiryResponse::Businesses(rows) => {
                assert_eq!(rows, registry.find_business_for(&q, &agent));
                assert_eq!(rows.len(), 1, "the agent may only read acme's entry");
                assert_eq!(rows[0].business_key, "biz-acme");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
