//! Property-style invariants across subsystems: RDFS closure laws,
//! dissemination confidentiality, statistical-gate safety, secure-query
//! strategy equivalence. Randomized cases are driven by seeded
//! [`SecureRng`] iteration (the workspace builds fully offline).

use websec_core::prelude::*;
use websec_core::rdf::schema::rdfs;
use websec_core::rdf::store::rdf as rdf_ns;

fn iri(i: u8) -> Term {
    Term::iri(&format!("r{i}"))
}

/// A random small RDF graph mixing schema and instance triples.
fn random_graph(rng: &mut SecureRng) -> TripleStore {
    let mut store = TripleStore::new();
    let edges = 1 + rng.gen_range(24) as usize;
    for _ in 0..edges {
        let s = rng.gen_range(8) as u8;
        let p = rng.gen_range(4) as u8;
        let o = rng.gen_range(8) as u8;
        let pred = match p {
            0 => Term::iri(rdfs::SUB_CLASS_OF),
            1 => Term::iri(rdf_ns::TYPE),
            2 => Term::iri("knows"),
            _ => Term::iri(rdfs::SUB_PROPERTY_OF),
        };
        store.insert(&Triple::new(iri(s), pred, iri(o)));
    }
    store
}

/// Closure laws: contains the input, idempotent, monotone.
#[test]
fn closure_laws() {
    let mut rng = SecureRng::seeded(0x11a1);
    for _ in 0..48 {
        let graph = random_graph(&mut rng);
        let closed = Schema::closure(&graph);
        // Contains the input.
        for t in graph.all() {
            assert!(closed.contains(&t));
        }
        // Idempotent.
        let twice = Schema::closure(&closed);
        assert_eq!(closed.len(), twice.len());
        // Monotone: adding a triple never shrinks the closure.
        let mut bigger = graph.clone();
        bigger.insert(&Triple::new(iri(0), Term::iri(rdfs::SUB_CLASS_OF), iri(7)));
        let closed_bigger = Schema::closure(&bigger);
        assert!(closed_bigger.len() >= closed.len());
        for t in closed.all() {
            assert!(closed_bigger.contains(&t));
        }
    }
}

/// Dissemination confidentiality: whatever policies exist, a subject with
/// no matching policy opens nothing, and any subject's view text is a
/// subset of the document's text.
#[test]
fn dissemination_confidentiality() {
    let mut rng = SecureRng::seeded(0x11a2);
    for _ in 0..48 {
        let patient_count = 1 + rng.gen_range(5) as usize;
        let n_grants = rng.gen_range(4) as usize;
        let granted_subjects: Vec<u8> =
            (0..n_grants).map(|_| rng.gen_range(4) as u8).collect();

        let mut xml = String::from("<hospital>");
        for i in 0..patient_count {
            xml.push_str(&format!("<patient id=\"p{i}\"><name>N{i}</name></patient>"));
        }
        xml.push_str("</hospital>");
        let doc = Document::parse(&xml).unwrap();

        let mut store = PolicyStore::new();
        for (k, &s) in granted_subjects.iter().enumerate() {
            store.add(Authorization::for_subject(SubjectSpec::Identity(format!("user-{s}"))).on(ObjectSpec::Portion {
                    document: "d".into(),
                    path: Path::parse(&format!("//patient[@id='p{}']", k % patient_count))
                        .unwrap(),
                }).privilege(Privilege::Read).grant());
        }
        let map = RegionMap::build(&store, "d", &doc);
        let authority = KeyAuthority::new("d", [9u8; 32]);
        let package = DissemPackage::seal(&map, b"prop", |r| authority.region_key(&map, r.id));

        // A subject with no grants opens nothing.
        let stranger = authority.keys_for(&store, &map, &SubjectProfile::new("stranger"));
        assert!(stranger.is_empty());

        // Every granted subject's view mentions only its own patients.
        for &s in &granted_subjects {
            let profile = SubjectProfile::new(&format!("user-{s}"));
            let keyring = authority.keys_for(&store, &map, &profile);
            if keyring.is_empty() {
                continue;
            }
            let view = package.open(&keyring).unwrap();
            let text = view.to_xml_string();
            for i in 0..patient_count {
                let marker = format!("N{i}");
                if text.contains(&marker) {
                    // The subject must hold a grant on patient i.
                    let entitled = granted_subjects
                        .iter()
                        .enumerate()
                        .any(|(k, &gs)| gs == s && k % patient_count == i);
                    assert!(entitled, "user-{s} sees {marker} without a grant");
                }
            }
        }
    }
}

/// The statistical gate never answers a query over fewer than k rows (or
/// its complement), for any query in the equality language.
#[test]
fn statistical_gate_small_sets_never_answered() {
    let mut rng = SecureRng::seeded(0x11a3);
    for _ in 0..48 {
        let k = 2 + rng.gen_range(3) as usize;
        let rows = 6 + rng.gen_range(14) as usize;
        let dept_of: Vec<u8> = (0..rows).map(|_| rng.gen_range(4) as u8).collect();
        let probe_dept = rng.gen_range(4) as u8;

        let mut table = Table::new("staff", &["id", "dept", "salary"]);
        for (i, &d) in dept_of.iter().enumerate() {
            table.insert(vec![
                (i as i64).into(),
                format!("d{d}").as_str().into(),
                (100 + i as i64).into(),
            ]);
        }
        let n = table.len();
        let mut gate = StatisticalGate::new(table, k);
        let q = AggregateQuery::sum("salary").filter("dept", format!("d{probe_dept}").as_str());
        let matching = dept_of.iter().filter(|&&d| d == probe_dept).count();
        let decision = gate.execute("subject", &q);
        if matching < k || n - matching < k {
            assert!(
                !matches!(decision, AggregateDecision::Answer(_)),
                "answered a {matching}-row set with k={k}: {decision:?}"
            );
        } else {
            assert!(matches!(decision, AggregateDecision::Answer(_)));
        }
    }
}

/// Secure query processing: the two strategies agree on arbitrary policy
/// bases (closed under the generators used by E1).
#[test]
fn query_strategies_agree() {
    let mut rng = SecureRng::seeded(0x11a4);
    for _ in 0..48 {
        let n_rules = rng.gen_range(5) as usize;
        let rules: Vec<(bool, u8)> = (0..n_rules)
            .map(|_| (rng.gen_range(2) == 0, rng.gen_range(3) as u8))
            .collect();
        let query_name = rng.gen_range(3) as u8;

        let doc = Document::parse(
            "<r><n0 a=\"1\"><n1>x</n1></n0><n1><n2/></n1><n2>y</n2></r>",
        )
        .unwrap();
        let mut store = PolicyStore::new();
        for (grant, name) in &rules {
            let object = ObjectSpec::Portion {
                document: "d".into(),
                path: Path::parse(&format!("//n{name}")).unwrap(),
            };
            let auth = if *grant {
                Authorization::for_subject(SubjectSpec::Anyone).on(object).privilege(Privilege::Read).grant()
            } else {
                Authorization::for_subject(SubjectSpec::Anyone).on(object).privilege(Privilege::Read).deny()
            };
            store.add(auth);
        }
        let processor = SecureQueryProcessor::new(&store, PolicyEngine::default());
        let profile = SubjectProfile::new("u");
        let path = Path::parse(&format!("//n{query_name}")).unwrap();
        let a = processor.query(&profile, "d", &doc, &path, QueryStrategy::ViewFirst);
        let b = processor.query(&profile, "d", &doc, &path, QueryStrategy::FilterAfter);
        assert_eq!(a, b);
    }
}
