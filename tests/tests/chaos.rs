//! Chaos suite for the sharded serving engine: a seeded fault-schedule
//! sweep plus exact-counter assertions against deterministic schedules.
//!
//! The sweep's contract, per seed: under an armed [`FaultPlan`] every
//! batch position is either **byte-identical to the fault-free reference**
//! or a stable `WS1xx` error — never a wrong document, never a stale view
//! past an epoch bump — and once the plan is cleared the server serves
//! cleanly again (retries with backoff absorb the residual poisoned
//! sessions).
//!
//! **Replaying a failing seed**: every assertion message carries the seed.
//! Set `CHAOS_SEEDS` to sweep fewer/more seeds (default 200; `check.sh`
//! runs tier-1 with 25); to chase one failure, re-run with the plan for
//! that seed — the schedule is a pure function of it.

use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;

/// Seeds swept by default; override with the `CHAOS_SEEDS` env knob.
const DEFAULT_CHAOS_SEEDS: u64 = 200;

const CHAOS_SUBJECTS: usize = 4;
const CHAOS_PATIENTS: usize = 8;
const CHAOS_REQUESTS: usize = 32;

fn chaos_seeds() -> u64 {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CHAOS_SEEDS)
        .max(1)
}

fn build_stack() -> SecureWebStack {
    let mut stack = SecureWebStack::new([9u8; 32]);
    let mut xml = String::from("<ward>");
    for i in 0..CHAOS_PATIENTS {
        xml.push_str(&format!("<patient id=\"p{i}\"><record>r{i}</record></patient>"));
    }
    xml.push_str("</ward>");
    stack.add_document(
        "ward.xml",
        Document::parse(&xml).unwrap(),
        ContextLabel::fixed(Level::Unclassified),
    );
    stack.add_document(
        "secret.xml",
        Document::parse("<ops><plan>atlantis</plan></ops>").unwrap(),
        ContextLabel::fixed(Level::Secret),
    );
    for d in 0..CHAOS_SUBJECTS {
        stack.policies.add(Authorization::for_subject(SubjectSpec::Identity(format!("subject-{d}"))).on(ObjectSpec::Portion {
                document: "ward.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
    }
    stack.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("secret.xml".into())).privilege(Privilege::Read).grant());
    stack
}

/// A fixed mixed workload: authorized ward queries, clearance-denied
/// probes (`WS102`), and unknown-document errors (`WS101`).
fn build_requests() -> Vec<QueryRequest> {
    (0..CHAOS_REQUESTS)
        .map(|i| {
            let subject = SubjectProfile::new(&format!("subject-{}", i % CHAOS_SUBJECTS));
            if i % 9 == 4 {
                QueryRequest::for_doc("secret.xml")
                    .path(Path::parse("//plan").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else if i % 11 == 7 {
                QueryRequest::for_doc("missing.xml")
                    .path(Path::parse("//x").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else {
                QueryRequest::for_doc("ward.xml")
                    .path(Path::parse(&format!("//patient[@id='p{}']", i % CHAOS_PATIENTS)).unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            }
        })
        .collect()
}

/// A per-seed plan with at least four rule kinds spanning all four
/// injection layers: always channel drops, cache evictions, and scoped
/// worker panics, plus one rotating extra (tamper / lock-poison /
/// slow-eval). Every parameter derives from the seed, so a failing seed
/// replays its exact plan.
fn plan_for(seed: u64) -> FaultPlan {
    let mut rng = SecureRng::seeded(seed ^ 0xC0DE_FA17);
    let panicking_subject = format!("subject-{}", rng.gen_range(CHAOS_SUBJECTS as u64));
    let mut plan = FaultPlan::seeded(seed)
        .rule(
            FaultRule::new(FaultKind::ChannelDrop)
                .on(FaultSchedule::Random { permille: 150 }),
        )
        .rule(
            FaultRule::new(FaultKind::CacheEvict)
                .on(FaultSchedule::Random { permille: 250 }),
        )
        .rule(
            FaultRule::new(FaultKind::WorkerPanic)
                .for_subject(&panicking_subject)
                .on(FaultSchedule::Nth {
                    every: 4 + rng.gen_range(4),
                    offset: rng.next_u64(),
                }),
        );
    plan = match rng.gen_range(3) {
        0 => plan.rule(
            FaultRule::new(FaultKind::ChannelTamper)
                .on(FaultSchedule::Random { permille: 100 }),
        ),
        1 => plan.rule(FaultRule::new(FaultKind::LockPoison).on(FaultSchedule::Nth {
            every: 5 + rng.gen_range(3),
            offset: rng.next_u64(),
        })),
        _ => plan.rule(
            FaultRule::new(FaultKind::SlowEval {
                ticks: 1 + rng.gen_range(3),
            })
            .on(FaultSchedule::Random { permille: 200 }),
        ),
    };
    plan
}

/// Regression oracle for the concurrency-correctness layer: when the
/// suite runs with `WEBSEC_LOCKDEP=1`, every test must finish with zero
/// `WS110`/`WS111` findings (with detection off the list is empty by
/// construction, so the assertion is free).
fn assert_no_sync_findings() {
    let findings = websec_core::sync::lockdep_findings();
    assert!(
        findings.is_empty(),
        "lockdep/race detector reported findings:\n{}",
        findings
            .iter()
            .map(websec_core::sync::SyncFinding::machine_line)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn assert_ws1xx(code: &str, seed: u64, i: usize) {
    const STABLE: [&str; 8] = [
        "WS101", "WS102", "WS103", "WS104", "WS105", "WS106", "WS107", "WS108",
    ];
    assert!(
        STABLE.contains(&code),
        "seed {seed}, request {i}: unstable error code {code}"
    );
}

/// The tentpole sweep: for every seed, a faulted batch yields only correct
/// responses or `WS1xx` errors; the injected multiset is replayable; a
/// revocation under fire never leaks a stale view; and the server self-heals
/// once the plan is cleared.
#[test]
fn seeded_fault_sweep_yields_only_ws1xx_or_correct_answers() {
    let requests = build_requests();
    let reference_server = StackServer::new(build_stack());
    let reference: Vec<_> = requests.iter().map(|r| reference_server.serve(r)).collect();
    let doctor_requests: Vec<QueryRequest> = requests
        .iter()
        .filter(|r| r.doc_name() == "ward.xml")
        .cloned()
        .collect();

    let seeds = chaos_seeds();
    let mut total_injected = 0u64;
    let mut total_faulted_errors = 0u64;
    for seed in 0..seeds {
        let mut rng = SecureRng::seeded(seed ^ 0x5EED);
        let workers = 1 + rng.gen_range(4) as usize;
        let plan = plan_for(seed);
        assert!(plan.rules().len() >= 4, "seed {seed}: plan lost rules");

        let server = StackServer::new(build_stack());
        let injector = server.install_faults(plan.clone());
        let results = server
            .serve_batch(&BatchRequest::new(requests.clone()).workers(workers))
            .results;

        for (i, (faulted, expected)) in results.iter().zip(reference.iter()).enumerate() {
            match faulted {
                Ok(got) => {
                    // A fault may fail a request, never falsify one: an Ok
                    // under injection must match the fault-free reference.
                    let want = expected.as_ref().unwrap_or_else(|e| {
                        panic!(
                            "seed {seed}, request {i} ({workers} workers): injection turned \
                             error {e} into a success"
                        )
                    });
                    assert_eq!(
                        got.xml, want.xml,
                        "seed {seed}, request {i} ({workers} workers): wrong document served"
                    );
                    assert_eq!(
                        got.decision, want.decision,
                        "seed {seed}, request {i} ({workers} workers): decision diverged"
                    );
                }
                Err(e) => {
                    assert_ws1xx(e.code(), seed, i);
                    total_faulted_errors += 1;
                }
            }
        }
        total_injected += injector.fired_total();

        // Determinism spot-check: two serial runs of the same plan against
        // the same workload inject the same fault multiset AND produce the
        // same outcome vector, request for request. (Serial, because under
        // a multi-worker batch the *number* of cache/eval events depends on
        // coalescing and L1 placement — only the fate per event is fixed.)
        if seed % 4 == 0 {
            let serial = || {
                let replay_server = StackServer::new(build_stack());
                let replay = replay_server.install_faults(plan.clone());
                let outcomes: Vec<Result<(String, Decision), String>> = requests
                    .iter()
                    .map(|r| {
                        replay_server
                            .serve(r)
                            .map(|ok| (ok.xml, ok.decision))
                            .map_err(|e| e.code().to_string())
                    })
                    .collect();
                (replay.fired_counts(), outcomes)
            };
            let (first_fired, first_outcomes) = serial();
            let (second_fired, second_outcomes) = serial();
            assert_eq!(
                first_fired, second_fired,
                "seed {seed}: fault schedule did not replay across serial runs"
            );
            assert_eq!(
                first_outcomes, second_outcomes,
                "seed {seed}: serial outcome vector did not replay"
            );
        }

        // Self-heal: with the plan cleared, bounded retries absorb any
        // residual poisoned session and every answer matches the reference.
        server.clear_faults();
        let policy = RetryPolicy::new(4).backoff_range(1, 16).jitter_seed(seed);
        for (i, (request, expected)) in requests.iter().zip(reference.iter()).enumerate() {
            match (server.serve_with_retry(request, &policy), expected) {
                (Ok(got), Ok(want)) => {
                    assert_eq!(
                        got.xml, want.xml,
                        "seed {seed}, request {i}: post-clear answer diverged"
                    );
                    assert_eq!(got.decision, want.decision, "seed {seed}, request {i}");
                }
                (Err(got), Err(want)) => assert_eq!(
                    got.code(),
                    want.code(),
                    "seed {seed}, request {i}: post-clear error code diverged"
                ),
                (got, want) => panic!(
                    "seed {seed}, request {i}: cleared server disagrees with reference \
                     (got {got:?}, want {want:?})"
                ),
            }
        }

        // Revocation under fire: re-arm the plan, revoke every ward grant,
        // and demand that no request served after the epoch bump sees the
        // revoked portion — faults may fail requests, not resurrect views.
        server.install_faults(plan);
        server.update(|stack| {
            stack.policies.revoke_matching(|a| {
                matches!(&a.subject, SubjectSpec::Identity(id) if id.starts_with("subject-"))
            })
        });
        let post_revoke = server
            .serve_batch(&BatchRequest::new(doctor_requests.clone()).workers(workers));
        for (i, result) in post_revoke.results.iter().enumerate() {
            match result {
                Ok(response) => assert!(
                    response.xml.is_empty(),
                    "seed {seed}, request {i}: stale view served past the epoch bump: {}",
                    response.xml
                ),
                Err(e) => assert_ws1xx(e.code(), seed, i),
            }
        }
    }
    assert!(
        total_injected > 0,
        "the sweep never injected a fault across {seeds} seeds"
    );
    assert!(
        total_faulted_errors > 0,
        "the sweep never surfaced a faulted request across {seeds} seeds"
    );
    assert_no_sync_findings();
}

fn ward_request(subject: &str, patient: usize) -> QueryRequest {
    QueryRequest::for_doc("ward.xml")
        .path(Path::parse(&format!("//patient[@id='p{patient}']")).unwrap())
        .subject(&SubjectProfile::new(subject))
        .clearance(Clearance(Level::Unclassified))
}

/// `Until(n)` models a transient outage: exactly the first `n` requests of
/// the scoped stream fail, and every counter agrees with the schedule.
#[test]
fn until_schedule_injects_exactly_the_scheduled_drops() {
    let server = StackServer::new(build_stack());
    let injector = server.install_faults(FaultPlan::seeded(11).rule(
        FaultRule::new(FaultKind::ChannelDrop)
            .for_subject("subject-0")
            .on(FaultSchedule::Until(3)),
    ));
    for i in 0..6 {
        let result = server.serve(&ward_request("subject-0", 1));
        if i < 3 {
            assert_eq!(result.unwrap_err().code(), "WS103", "request {i}");
        } else {
            assert!(result.unwrap().xml.contains("p1"), "request {i}");
        }
    }
    // An unscoped subject never matches the rule.
    assert!(server.serve(&ward_request("subject-1", 1)).is_ok());
    assert_eq!(injector.fired(0), 3);
    assert_eq!(injector.fired_total(), 3);
    let m = server.metrics();
    assert_eq!(m.faults_injected, 3);
    assert_eq!(m.errors, 3);
    assert_eq!(m.allowed, 4);
    assert_no_sync_findings();
}

/// An injected slowdown exhausts a tick budget (`WS107`) exactly once; the
/// same slowdown leaves unbudgeted and generously budgeted requests alone.
#[test]
fn slow_eval_exhausts_the_deadline_budget_exactly() {
    let server = StackServer::new(build_stack());
    server.install_faults(
        FaultPlan::seeded(12)
            .rule(FaultRule::new(FaultKind::SlowEval { ticks: 10 }).on(FaultSchedule::Always)),
    );
    let err = server
        .serve(&ward_request("subject-0", 1).deadline_ticks(5))
        .unwrap_err();
    assert_eq!(err.code(), "WS107");
    assert_eq!(server.logical_now(), 10, "clock advances only by the injected ticks");

    // No budget: the slowdown costs ticks but the request succeeds.
    assert!(server.serve(&ward_request("subject-0", 1)).is_ok());
    // A budget wider than the slowdown also succeeds.
    assert!(server
        .serve(&ward_request("subject-0", 1).deadline_ticks(100))
        .is_ok());
    let m = server.metrics();
    assert_eq!(m.deadline_exceeded, 1);
    assert_eq!(m.faults_injected, 3);
    assert_eq!(server.logical_now(), 30);
    assert_no_sync_findings();
}

/// Admission control sheds exactly the positional tail past
/// `depth × workers` with `WS108`, before any evaluation starts.
#[test]
fn admission_control_sheds_the_exact_tail() {
    let server = StackServer::new(build_stack());
    server.set_queue_limit(4);
    assert_eq!(server.queue_limit(), 4);
    let requests: Vec<QueryRequest> = (0..64)
        .map(|i| ward_request(&format!("subject-{}", i % CHAOS_SUBJECTS), i % CHAOS_PATIENTS))
        .collect();
    let response = server.serve_batch(&BatchRequest::new(requests.clone()).workers(2));
    assert_eq!(response.stats.admitted, 8);
    assert_eq!(response.stats.shed, 56);
    for (i, result) in response.results.iter().enumerate() {
        if i < 8 {
            assert!(result.is_ok(), "admitted request {i} failed: {result:?}");
        } else {
            let err = result.as_ref().unwrap_err();
            assert_eq!(err.code(), "WS108", "request {i} was not shed");
            assert!(err.is_transient(), "shed requests must be retryable");
        }
    }
    let m = server.metrics();
    assert_eq!(m.shed, 56);
    assert_eq!(m.errors, 56);
    assert_eq!(m.allowed, 8);

    // Lifting the limit re-admits the full batch; the shed counter is
    // cumulative and must not move.
    server.set_queue_limit(0);
    let readmitted = server.serve_batch(&BatchRequest::new(requests).workers(2));
    assert!(readmitted.results.iter().all(Result::is_ok));
    assert_eq!(server.metrics().shed, 56);
    assert_no_sync_findings();
}

/// Bounded retries with decorrelated backoff ride out a transient outage:
/// the first attempts fail, the fault clears mid-sequence, and the final
/// attempt succeeds — with a bit-reproducible backoff trace.
#[test]
fn retries_with_backoff_succeed_once_the_fault_clears() {
    let run = || {
        let server = StackServer::new(build_stack());
        server.install_faults(FaultPlan::seeded(13).rule(
            FaultRule::new(FaultKind::ChannelDrop).on(FaultSchedule::Until(2)),
        ));
        let policy = RetryPolicy::new(4).backoff_range(2, 32).jitter_seed(7);
        let response = server
            .serve_with_retry(&ward_request("subject-0", 2), &policy)
            .expect("the third attempt runs after the outage clears");
        assert!(response.xml.contains("p2"));
        let m = server.metrics();
        assert_eq!(m.retries, 2, "two backoffs before the succeeding attempt");
        assert_eq!(m.errors, 2);
        assert_eq!(m.allowed, 1);
        assert_eq!(m.faults_injected, 2);
        server.logical_now()
    };
    let first_clock = run();
    assert!(first_clock > 0, "backoffs must advance the logical clock");
    assert_eq!(run(), first_clock, "the backoff trace must replay exactly");
    assert_no_sync_findings();
}

/// A zero-budget deadline stops the retry loop with `WS107` instead of
/// burning attempts: the backoff pushes the clock past the deadline.
#[test]
fn retry_loop_respects_the_deadline_budget() {
    let server = StackServer::new(build_stack());
    server.install_faults(FaultPlan::seeded(14).rule(
        FaultRule::new(FaultKind::ChannelDrop).on(FaultSchedule::Always),
    ));
    let policy = RetryPolicy::new(10).backoff_range(4, 8).jitter_seed(1);
    let err = server
        .serve_with_retry(&ward_request("subject-0", 3).deadline_ticks(2), &policy)
        .unwrap_err();
    assert_eq!(err.code(), "WS107");
    let m = server.metrics();
    assert_eq!(m.deadline_exceeded, 1);
    assert!(
        m.retries < 10,
        "the deadline must cut the sequence short, not exhaust attempts (retries={})",
        m.retries
    );
    assert_no_sync_findings();
}

/// The WS106 self-heal regression under injection: an injected worker
/// panic poisons the session, the next request degrades and evicts, the
/// one after re-establishes — and a cleared plan restores clean service.
#[test]
fn injected_worker_panic_degrades_to_ws106_and_self_heals() {
    let server = StackServer::new(build_stack());
    server.install_faults(FaultPlan::seeded(15).rule(
        FaultRule::new(FaultKind::WorkerPanic)
            .for_subject("subject-0")
            .on(FaultSchedule::At(0)),
    ));
    // The panic unwinds into the batch boundary and poisons the session.
    assert_eq!(
        server.serve(&ward_request("subject-0", 4)).unwrap_err().code(),
        "WS106"
    );
    // The poisoned session degrades once more and is evicted.
    assert_eq!(
        server.serve(&ward_request("subject-0", 4)).unwrap_err().code(),
        "WS106"
    );
    // Re-established cleanly; the At(0) schedule never fires again.
    let healed = server.serve(&ward_request("subject-0", 4)).unwrap();
    assert!(healed.xml.contains("p4"));
    let m = server.metrics();
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.faults_injected, 1);
    assert!(m.sessions_established >= 2, "eviction must force a re-handshake");

    server.clear_faults();
    let policy = RetryPolicy::new(3);
    let clean = server
        .serve_with_retry(&ward_request("subject-0", 4), &policy)
        .unwrap();
    assert!(clean.xml.contains("p4"));
    assert_no_sync_findings();
}

/// Channel tampering runs the channel's real MAC rejection and the session
/// survives (sequence numbers rewind, modelling retransmission).
#[test]
fn injected_tamper_is_rejected_and_the_session_stays_usable() {
    let server = StackServer::new(build_stack());
    server.install_faults(FaultPlan::seeded(16).rule(
        FaultRule::new(FaultKind::ChannelTamper)
            .for_subject("subject-1")
            .on(FaultSchedule::At(1)),
    ));
    assert!(server.serve(&ward_request("subject-1", 5)).is_ok());
    let err = server.serve(&ward_request("subject-1", 5)).unwrap_err();
    assert_eq!(err.code(), "WS103");
    assert!(err.is_transient());
    // The session is not poisoned by a tampered record: the next request
    // reuses it and succeeds.
    let after = server.serve(&ward_request("subject-1", 5)).unwrap();
    assert!(after.xml.contains("p5"));
    let m = server.metrics();
    assert_eq!(m.faults_injected, 1);
    assert_eq!(m.sessions_established, 1, "tampering must not cost the session");
    assert_no_sync_findings();
}
