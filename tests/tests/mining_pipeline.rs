//! Cross-crate integration for the privacy-preserving mining stack:
//! distributed candidate generation → secure global supports → rules, and
//! the randomization→reconstruction→classification pipeline end to end.

use websec_core::mining::multiparty::union;
use websec_core::prelude::*;

/// The full FDM-style distributed association pipeline: sites agree on
/// candidates through the pseudonymized union, then compute global
/// supports via secure sums, and the resulting frequent set matches the
/// centralized computation.
#[test]
fn distributed_association_matches_centralized() {
    let sites = vec![
        zipf_baskets(10, 2_000, 25, 5, 1.25),
        zipf_baskets(11, 1_500, 25, 5, 1.25),
        zipf_baskets(12, 2_500, 25, 5, 1.25),
    ];
    let miners = DistributedMiners::new(sites);
    let pooled = miners.pooled();
    let min_support = 0.08;

    // 1. Candidates via pseudonymized union.
    let key = [17u8; 32];
    let candidates = miners.global_candidates(&key, min_support);

    // 2. Global support per candidate via secure sum; keep the frequent.
    let mut distributed_frequent: Vec<u64> = candidates
        .iter()
        .copied()
        .filter(|&i| miners.global_support(23 + i, &[i as usize]) >= min_support)
        .collect();
    distributed_frequent.sort_unstable();

    // 3. Centralized baseline.
    let mut centralized: Vec<u64> = (0..25u64)
        .filter(|&i| pooled.support(&[i as usize]) >= min_support)
        .collect();
    centralized.sort_unstable();

    assert_eq!(distributed_frequent, centralized);
}

/// The union's privacy property in the integration setting: a coordinator
/// holding only blinded sets cannot identify any item without the shared
/// key.
#[test]
fn coordinator_learns_only_cardinalities() {
    let key = [5u8; 32];
    let site_a = union::blind(&key, &[3, 7, 9]);
    let site_b = union::blind(&key, &[7, 11]);
    let unioned = union::coordinate(&[site_a.clone(), site_b.clone()]);
    // Cardinalities are visible...
    assert_eq!(site_a.len(), 3);
    assert_eq!(site_b.len(), 2);
    assert_eq!(unioned.len(), 4);
    // ...items are not: a key-less unblind over the whole universe yields
    // nothing.
    assert!(union::unblind(&[0u8; 32], &unioned, &(0..1000).collect::<Vec<_>>()).is_empty());
}

/// Randomize → reconstruct → train: the privacy pipeline preserves
/// downstream utility (classification) while individual records stay
/// distorted.
#[test]
fn privacy_pipeline_preserves_utility() {
    use websec_core::mining::{classification_experiment, synthetic_task};
    let (train, test) = synthetic_task(99, 2_500);
    let noise = NoiseModel::Uniform { alpha: 35.0 };
    let acc = classification_experiment(&train, &test, &noise, 3, 10, (0.0, 100.0));
    assert!(acc.original > 0.9);
    assert!(
        acc.reconstructed > acc.original - 0.1,
        "reconstructed {:.3} too far below original {:.3}",
        acc.reconstructed,
        acc.original
    );
    // And the individual values really were distorted.
    let column: Vec<f64> = train.iter().map(|r| r.values[0]).collect();
    let noisy = noise.randomize(3, &column);
    let moved = column
        .iter()
        .zip(&noisy)
        .filter(|(a, b)| (**a - **b).abs() > 1.0)
        .count();
    assert!(moved as f64 / column.len() as f64 > 0.9);
}

/// Inference controller + randomized release compose: aggregates about a
/// table can be mined from randomized data even while the row-level
/// interface refuses the private combination.
#[test]
fn row_interface_refuses_while_aggregate_flows() {
    // Row-level: gated.
    let mut table = Table::new("patients", &["id", "name", "age"]);
    let ages = gaussian_mixture(7, 3_000, &[(1.0, 50.0, 10.0)]);
    for (i, age) in ages.iter().enumerate() {
        table.insert(vec![
            (i as i64).into(),
            format!("P{i}").as_str().into(),
            (*age as i64).into(),
        ]);
    }
    let mut controller = InferenceController::new(
        table,
        "id",
        vec![PrivacyConstraint::new(&["name", "age"], PrivacyLevel::Private)],
    );
    let d = controller.execute("miner", &Query::select(&["name", "age"]));
    assert!(matches!(d, QueryDecision::Sanitized { .. }), "{d:?}");

    // Aggregate-level: the same ages, randomized per AS00, still yield the
    // population distribution.
    let noise = NoiseModel::Uniform { alpha: 20.0 };
    let randomized = noise.randomize(8, &ages);
    let truth = histogram(&ages, 10, (0.0, 100.0));
    let recon = reconstruct_distribution(&randomized, &noise, 10, (0.0, 100.0), 40);
    let err = websec_core::mining::randomize::total_variation(&truth, &recon);
    assert!(err < 0.12, "reconstruction error {err}");
}
