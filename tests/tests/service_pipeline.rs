//! Cross-crate integration: UDDI discovery → WSDL validation → secured
//! SOAP invocation, plus P3P gating of the whole interaction.

use websec_core::prelude::*;
use websec_core::privacy::{DataCategory, PolicyMatch, Purpose, Recipient, Retention, Statement};
use websec_core::services::wsdl::Operation;
use websec_core::uddi::BindingTemplate;

/// The full WSA triangle (§2.2): provider publishes to the discovery
/// agency; requestor finds the service, checks its privacy policy, then
/// invokes it over the secured pipeline.
#[test]
fn discover_check_invoke() {
    let mut rng = SecureRng::seeded(501);

    // --- provider side -----------------------------------------------------
    let description = ServiceDescription::new("QuoteService", "local://quotes")
        .with_operation(Operation::new("getQuote", &["symbol"], &["price"]));
    let mut host = ServiceHost::new(description.clone(), Keypair::generate(&mut rng, 4));
    host.handle("getQuote", |req| {
        let symbol = req.attribute(req.root(), "symbol").unwrap_or("?");
        let mut d = Document::new("price");
        d.set_attribute(d.root(), "symbol", symbol);
        d.add_text(d.root(), "101.25");
        d
    });

    // Publish the business + service to a registry.
    let mut registry = UddiRegistry::new();
    let mut business = BusinessEntity::new("biz-quotes", "Quotes Inc");
    let mut service = BusinessService::new("svc-quotes", "QuoteService");
    service.binding_templates.push(BindingTemplate {
        binding_key: "bind-1".into(),
        access_point: description.endpoint.clone(),
        description: String::new(),
        tmodel_keys: vec![],
    });
    business.services.push(service);
    registry.save_business(business);

    // The provider advertises a privacy policy.
    let advertised = PrivacyPolicy::new("Quotes Inc").with_statement(Statement {
        categories: vec![DataCategory::Behaviour],
        purpose: Purpose::CurrentTransaction,
        recipient: Recipient::Ours,
        retention: Retention::StatedPurpose,
    });

    // --- requestor side ------------------------------------------------------
    // 1. Discover (browse then drill down, via the builder inquiry API).
    let InquiryResponse::Services(found) = registry
        .inquire(&InquiryRequest::find_service().name_approx("quote"))
        .unwrap()
    else {
        panic!("expected Services");
    };
    assert_eq!(found.len(), 1);
    let InquiryResponse::BusinessDetail(entry) = registry
        .inquire(&InquiryRequest::get_business(&found[0].business_key))
        .unwrap()
    else {
        panic!("expected BusinessDetail");
    };
    let endpoint = &entry.services[0].binding_templates[0].access_point;
    assert_eq!(endpoint, "local://quotes");

    // 2. Validate the privacy policy before interacting (§4: "a service
    //    requestor may want to validate the privacy policy … before
    //    interacting with this entity").
    let prefs = UserPreferences::permissive().cap(
        DataCategory::Behaviour,
        Purpose::Admin,
        Recipient::Delivery,
        Retention::Legal,
    );
    assert_eq!(prefs.check(&advertised), PolicyMatch::Acceptable);

    // 3. Invoke over the secured pipeline.
    let mut requestor = ServiceRequestor::new("trader-7", host.public_key());
    let body = Document::parse("<getQuote symbol=\"ACME\"/>").unwrap();
    let response = requestor.call(&mut host, body, &[77u8; 32], true).unwrap();
    assert!(response.body.to_xml_string().contains("101.25"));
}

/// A privacy-hostile service is rejected before any invocation happens.
#[test]
fn privacy_policy_gate_rejects() {
    let hostile = PrivacyPolicy::new("DataBroker").with_statement(Statement {
        categories: vec![DataCategory::Behaviour],
        purpose: Purpose::Profiling,
        recipient: Recipient::ThirdParty,
        retention: Retention::Indefinite,
    });
    let prefs = UserPreferences::permissive().cap(
        DataCategory::Behaviour,
        Purpose::Admin,
        Recipient::Delivery,
        Retention::Legal,
    );
    assert!(matches!(prefs.check(&hostile), PolicyMatch::Rejected(_)));
}

/// Two-party vs third-party discovery: the same entry, verified both ways.
#[test]
fn two_party_and_third_party_agree() {
    let mut rng = SecureRng::seeded(502);
    let mut provider = ServiceProvider::new("prov", &mut rng, 3);
    let mut agency = UntrustedAgency::new();
    let mut registry = UddiRegistry::new();

    let mut be = BusinessEntity::new("biz-1", "Example Org");
    be.description = "web services".into();
    be.services.push(BusinessService::new("svc-1", "Echo"));

    registry.save_business(be.clone());
    provider.publish_to(&mut agency, &be).unwrap();

    // Two-party: direct (trusted) drill-down.
    let InquiryResponse::BusinessDetail(direct) = registry
        .inquire(&InquiryRequest::get_business("biz-1"))
        .unwrap()
    else {
        panic!("expected BusinessDetail");
    };
    let direct_xml = direct.to_document().to_xml_string();

    // Third-party: verified drill-down against the provider key.
    let path = Path::parse("/businessEntity").unwrap();
    let answer = agency.get_detail("biz-1", &path).unwrap();
    let verified = websec_core::uddi::auth::verify_entry(
        &answer,
        &provider.public_key(),
        "biz-1",
        &path,
    )
    .unwrap();
    assert_eq!(verified.view.to_xml_string(), direct_xml);
}

/// The inference controller and the service layer compose: a service
/// operation backed by a gated table sanitizes its answers.
#[test]
fn service_backed_by_inference_controller() {
    use std::sync::{Arc, Mutex};

    let mut table = Table::new("patients", &["id", "name", "diagnosis"]);
    table.insert(vec![1i64.into(), "Alice".into(), "flu".into()]);
    let controller = Arc::new(Mutex::new(InferenceController::new(
        table,
        "id",
        vec![PrivacyConstraint::new(
            &["name", "diagnosis"],
            PrivacyLevel::Private,
        )],
    )));

    let mut rng = SecureRng::seeded(503);
    let description = ServiceDescription::new("RecordsService", "local://records")
        .with_operation(Operation::new("listPatients", &[], &["rows"]));
    let mut host = ServiceHost::new(description, Keypair::generate(&mut rng, 3));
    let c = Arc::clone(&controller);
    host.handle("listPatients", move |_req| {
        let mut ctl = c.lock().expect("controller");
        let decision = ctl.execute("service-client", &Query::select(&["name", "diagnosis"]));
        let mut d = Document::new("rows");
        match decision {
            QueryDecision::Allowed { rows } | QueryDecision::Sanitized { rows, .. } => {
                for row in rows {
                    let r = d.add_element(d.root(), "row");
                    let text = row
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    d.add_text(r, &text);
                }
            }
            QueryDecision::Denied => {
                d.set_attribute(d.root(), "denied", "true");
            }
        }
        d
    });

    let mut requestor = ServiceRequestor::new("client", host.public_key());
    let body = Document::parse("<listPatients/>").unwrap();
    let response = requestor.call(&mut host, body, &[9u8; 32], true).unwrap();
    let xml = response.body.to_xml_string();
    // The private (name, diagnosis) pair must not appear together.
    assert!(
        !(xml.contains("Alice") && xml.contains("flu")),
        "private combination leaked: {xml}"
    );
}

/// Full third-party bootstrap: the requestor has never seen the provider's
/// key; a voucher chain from a configured trust root establishes it, and
/// only then is the agency's answer accepted.
#[test]
fn trust_bootstrap_then_verified_discovery() {
    use websec_core::trust::{issue_voucher, TrustStore};

    let mut rng = SecureRng::seeded(601);
    // The marketplace CA is the requestor's configured root.
    let mut ca = Keypair::generate(&mut rng, 3);
    let mut trust = TrustStore::new(2);
    trust.trust_root("marketplace-ca", ca.public_key());

    // The provider publishes a signed entry to the untrusted agency.
    let mut provider = ServiceProvider::new("acme", &mut rng, 3);
    let mut agency = UntrustedAgency::new();
    provider
        .publish_to(&mut agency, &BusinessEntity::new("biz-acme", "Acme"))
        .unwrap();

    // The CA vouches for the provider's key.
    let voucher = issue_voucher("marketplace-ca", &mut ca, "acme", provider.public_key()).unwrap();

    // Requestor: establish the key, then verify the answer under it.
    trust
        .establish("acme", &provider.public_key(), &[voucher])
        .expect("voucher chain establishes the provider key");
    let path = Path::parse("/businessEntity").unwrap();
    let answer = agency.get_detail("biz-acme", &path).unwrap();
    let entry = websec_core::uddi::auth::verify_entry(
        &answer,
        &provider.public_key(),
        "biz-acme",
        &path,
    )
    .unwrap();
    assert!(entry.view.to_xml_string().contains("Acme"));

    // A key with no chain to the root is rejected before any verification.
    let impostor = Keypair::generate(&mut rng, 2);
    assert!(trust
        .establish("acme", &impostor.public_key(), &[])
        .is_err());
}
