//! Equivalence of the compiled decision path with the interpreting engine.
//!
//! The snapshot-compiled [`CompiledPolicies`] artifact (interned subjects,
//! per-equivalence-class decision tables, path automata) must be an exact
//! drop-in for [`PolicyEngine`]: same views byte-for-byte, same per-node
//! decisions, same equivalence-class partition, under every conflict
//! strategy. This suite drives that claim with 100 seeded random policy
//! bases, then checks the server-level wiring: [`DecisionMode`] flips
//! preserve bytes, revocation storms recompile exactly once per published
//! mutation, and the analyzer cross-check ([`StackServer::verify_compiled`])
//! accepts the live artifact.

use std::collections::HashSet;
use websec_core::prelude::*;
use websec_scenarios::{hospital_stack, HospitalSpec};

const SUBJECTS: usize = 16;
/// Master-key seed byte for the server stacks under test.
const MASTER_KEY_SEED: u8 = 5;
/// Updates in the revocation-storm test, named so a failure log states the
/// exact configuration.
const STORM_UPDATES: u64 = 12;

const STRATEGIES: [ConflictStrategy; 5] = [
    ConflictStrategy::DenialsTakePrecedence,
    ConflictStrategy::PermissionsTakePrecedence,
    ConflictStrategy::MostSpecificSubject,
    ConflictStrategy::MostSpecificObject,
    ConflictStrategy::ExplicitPriority,
];

/// Regression oracle for the concurrency-correctness layer: when the
/// suite runs with `WEBSEC_LOCKDEP=1`, every test must finish with zero
/// `WS110`/`WS111` findings (with detection off the list is empty by
/// construction, so the assertion is free).
fn assert_no_sync_findings() {
    let findings = websec_core::sync::lockdep_findings();
    assert!(
        findings.is_empty(),
        "lockdep/race detector reported findings:\n{}",
        findings
            .iter()
            .map(websec_core::sync::SyncFinding::machine_line)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// A random document over a small name alphabet, with occasional text and
/// attributes so views exercise attribute serialization too.
fn random_document(rng: &mut SecureRng) -> Document {
    let mut doc = Document::new("root");
    let mut parents = vec![doc.root()];
    let nodes = 1 + rng.gen_range(19) as usize;
    for i in 0..nodes {
        let name = rng.gen_range(4);
        let parent = parents[rng.gen_range(parents.len() as u64) as usize];
        let e = doc.add_element(parent, &format!("n{name}"));
        if rng.gen_range(2) == 0 {
            doc.add_text(e, "content");
        }
        if rng.gen_range(3) == 0 {
            doc.set_attribute(e, "id", &format!("k{i}"));
        }
        parents.push(e);
    }
    doc
}

/// One random authorization: grant/deny, optional portion path (`None` =
/// whole document), subject selector, propagation, priority, privilege.
struct RuleSpec {
    grant: bool,
    path: Option<String>,
    subj: u8,
    prop: u8,
    priority: i32,
    browse: bool,
}

fn random_policies(rng: &mut SecureRng) -> Vec<RuleSpec> {
    let n = rng.gen_range(7) as usize;
    (0..n)
        .map(|_| {
            let name = rng.gen_range(4);
            let path = match rng.gen_range(3) {
                0 => None,
                1 => Some(format!("//n{name}")),
                _ => Some(format!("/root/n{name}")),
            };
            RuleSpec {
                grant: rng.gen_range(2) == 0,
                path,
                subj: rng.gen_range(5) as u8,
                prop: rng.gen_range(3) as u8,
                priority: rng.gen_range(7) as i32 - 3,
                browse: rng.gen_range(4) == 0,
            }
        })
        .collect()
}

fn build_store(rules: &[RuleSpec]) -> PolicyStore {
    let mut store = PolicyStore::new();
    for rule in rules {
        let subject = match rule.subj {
            0 => SubjectSpec::Anyone,
            1 => SubjectSpec::Identity("alice".into()),
            2 => SubjectSpec::InRole(Role::new("staff")),
            3 => SubjectSpec::WithCredentials(CredentialExpr::OfType("physician".into())),
            _ => SubjectSpec::Identity("bob".into()),
        };
        let object = match &rule.path {
            None => ObjectSpec::Document("d.xml".into()),
            Some(p) => ObjectSpec::Portion {
                document: "d.xml".into(),
                path: Path::parse(p).unwrap(),
            },
        };
        let propagation = match rule.prop {
            0 => Propagation::None,
            1 => Propagation::FirstLevel,
            _ => Propagation::Cascade,
        };
        let privilege = if rule.browse { Privilege::Browse } else { Privilege::Read };
        let builder = Authorization::for_subject(subject)
            .on(object)
            .privilege(privilege)
            .propagation(propagation)
            .priority(rule.priority);
        store.add(if rule.grant { builder.grant() } else { builder.deny() });
    }
    store
}

/// Profiles chosen so every subject selector in [`build_store`] matches at
/// least one of them and none matches all of them.
fn profiles() -> Vec<SubjectProfile> {
    vec![
        SubjectProfile::new("alice").with_role(Role::new("staff")),
        SubjectProfile::new("bob").with_credential(Credential::new("physician", "bob")),
        SubjectProfile::new("carol"),
    ]
}

fn compile_one(
    store: &PolicyStore,
    strategy: ConflictStrategy,
    doc: &Document,
) -> std::sync::Arc<CompiledPolicies> {
    let mut docs = DocumentStore::new();
    docs.insert("d.xml", doc.clone());
    PolicySnapshot::new(store, strategy, &docs).compile()
}

/// The tentpole's correctness bar: across 100 seeded random policy bases
/// (cycling all five conflict strategies), the compiled tables return the
/// same view byte-for-byte and the same per-node decision as the
/// interpreting engine, for every profile and privilege.
#[test]
fn compiled_matches_interpreter_across_100_seeds() {
    for seed in 0..100u64 {
        let mut rng = SecureRng::seeded(0xc0de_0000 + seed);
        let doc = random_document(&mut rng);
        let rules = random_policies(&mut rng);
        let store = build_store(&rules);
        let strategy = STRATEGIES[(seed % 5) as usize];
        let compiled = compile_one(&store, strategy, &doc);
        let engine = PolicyEngine::new(strategy);
        for profile in profiles() {
            let interpreted = engine.compute_view(&store, &profile, "d.xml", &doc);
            let fast = compiled
                .compute_view(&profile, "d.xml", &doc)
                .expect("document was part of the compiled snapshot");
            assert_eq!(
                interpreted.to_xml_string(),
                fast.to_xml_string(),
                "seed {seed} ({strategy:?}): view diverged for {:?}",
                profile.identity
            );
            for node in doc.all_nodes() {
                for privilege in [Privilege::Browse, Privilege::Read, Privilege::Write] {
                    assert_eq!(
                        compiled.check(&profile, "d.xml", node, privilege),
                        Some(engine.check(&store, &profile, "d.xml", &doc, node, privilege)),
                        "seed {seed} ({strategy:?}): {privilege:?} decision diverged at {node:?}"
                    );
                }
            }
        }
    }
    assert_no_sync_findings();
}

/// The equivalence-class partition the analyzer reasons about survives
/// compilation exactly, for both Browse and Read relevance.
#[test]
fn equivalence_classes_survive_compilation() {
    for seed in 0..100u64 {
        let mut rng = SecureRng::seeded(0xe9c1_0000 + seed);
        let doc = random_document(&mut rng);
        let rules = random_policies(&mut rng);
        let store = build_store(&rules);
        let strategy = STRATEGIES[(seed % 5) as usize];
        let compiled = compile_one(&store, strategy, &doc);
        for privilege in [Privilege::Browse, Privilege::Read] {
            let interpreted =
                PolicyEngine::policy_equivalence_classes(&store, "d.xml", &doc, privilege);
            assert_eq!(
                compiled.equivalence_classes("d.xml", privilege),
                Some(interpreted),
                "seed {seed} ({strategy:?}): {privilege:?} partition diverged"
            );
        }
    }
    assert_no_sync_findings();
}

/// A hand-built conflicting rule set that *does* discriminate between
/// strategies: each strategy's compiled view matches its interpreter, and
/// at least two strategies disagree with each other (so the agreement is
/// not vacuous).
#[test]
fn all_strategies_agree_with_their_interpreter_on_conflicts() {
    let doc = Document::parse(
        "<root><n0 id=\"a\"><n1>ward</n1></n0><n2><n1>lab</n1></n2></root>",
    )
    .unwrap();
    let mut store = PolicyStore::new();
    store.add(
        Authorization::for_subject(SubjectSpec::Anyone)
            .on(ObjectSpec::Document("d.xml".into()))
            .privilege(Privilege::Read)
            .propagation(Propagation::Cascade)
            .priority(1)
            .grant(),
    );
    store.add(
        Authorization::for_subject(SubjectSpec::Identity("alice".into()))
            .on(ObjectSpec::Portion {
                document: "d.xml".into(),
                path: Path::parse("//n1").unwrap(),
            })
            .privilege(Privilege::Read)
            .priority(5)
            .deny(),
    );
    store.add(
        Authorization::for_subject(SubjectSpec::InRole(Role::new("staff")))
            .on(ObjectSpec::Portion {
                document: "d.xml".into(),
                path: Path::parse("/root/n0").unwrap(),
            })
            .privilege(Privilege::Read)
            .propagation(Propagation::FirstLevel)
            .priority(3)
            .grant(),
    );

    let alice = SubjectProfile::new("alice").with_role(Role::new("staff"));
    let mut alice_views = HashSet::new();
    for strategy in STRATEGIES {
        let compiled = compile_one(&store, strategy, &doc);
        let engine = PolicyEngine::new(strategy);
        for profile in profiles() {
            let interpreted = engine.compute_view(&store, &profile, "d.xml", &doc);
            let fast = compiled.compute_view(&profile, "d.xml", &doc).unwrap();
            assert_eq!(
                interpreted.to_xml_string(),
                fast.to_xml_string(),
                "{strategy:?}: view diverged for {:?}",
                profile.identity
            );
        }
        alice_views.insert(
            engine.compute_view(&store, &alice, "d.xml", &doc).to_xml_string(),
        );
    }
    assert!(
        alice_views.len() > 1,
        "the conflict set must actually discriminate between strategies"
    );
    assert_no_sync_findings();
}

/// A document absent from the compiled snapshot answers `None` (the server
/// falls back to the interpreter) rather than a wrong decision.
#[test]
fn unknown_document_is_none_not_wrong() {
    let doc = Document::parse("<root><n0>x</n0></root>").unwrap();
    let store = PolicyStore::new();
    let docs = DocumentStore::new();
    let compiled = PolicySnapshot::new(&store, ConflictStrategy::default(), &docs).compile();
    let profile = SubjectProfile::new("x");
    assert!(compiled.compute_view(&profile, "d.xml", &doc).is_none());
    assert!(compiled
        .check(&profile, "d.xml", doc.root(), Privilege::Read)
        .is_none());
    assert!(compiled
        .attr_allowed(&profile, "d.xml", doc.root(), "id", Privilege::Read)
        .is_none());
    assert_no_sync_findings();
}

// ---------------------------------------------------------------------------
// Server-level wiring.
// ---------------------------------------------------------------------------

/// The server stacks under test come from the shared scenario corpus:
/// [`HospitalSpec::small`] is exactly the 40-patient, 8-grant,
/// `[MASTER_KEY_SEED; 32]`-keyed stack this file used to build by hand.
fn build_stack() -> SecureWebStack {
    let spec = HospitalSpec::small();
    assert_eq!(spec.master_seed, MASTER_KEY_SEED);
    assert_eq!(spec.granted, SUBJECTS / 2);
    hospital_stack(&spec)
}

/// Mixed allow/deny/error traffic (same shape as the serving suite).
fn build_requests(n: usize) -> Vec<QueryRequest> {
    (0..n)
        .map(|i| {
            let subject = SubjectProfile::new(&format!("subject-{}", i % SUBJECTS));
            if i % 9 == 4 {
                QueryRequest::for_doc("secret.xml")
                    .path(Path::parse("//plan").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else if i % 11 == 7 {
                QueryRequest::for_doc("missing.xml")
                    .path(Path::parse("//x").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else {
                QueryRequest::for_doc("records.xml")
                    .path(Path::parse(&format!("//patient[@id='p{}']", i % 40)).unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            }
        })
        .collect()
}

/// `DecisionMode::Compiled` and `DecisionMode::Interpreted` serve the same
/// traffic byte-for-byte; the `compiled` provenance flag is true exactly on
/// table-answered misses and the metrics counters move accordingly.
#[test]
fn decision_modes_serve_identical_bytes() {
    let requests = build_requests(512);
    let compiled_server = StackServer::new(build_stack());
    assert_eq!(compiled_server.decision_mode(), DecisionMode::Compiled);
    let interpreted_server = StackServer::with_config(
        build_stack(),
        ServerConfig::new().decision_mode(DecisionMode::Interpreted),
    );

    let mut compiled_misses = 0u64;
    for (i, request) in requests.iter().enumerate() {
        let fast = compiled_server.serve(request);
        let slow = interpreted_server.serve(request);
        match (fast, slow) {
            (Ok(f), Ok(s)) => {
                assert_eq!(f.xml, s.xml, "request {i}: payload diverged");
                assert_eq!(f.decision, s.decision, "request {i}: decision diverged");
                assert!(!s.compiled, "request {i}: interpreted mode reported compiled");
                match f.cache {
                    CacheStatus::Miss => {
                        assert!(f.compiled, "request {i}: table-era miss not compiled");
                        compiled_misses += 1;
                    }
                    _ => assert!(
                        !f.compiled,
                        "request {i}: compiled provenance re-reported on a non-miss"
                    ),
                }
            }
            (Err(fe), Err(se)) => {
                assert_eq!(fe.code(), se.code(), "request {i}: error code diverged");
            }
            _ => panic!("request {i}: modes disagree on success"),
        }
    }
    assert!(compiled_misses > 0, "traffic never missed the view cache");

    let fast_metrics = compiled_server.metrics();
    assert_eq!(fast_metrics.compiled_hits, compiled_misses);
    assert!(fast_metrics.compile_ns > 0, "table lookups were never timed");
    let slow_metrics = interpreted_server.metrics();
    assert_eq!(slow_metrics.compiled_hits, 0);
    assert_eq!(slow_metrics.compile_ns, 0);
    assert_no_sync_findings();
}

/// Flipping the mode at runtime (forcing fresh misses in between) does not
/// change a single byte of the served view.
#[test]
fn runtime_mode_flip_preserves_bytes() {
    let server = StackServer::new(build_stack());
    let request = QueryRequest::for_doc("records.xml")
        .path(Path::parse("//patient[@id='p3']").unwrap())
        .subject(&SubjectProfile::new("subject-0"))
        .clearance(Clearance(Level::Unclassified));

    let fast = server.serve(&request).unwrap();
    assert_eq!(fast.cache, CacheStatus::Miss);
    assert!(fast.compiled);

    server.set_decision_mode(DecisionMode::Interpreted);
    server.invalidate_views();
    let slow = server.serve(&request).unwrap();
    assert_eq!(slow.cache, CacheStatus::Miss);
    assert!(!slow.compiled);

    assert_eq!(fast.xml, slow.xml);
    assert_eq!(fast.decision, slow.decision);
    assert_no_sync_findings();
}

/// A revocation storm recompiles exactly once per published mutation:
/// construction counts as compile #1, every `update` adds one, and cache
/// invalidation (which republishes the unchanged stack) adds zero.
#[test]
fn revocation_storm_recompiles_exactly_once_per_update() {
    let server = StackServer::new(build_stack());
    assert_eq!(server.snapshot_compiles(), 1, "construction compiles once");
    let base_epoch = server.compiled_policies().epoch();

    let request = QueryRequest::for_doc("records.xml")
        .path(Path::parse("//patient[@id='p1']").unwrap())
        .subject(&SubjectProfile::new("subject-1"))
        .clearance(Clearance(Level::Unclassified));
    let granted = server.serve(&request).unwrap();
    assert!(granted.xml.contains("N1"), "subject-1 starts with a grant");

    for i in 0..STORM_UPDATES {
        server.update(|stack| {
            stack.policies.add(
                Authorization::for_subject(SubjectSpec::Identity(format!("subject-{i}")))
                    .on(ObjectSpec::Document("records.xml".into()))
                    .privilege(Privilege::Read)
                    .deny(),
            );
        });
    }
    assert_eq!(
        server.snapshot_compiles(),
        1 + STORM_UPDATES,
        "one compile per update"
    );
    assert!(
        server.compiled_policies().epoch() > base_epoch,
        "the published artifact tracks the mutated policy epoch"
    );

    // The revocations are visible through the compiled path immediately.
    let revoked = server.serve(&request).unwrap();
    assert_eq!(revoked.cache, CacheStatus::Miss, "epoch bump invalidated the cache");
    assert!(revoked.compiled, "post-storm miss answered from the new tables");
    assert!(!revoked.xml.contains("N1"), "the denial must win after the storm");

    for _ in 0..3 {
        server.invalidate_views();
    }
    assert_eq!(
        server.snapshot_compiles(),
        1 + STORM_UPDATES,
        "invalidation republishes without recompiling"
    );

    let metrics = server.metrics();
    assert_eq!(metrics.snapshot_compiles, 1 + STORM_UPDATES);
    assert!(metrics.snapshot_compile_ns > 0, "compiles were never timed");
    assert_no_sync_findings();
}

/// The analyzer-level cross-check accepts the live artifact, before and
/// after a republication.
#[test]
fn analyzer_verifies_compiled_artifact() {
    let server = StackServer::new(build_stack());
    server
        .verify_compiled()
        .expect("freshly constructed artifact matches the live stack");

    server.update(|stack| {
        stack.policies.add(
            Authorization::for_subject(SubjectSpec::InRole(Role::new("auditor")))
                .on(ObjectSpec::Document("records.xml".into()))
                .privilege(Privilege::Browse)
                .grant(),
        );
    });
    server
        .verify_compiled()
        .expect("republished artifact matches the mutated stack");
    assert_no_sync_findings();
}
