//! Property-based tests on the access-control engine's core invariants.

use proptest::prelude::*;
use std::collections::HashSet;
use websec_core::prelude::*;

/// Strategy: a random document over a small name alphabet.
fn arb_document() -> impl Strategy<Value = Document> {
    proptest::collection::vec((0u8..4, 0u8..3, any::<bool>()), 1..20).prop_map(|nodes| {
        let mut doc = Document::new("root");
        let mut parents = vec![doc.root()];
        for (name, parent_pick, with_text) in nodes {
            let parent = parents[parent_pick as usize % parents.len()];
            let e = doc.add_element(parent, &format!("n{name}"));
            if with_text {
                doc.add_text(e, "content");
            }
            parents.push(e);
        }
        doc
    })
}

/// Strategy: a random small policy base over that alphabet.
fn arb_policies() -> impl Strategy<Value = Vec<(bool, String, u8)>> {
    // (is_grant, path, subject selector 0..3)
    proptest::collection::vec(
        (any::<bool>(), 0u8..4, any::<bool>(), 0u8..3),
        0..6,
    )
    .prop_map(|rules| {
        rules
            .into_iter()
            .map(|(grant, name, descendant, subj)| {
                let path = if descendant {
                    format!("//n{name}")
                } else {
                    format!("/root/n{name}")
                };
                (grant, path, subj)
            })
            .collect()
    })
}

fn build_store(rules: &[(bool, String, u8)]) -> PolicyStore {
    let mut store = PolicyStore::new();
    for (grant, path, subj) in rules {
        let subject = match subj {
            0 => SubjectSpec::Anyone,
            1 => SubjectSpec::Identity("alice".into()),
            _ => SubjectSpec::InRole(Role::new("staff")),
        };
        let object = ObjectSpec::Portion {
            document: "d.xml".into(),
            path: Path::parse(path).unwrap(),
        };
        let auth = if *grant {
            Authorization::grant(0, subject, object, Privilege::Read)
        } else {
            Authorization::deny(0, subject, object, Privilege::Read)
        };
        store.add(auth);
    }
    store
}

fn text_set(doc: &Document) -> HashSet<String> {
    doc.all_nodes()
        .iter()
        .filter_map(|&n| doc.name(n).map(|s| s.to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A view never contains an element name absent from the original.
    #[test]
    fn view_is_subset_of_document(doc in arb_document(), rules in arb_policies()) {
        let store = build_store(&rules);
        let engine = PolicyEngine::default();
        let profile = SubjectProfile::new("alice").with_role(Role::new("staff"));
        let view = engine.compute_view(&store, &profile, "d.xml", &doc);
        prop_assert!(view.node_count() <= doc.node_count());
        prop_assert!(text_set(&view).is_subset(&text_set(&doc)));
    }

    /// With no policies, the closed-policy default yields an empty view.
    #[test]
    fn empty_policy_base_empty_view(doc in arb_document()) {
        let store = PolicyStore::new();
        let engine = PolicyEngine::default();
        let view = engine.compute_view(&store, &SubjectProfile::new("x"), "d.xml", &doc);
        prop_assert_eq!(view.node_count(), 0);
    }

    /// Denials-take-precedence views are contained in
    /// permissions-take-precedence views.
    #[test]
    fn dtp_view_subset_of_ptp_view(doc in arb_document(), rules in arb_policies()) {
        let store = build_store(&rules);
        let profile = SubjectProfile::new("alice").with_role(Role::new("staff"));
        let dtp = PolicyEngine::new(ConflictStrategy::DenialsTakePrecedence)
            .evaluate_document(&store, &profile, "d.xml", &doc, Privilege::Read);
        let ptp = PolicyEngine::new(ConflictStrategy::PermissionsTakePrecedence)
            .evaluate_document(&store, &profile, "d.xml", &doc, Privilege::Read);
        for node in doc.all_nodes() {
            if dtp.is_allowed(node) {
                prop_assert!(ptp.is_allowed(node), "node {node:?} allowed by DTP but not PTP");
            }
        }
    }

    /// Adding a grant never shrinks a DTP view; adding a denial never grows it.
    #[test]
    fn monotonicity(doc in arb_document(), rules in arb_policies()) {
        let engine = PolicyEngine::default();
        let profile = SubjectProfile::new("alice").with_role(Role::new("staff"));

        let store = build_store(&rules);
        let base = engine
            .evaluate_document(&store, &profile, "d.xml", &doc, Privilege::Read)
            .allowed_count();

        // Add a universal grant.
        let mut grown = build_store(&rules);
        grown.add(Authorization::grant(
            0,
            SubjectSpec::Anyone,
            ObjectSpec::Document("d.xml".into()),
            Privilege::Read,
        ));
        let more = engine
            .evaluate_document(&grown, &profile, "d.xml", &doc, Privilege::Read)
            .allowed_count();
        prop_assert!(more >= base);

        // Add a universal denial.
        let mut shrunk = build_store(&rules);
        shrunk.add(Authorization::deny(
            0,
            SubjectSpec::Anyone,
            ObjectSpec::Document("d.xml".into()),
            Privilege::Read,
        ));
        let less = engine
            .evaluate_document(&shrunk, &profile, "d.xml", &doc, Privilege::Read)
            .allowed_count();
        prop_assert_eq!(less, 0); // universal cascade denial wipes everything under DTP
    }

    /// The flexible enforcer's empirical rate tracks its level.
    #[test]
    fn flexible_rate_tracks_level(level in 0u8..=100) {
        let mut gate = FlexibleEnforcer::new(level, [9u8; 32]);
        for i in 0..2000u32 {
            gate.gate(&i.to_le_bytes());
        }
        let (enforced, _) = gate.stats();
        let rate = enforced as f64 / 2000.0;
        prop_assert!((rate - level as f64 / 100.0).abs() < 0.06,
            "level {level}: rate {rate}");
    }
}
