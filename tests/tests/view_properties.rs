//! Property-style tests on the access-control engine's core invariants,
//! driven by seeded [`SecureRng`] iteration (the workspace builds fully
//! offline, so no external property-testing framework is used).

use std::collections::HashSet;
use websec_core::prelude::*;

/// A random document over a small name alphabet.
fn random_document(rng: &mut SecureRng) -> Document {
    let mut doc = Document::new("root");
    let mut parents = vec![doc.root()];
    let nodes = 1 + rng.gen_range(19) as usize;
    for _ in 0..nodes {
        let name = rng.gen_range(4);
        let parent = parents[rng.gen_range(parents.len() as u64) as usize];
        let e = doc.add_element(parent, &format!("n{name}"));
        if rng.gen_range(2) == 0 {
            doc.add_text(e, "content");
        }
        parents.push(e);
    }
    doc
}

/// A random small policy base over that alphabet: (is_grant, path, subject
/// selector 0..3).
fn random_policies(rng: &mut SecureRng) -> Vec<(bool, String, u8)> {
    let n = rng.gen_range(6) as usize;
    (0..n)
        .map(|_| {
            let grant = rng.gen_range(2) == 0;
            let name = rng.gen_range(4);
            let path = if rng.gen_range(2) == 0 {
                format!("//n{name}")
            } else {
                format!("/root/n{name}")
            };
            (grant, path, rng.gen_range(3) as u8)
        })
        .collect()
}

fn build_store(rules: &[(bool, String, u8)]) -> PolicyStore {
    let mut store = PolicyStore::new();
    for (grant, path, subj) in rules {
        let subject = match subj {
            0 => SubjectSpec::Anyone,
            1 => SubjectSpec::Identity("alice".into()),
            _ => SubjectSpec::InRole(Role::new("staff")),
        };
        let object = ObjectSpec::Portion {
            document: "d.xml".into(),
            path: Path::parse(path).unwrap(),
        };
        let auth = if *grant {
            Authorization::for_subject(subject).on(object).privilege(Privilege::Read).grant()
        } else {
            Authorization::for_subject(subject).on(object).privilege(Privilege::Read).deny()
        };
        store.add(auth);
    }
    store
}

fn text_set(doc: &Document) -> HashSet<String> {
    doc.all_nodes()
        .iter()
        .filter_map(|&n| doc.name(n).map(|s| s.to_string()))
        .collect()
}

/// A view never contains an element name absent from the original.
#[test]
fn view_is_subset_of_document() {
    let mut rng = SecureRng::seeded(0x71e1);
    for _ in 0..64 {
        let doc = random_document(&mut rng);
        let rules = random_policies(&mut rng);
        let store = build_store(&rules);
        let engine = PolicyEngine::default();
        let profile = SubjectProfile::new("alice").with_role(Role::new("staff"));
        let view = engine.compute_view(&store, &profile, "d.xml", &doc);
        assert!(view.node_count() <= doc.node_count());
        assert!(text_set(&view).is_subset(&text_set(&doc)));
    }
}

/// With no policies, the closed-policy default yields an empty view.
#[test]
fn empty_policy_base_empty_view() {
    let mut rng = SecureRng::seeded(0x71e2);
    for _ in 0..64 {
        let doc = random_document(&mut rng);
        let store = PolicyStore::new();
        let engine = PolicyEngine::default();
        let view = engine.compute_view(&store, &SubjectProfile::new("x"), "d.xml", &doc);
        assert_eq!(view.node_count(), 0);
    }
}

/// Denials-take-precedence views are contained in
/// permissions-take-precedence views.
#[test]
fn dtp_view_subset_of_ptp_view() {
    let mut rng = SecureRng::seeded(0x71e3);
    for _ in 0..64 {
        let doc = random_document(&mut rng);
        let rules = random_policies(&mut rng);
        let store = build_store(&rules);
        let profile = SubjectProfile::new("alice").with_role(Role::new("staff"));
        let dtp = PolicyEngine::new(ConflictStrategy::DenialsTakePrecedence)
            .evaluate_document(&store, &profile, "d.xml", &doc, Privilege::Read);
        let ptp = PolicyEngine::new(ConflictStrategy::PermissionsTakePrecedence)
            .evaluate_document(&store, &profile, "d.xml", &doc, Privilege::Read);
        for node in doc.all_nodes() {
            if dtp.is_allowed(node) {
                assert!(ptp.is_allowed(node), "node {node:?} allowed by DTP but not PTP");
            }
        }
    }
}

/// Adding a grant never shrinks a DTP view; adding a denial never grows it.
#[test]
fn monotonicity() {
    let mut rng = SecureRng::seeded(0x71e4);
    for _ in 0..64 {
        let doc = random_document(&mut rng);
        let rules = random_policies(&mut rng);
        let engine = PolicyEngine::default();
        let profile = SubjectProfile::new("alice").with_role(Role::new("staff"));

        let store = build_store(&rules);
        let base = engine
            .evaluate_document(&store, &profile, "d.xml", &doc, Privilege::Read)
            .allowed_count();

        // Add a universal grant.
        let mut grown = build_store(&rules);
        grown.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("d.xml".into())).privilege(Privilege::Read).grant());
        let more = engine
            .evaluate_document(&grown, &profile, "d.xml", &doc, Privilege::Read)
            .allowed_count();
        assert!(more >= base);

        // Add a universal denial.
        let mut shrunk = build_store(&rules);
        shrunk.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("d.xml".into())).privilege(Privilege::Read).deny());
        let less = engine
            .evaluate_document(&shrunk, &profile, "d.xml", &doc, Privilege::Read)
            .allowed_count();
        assert_eq!(less, 0); // universal cascade denial wipes everything under DTP
    }
}

/// The flexible enforcer's empirical rate tracks its level.
#[test]
fn flexible_rate_tracks_level() {
    let mut rng = SecureRng::seeded(0x71e5);
    for case in 0..16u64 {
        let level = if case == 0 {
            0
        } else if case == 1 {
            100
        } else {
            rng.gen_range(101) as u8
        };
        let mut gate = FlexibleEnforcer::new(level, [9u8; 32]);
        for i in 0..2000u32 {
            gate.gate(&i.to_le_bytes());
        }
        let (enforced, _) = gate.stats();
        let rate = enforced as f64 / 2000.0;
        assert!(
            (rate - level as f64 / 100.0).abs() < 0.06,
            "level {level}: rate {rate}"
        );
    }
}
