//! The concurrent serving layer end to end: parallel batches agree with a
//! serial run byte-for-byte, the policy-view cache is invalidated by the
//! policy epoch, sessions are reused across requests, and the unified
//! error codes are stable at the API boundary.

use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;

const SUBJECTS: usize = 16;

fn build_stack() -> SecureWebStack {
    let mut stack = SecureWebStack::new([3u8; 32]);
    let mut xml = String::from("<hospital>");
    for i in 0..40 {
        xml.push_str(&format!(
            "<patient id=\"p{i}\"><name>N{i}</name><record>r{i}</record></patient>"
        ));
    }
    xml.push_str("</hospital>");
    stack.add_document(
        "records.xml",
        Document::parse(&xml).unwrap(),
        ContextLabel::fixed(Level::Unclassified),
    );
    stack.add_document(
        "secret.xml",
        Document::parse("<ops><plan>atlantis</plan></ops>").unwrap(),
        ContextLabel::fixed(Level::Secret),
    );
    // Half the subjects are doctors with a portion grant; the rest have no
    // authorization and receive empty views.
    for d in 0..SUBJECTS / 2 {
        stack.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity(format!("subject-{d}")),
            ObjectSpec::Portion {
                document: "records.xml".into(),
                path: Path::parse("//patient").unwrap(),
            },
            Privilege::Read,
        ));
    }
    stack.policies.add(Authorization::grant(
        0,
        SubjectSpec::Anyone,
        ObjectSpec::Document("secret.xml".into()),
        Privilege::Read,
    ));
    stack
}

/// ≥1k mixed allow/deny/error requests across many subjects.
fn build_requests(n: usize) -> Vec<QueryRequest> {
    (0..n)
        .map(|i| {
            let subject = SubjectProfile::new(&format!("subject-{}", i % SUBJECTS));
            if i % 9 == 4 {
                // Clearance-denied probe of the classified document.
                QueryRequest::for_doc("secret.xml")
                    .path(Path::parse("//plan").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else if i % 11 == 7 {
                // Unknown document: a WS101 error.
                QueryRequest::for_doc("missing.xml")
                    .path(Path::parse("//x").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else {
                QueryRequest::for_doc("records.xml")
                    .path(Path::parse(&format!("//patient[@id='p{}']", i % 40)).unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            }
        })
        .collect()
}

/// The tentpole's correctness bar: a parallel batch over ≥8 threads returns,
/// position for position, exactly what a serial run returns.
#[test]
fn parallel_batch_matches_serial_run() {
    let requests = build_requests(1024);

    let serial_server = StackServer::new(build_stack());
    let serial: Vec<_> = requests.iter().map(|r| serial_server.serve(r)).collect();

    let parallel_server = StackServer::new(build_stack());
    let parallel = parallel_server.serve_batch(&requests, 8);

    assert_eq!(serial.len(), parallel.len());
    let mut allowed = 0;
    let mut denied = 0;
    let mut errored = 0;
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        match (s, p) {
            (Ok(sr), Ok(pr)) => {
                assert_eq!(sr.xml, pr.xml, "request {i}: payload diverged");
                assert_eq!(sr.decision, pr.decision, "request {i}: decision diverged");
                allowed += 1;
            }
            // Cache status and timings legitimately differ between runs;
            // errors must agree on the stable code.
            (Err(se), Err(pe)) => {
                assert_eq!(se.code(), pe.code(), "request {i}: error code diverged");
                if se.code() == "WS102" {
                    denied += 1;
                } else {
                    errored += 1;
                }
            }
            _ => panic!("request {i}: serial and parallel disagree on success"),
        }
    }
    // The workload really is mixed.
    assert!(allowed > 700, "allowed={allowed}");
    assert!(denied > 80, "denied={denied}");
    assert!(errored > 60, "errored={errored}");

    let metrics = parallel_server.metrics();
    assert_eq!(metrics.requests, 1024);
    assert_eq!(metrics.allowed, allowed);
    assert_eq!(metrics.denied, denied);
    assert_eq!(metrics.errors, errored);
}

/// A policy mutation through `update` bumps the policy epoch and evicts
/// every cached view; the next request recomputes under the new policy.
#[test]
fn policy_mutation_invalidates_cached_views() {
    let mut server = StackServer::new(build_stack());
    let request = QueryRequest::for_doc("records.xml")
        .path(Path::parse("//patient[@id='p1']").unwrap())
        .subject(&SubjectProfile::new("subject-0"))
        .clearance(Clearance(Level::Unclassified));

    let first = server.serve(&request).unwrap();
    assert_eq!(first.cache, CacheStatus::Miss);
    assert!(first.xml.contains("p1"));
    let second = server.serve(&request).unwrap();
    assert_eq!(second.cache, CacheStatus::Hit);
    assert!(server.cached_views() > 0);

    let epoch_before = server.snapshot().policies.epoch();
    server.update(|stack| {
        stack.policies.add(Authorization::deny(
            1,
            SubjectSpec::Identity("subject-0".into()),
            ObjectSpec::Portion {
                document: "records.xml".into(),
                path: Path::parse("//patient").unwrap(),
            },
            Privilege::Read,
        ));
    });
    assert!(server.snapshot().policies.epoch() > epoch_before);
    assert_eq!(server.cached_views(), 0, "stale views survived the update");

    let third = server.serve(&request).unwrap();
    assert_eq!(third.cache, CacheStatus::Miss, "served from a stale view");
    assert!(
        !third.xml.contains("p1"),
        "revoked subject still sees the portion: {}",
        third.xml
    );
}

/// One handshake per subject: a burst from few subjects establishes few
/// sessions and reuses them for every later request.
#[test]
fn sessions_are_established_once_per_subject() {
    let server = StackServer::new(build_stack());
    let requests = build_requests(300);
    for request in &requests {
        let _ = server.serve(request);
    }
    let metrics = server.metrics();
    assert_eq!(server.session_count(), SUBJECTS);
    assert_eq!(metrics.sessions_established, SUBJECTS as u64);
    assert_eq!(
        metrics.session_reuses,
        300 - SUBJECTS as u64,
        "every request after the first per subject must reuse its session"
    );
    assert!(metrics.cache_hits > 0);
    assert!(metrics.latency.count >= metrics.allowed);
}

/// The unified error type reports stable WS1xx codes at the API boundary.
#[test]
fn error_codes_are_stable_at_the_boundary() {
    let server = StackServer::new(build_stack());
    let subject = SubjectProfile::new("subject-0");

    let unknown = QueryRequest::for_doc("missing.xml")
        .path(Path::parse("//x").unwrap())
        .subject(&subject)
        .clearance(Clearance(Level::Unclassified));
    let err = server.serve(&unknown).unwrap_err();
    assert_eq!(err.code(), "WS101");
    assert!(err.to_string().starts_with("[WS101]"));

    let overreach = QueryRequest::for_doc("secret.xml")
        .path(Path::parse("//plan").unwrap())
        .subject(&subject)
        .clearance(Clearance(Level::Unclassified));
    assert_eq!(server.serve(&overreach).unwrap_err().code(), "WS102");

    let pathless = QueryRequest::for_doc("records.xml")
        .subject(&subject)
        .clearance(Clearance(Level::Unclassified));
    assert_eq!(server.serve(&pathless).unwrap_err().code(), "WS105");
}
