//! The concurrent serving layer end to end: parallel batches agree with a
//! serial run byte-for-byte, the policy-view cache is invalidated by the
//! policy epoch, sessions are reused across requests, and the unified
//! error codes are stable at the API boundary.

use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;

const SUBJECTS: usize = 16;
/// Master-key seed byte for the stack under test (`[MASTER_KEY_SEED; 32]`).
const MASTER_KEY_SEED: u8 = 3;
/// Concurrency shape of the revocation race tests, named so a failure log
/// states the exact configuration to reproduce under.
const RACE_READERS: usize = SUBJECTS / 2;
const RACE_ITERATIONS: usize = 300;
const RACE_BATCH: usize = 2048;
const RACE_WORKERS: usize = 4;

/// Regression oracle for the concurrency-correctness layer: when the
/// suite runs with `WEBSEC_LOCKDEP=1`, every test must finish with zero
/// `WS110`/`WS111` findings (with detection off the list is empty by
/// construction, so the assertion is free).
fn assert_no_sync_findings() {
    let findings = websec_core::sync::lockdep_findings();
    assert!(
        findings.is_empty(),
        "lockdep/race detector reported findings:\n{}",
        findings
            .iter()
            .map(websec_core::sync::SyncFinding::machine_line)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn build_stack() -> SecureWebStack {
    let mut stack = SecureWebStack::new([MASTER_KEY_SEED; 32]);
    let mut xml = String::from("<hospital>");
    for i in 0..40 {
        xml.push_str(&format!(
            "<patient id=\"p{i}\"><name>N{i}</name><record>r{i}</record></patient>"
        ));
    }
    xml.push_str("</hospital>");
    stack.add_document(
        "records.xml",
        Document::parse(&xml).unwrap(),
        ContextLabel::fixed(Level::Unclassified),
    );
    stack.add_document(
        "secret.xml",
        Document::parse("<ops><plan>atlantis</plan></ops>").unwrap(),
        ContextLabel::fixed(Level::Secret),
    );
    // Half the subjects are doctors with a portion grant; the rest have no
    // authorization and receive empty views.
    for d in 0..SUBJECTS / 2 {
        stack.policies.add(Authorization::for_subject(SubjectSpec::Identity(format!("subject-{d}"))).on(ObjectSpec::Portion {
                document: "records.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
    }
    stack.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("secret.xml".into())).privilege(Privilege::Read).grant());
    stack
}

/// ≥1k mixed allow/deny/error requests across many subjects.
fn build_requests(n: usize) -> Vec<QueryRequest> {
    (0..n)
        .map(|i| {
            let subject = SubjectProfile::new(&format!("subject-{}", i % SUBJECTS));
            if i % 9 == 4 {
                // Clearance-denied probe of the classified document.
                QueryRequest::for_doc("secret.xml")
                    .path(Path::parse("//plan").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else if i % 11 == 7 {
                // Unknown document: a WS101 error.
                QueryRequest::for_doc("missing.xml")
                    .path(Path::parse("//x").unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            } else {
                QueryRequest::for_doc("records.xml")
                    .path(Path::parse(&format!("//patient[@id='p{}']", i % 40)).unwrap())
                    .subject(&subject)
                    .clearance(Clearance(Level::Unclassified))
            }
        })
        .collect()
}

/// The tentpole's correctness bar: a parallel batch over ≥8 threads returns,
/// position for position, exactly what a serial run returns.
#[test]
fn parallel_batch_matches_serial_run() {
    let requests = build_requests(1024);

    let serial_server = StackServer::new(build_stack());
    let serial: Vec<_> = requests.iter().map(|r| serial_server.serve(r)).collect();

    let parallel_server = StackServer::new(build_stack());
    let response = parallel_server.serve_batch(&BatchRequest::new(requests.clone()).workers(8));
    assert_eq!(response.stats.workers, 8);
    assert_eq!(response.stats.admitted, requests.len());
    assert_eq!(response.stats.shed, 0);
    let parallel = response.results;

    assert_eq!(serial.len(), parallel.len());
    let mut allowed = 0;
    let mut denied = 0;
    let mut errored = 0;
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        match (s, p) {
            (Ok(sr), Ok(pr)) => {
                assert_eq!(sr.xml, pr.xml, "request {i}: payload diverged");
                assert_eq!(sr.decision, pr.decision, "request {i}: decision diverged");
                allowed += 1;
            }
            // Cache status and timings legitimately differ between runs;
            // errors must agree on the stable code.
            (Err(se), Err(pe)) => {
                assert_eq!(se.code(), pe.code(), "request {i}: error code diverged");
                if se.code() == "WS102" {
                    denied += 1;
                } else {
                    errored += 1;
                }
            }
            _ => panic!("request {i}: serial and parallel disagree on success"),
        }
    }
    // The workload really is mixed.
    assert!(allowed > 700, "allowed={allowed}");
    assert!(denied > 80, "denied={denied}");
    assert!(errored > 60, "errored={errored}");

    let metrics = parallel_server.metrics();
    assert_eq!(metrics.requests, 1024);
    assert_eq!(metrics.allowed, allowed);
    assert_eq!(metrics.denied, denied);
    assert_eq!(metrics.errors, errored);
    assert_no_sync_findings();
}

/// A policy mutation through `update` bumps the policy epoch and evicts
/// every cached view; the next request recomputes under the new policy.
#[test]
fn policy_mutation_invalidates_cached_views() {
    let server = StackServer::new(build_stack());
    let request = QueryRequest::for_doc("records.xml")
        .path(Path::parse("//patient[@id='p1']").unwrap())
        .subject(&SubjectProfile::new("subject-0"))
        .clearance(Clearance(Level::Unclassified));

    let first = server.serve(&request).unwrap();
    assert_eq!(first.cache, CacheStatus::Miss);
    assert!(first.xml.contains("p1"));
    let second = server.serve(&request).unwrap();
    assert_eq!(second.cache, CacheStatus::Hit);
    assert!(server.metrics().cached_views > 0);

    let epoch_before = server.snapshot().policies.epoch();
    server.update(|stack| {
        stack.policies.add(Authorization::for_subject(SubjectSpec::Identity("subject-0".into())).on(ObjectSpec::Portion {
                document: "records.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).id(1).deny());
    });
    assert!(server.snapshot().policies.epoch() > epoch_before);
    assert_eq!(
        server.metrics().cached_views,
        0,
        "stale views survived the update"
    );

    let third = server.serve(&request).unwrap();
    assert_eq!(third.cache, CacheStatus::Miss, "served from a stale view");
    assert!(
        !third.xml.contains("p1"),
        "revoked subject still sees the portion: {}",
        third.xml
    );
    assert_no_sync_findings();
}

/// One handshake per subject: a burst from few subjects establishes few
/// sessions and reuses them for every later request.
#[test]
fn sessions_are_established_once_per_subject() {
    let server = StackServer::new(build_stack());
    let requests = build_requests(300);
    for request in &requests {
        let _ = server.serve(request);
    }
    let metrics = server.metrics();
    assert_eq!(metrics.sessions_open, SUBJECTS as u64);
    assert_eq!(metrics.sessions_established, SUBJECTS as u64);
    assert_eq!(
        metrics.session_reuses,
        300 - SUBJECTS as u64,
        "every request after the first per subject must reuse its session"
    );
    assert!(metrics.cache_hits > 0);
    assert!(metrics.latency.count >= metrics.allowed);
    assert_no_sync_findings();
}

fn doctor_request(d: usize, patient: usize) -> QueryRequest {
    QueryRequest::for_doc("records.xml")
        .path(Path::parse(&format!("//patient[@id='p{patient}']")).unwrap())
        .subject(&SubjectProfile::new(&format!("subject-{d}")))
        .clearance(Clearance(Level::Unclassified))
}

/// Revokes every doctor grant in one epoch bump.
fn revoke_doctors(server: &StackServer) -> usize {
    server.update(|stack| {
        stack.policies.revoke_matching(|a| {
            matches!(&a.subject, SubjectSpec::Identity(id) if id.starts_with("subject-"))
        })
    })
}

/// The revocation race the token-checked caches exist for: policy views
/// are cached per worker (L1) and per shard (L2), a revocation lands
/// mid-traffic via `update(&self)`, and **no request that starts after
/// `update` returns may be served a stale view** — on any shard, from
/// either cache level. Readers observe a flag the writer sets only after
/// `update` returns, so "started after the bump" is well-defined.
#[test]
fn concurrent_revocation_never_serves_stale_views_past_the_epoch_bump() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let server = StackServer::new(build_stack());
    // Warm every doctor's cached view so revocation has state to invalidate
    // (the doctors hash across the server's shards).
    for d in 0..RACE_READERS {
        let warm = server.serve(&doctor_request(d, 1)).unwrap();
        assert!(warm.xml.contains("p1"), "{}", warm.xml);
    }
    assert!(server.metrics().cached_views > 0);

    let revoked = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = &server;
        let revoked = &revoked;
        let readers: Vec<_> = (0..RACE_READERS)
            .map(|d| {
                scope.spawn(move || {
                    let request = doctor_request(d, 1);
                    let mut stale_after_bump = 0u32;
                    let mut saw_revoked = false;
                    for _ in 0..RACE_ITERATIONS {
                        let bumped_before_start = revoked.load(Ordering::SeqCst);
                        let response = server.serve(&request).unwrap();
                        if response.xml.is_empty() {
                            saw_revoked = true;
                        } else if bumped_before_start {
                            stale_after_bump += 1;
                        }
                        std::thread::yield_now();
                    }
                    (stale_after_bump, saw_revoked)
                })
            })
            .collect();
        scope.spawn(move || {
            // Let readers populate their worker-local caches first.
            std::thread::yield_now();
            assert_eq!(revoke_doctors(server), RACE_READERS);
            revoked.store(true, Ordering::SeqCst);
        });
        for (d, reader) in readers.into_iter().enumerate() {
            let (stale_after_bump, saw_revoked) = reader.join().unwrap();
            assert_eq!(
                stale_after_bump, 0,
                "subject-{d} was served a stale cached view after the epoch bump \
                 (readers={RACE_READERS}, iterations={RACE_ITERATIONS}, \
                  master_key_seed={MASTER_KEY_SEED})"
            );
            assert!(
                saw_revoked,
                "subject-{d} never observed the revocation \
                 (readers={RACE_READERS}, iterations={RACE_ITERATIONS}, \
                  master_key_seed={MASTER_KEY_SEED})"
            );
        }
    });

    // The batch path agrees, across all shards and both cache levels.
    let requests: Vec<QueryRequest> = (0..RACE_READERS).map(|d| doctor_request(d, 1)).collect();
    let batch = BatchRequest::new(requests).workers(RACE_WORKERS);
    for result in server.serve_batch(&batch).results {
        let response = result.unwrap();
        assert!(response.xml.is_empty(), "stale view: {}", response.xml);
    }
    assert_no_sync_findings();
}

/// A revocation landing in the middle of `serve_batch` must partition the
/// batch into valid answers only: every response is either the full
/// pre-revocation view or the empty post-revocation view — never a torn or
/// cache-incoherent mixture — and everything served after the batch sees
/// the revoked state.
#[test]
fn revocation_mid_batch_yields_only_valid_answers() {
    let server = StackServer::new(build_stack());
    let batch = BatchRequest::new(
        (0..RACE_BATCH)
            .map(|i| doctor_request(i % RACE_READERS, i % 40))
            .collect(),
    )
    .workers(RACE_WORKERS);

    let results = std::thread::scope(|scope| {
        let server = &server;
        let writer = scope.spawn(move || {
            std::thread::yield_now();
            revoke_doctors(server)
        });
        let results = server.serve_batch(&batch).results;
        assert_eq!(writer.join().unwrap(), RACE_READERS);
        results
    });

    for (i, result) in results.into_iter().enumerate() {
        let response = result.unwrap();
        let expected = format!("p{}", i % 40);
        assert!(
            response.xml.is_empty() || response.xml.contains(&expected),
            "request {i}: torn answer (batch={RACE_BATCH}, workers={RACE_WORKERS}, \
             master_key_seed={MASTER_KEY_SEED}): {}",
            response.xml
        );
    }
    // Post-batch, the revocation is fully visible on every shard.
    for d in 0..RACE_READERS {
        assert!(server.serve(&doctor_request(d, 1)).unwrap().xml.is_empty());
    }
    assert_no_sync_findings();
}

/// The unified error type reports stable WS1xx codes at the API boundary.
#[test]
fn error_codes_are_stable_at_the_boundary() {
    let server = StackServer::new(build_stack());
    let subject = SubjectProfile::new("subject-0");

    let unknown = QueryRequest::for_doc("missing.xml")
        .path(Path::parse("//x").unwrap())
        .subject(&subject)
        .clearance(Clearance(Level::Unclassified));
    let err = server.serve(&unknown).unwrap_err();
    assert_eq!(err.code(), "WS101");
    assert!(err.to_string().starts_with("[WS101]"));

    let overreach = QueryRequest::for_doc("secret.xml")
        .path(Path::parse("//plan").unwrap())
        .subject(&subject)
        .clearance(Clearance(Level::Unclassified));
    assert_eq!(server.serve(&overreach).unwrap_err().code(), "WS102");

    let pathless = QueryRequest::for_doc("records.xml")
        .subject(&subject)
        .clearance(Clearance(Level::Unclassified));
    assert_eq!(server.serve(&pathless).unwrap_err().code(), "WS105");
    assert_no_sync_findings();
}
