//! Deliberate-violation vectors and determinism properties for the
//! `websec_core::sync` concurrency-correctness layer.
//!
//! The detector state is process-global, so every test serializes on
//! [`detector_session`], resets the registry on entry, and disables
//! detection on drop — tests never observe each other's graphs.

use std::sync::atomic::Ordering;
use std::sync::{Mutex, OnceLock, PoisonError};

use websec_core::policy::mls::{Clearance, ContextLabel, Level};
use websec_core::prelude::*;
use websec_core::sync::{lockdep_reset, lockorder_json, TrackedAtomicU64, TrackedMutex};
use websec_core::xml::{Document, Path};

/// Serializes detector access across the test binary's threads and turns
/// detection on for the session's lifetime.
struct DetectorSession {
    _guard: std::sync::MutexGuard<'static, ()>,
}

fn detector_session() -> DetectorSession {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    set_lockdep_enabled(true);
    lockdep_reset();
    DetectorSession { _guard: guard }
}

impl Drop for DetectorSession {
    fn drop(&mut self) {
        set_lockdep_enabled(false);
        lockdep_reset();
    }
}

fn machine_lines(findings: &[SyncFinding]) -> Vec<String> {
    findings.iter().map(SyncFinding::machine_line).collect()
}

#[test]
fn ab_ba_inversion_fires_ws110_exactly_once_with_normalized_message() {
    let _session = detector_session();
    let a = TrackedMutex::new("lockdep.it.inv_a", 0u32);
    let b = TrackedMutex::new("lockdep.it.inv_b", 0u32);

    // Canonical order first...
    {
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
    }
    // ...then the inversion, on the same thread: no deadlock occurs on
    // this schedule, but the cycle is a potential deadlock and must fire.
    {
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
    }
    let findings = lockdep_findings();
    assert_eq!(findings.len(), 1, "{:?}", machine_lines(&findings));
    assert_eq!(findings[0].code, "WS110");
    assert_eq!(
        findings[0].message,
        "lock-order inversion: lockdep.it.inv_a -> lockdep.it.inv_b -> lockdep.it.inv_a"
    );

    // Recurrence dedupes: the same inversion reported exactly once.
    for _ in 0..16 {
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
    }
    assert_eq!(lockdep_findings().len(), 1);
}

#[test]
fn racy_relaxed_publish_fires_ws111_exactly_once() {
    let _session = detector_session();
    let generation = TrackedAtomicU64::synchronizing("lockdep.it.publish", 0);

    // A relaxed store on a synchronizing atomic is an unordered
    // publication: readers can observe the flag without the data it
    // guards. Repetition must not duplicate the finding.
    for i in 0..8 {
        generation.store(i, Ordering::Relaxed);
    }
    let findings = lockdep_findings();
    assert_eq!(findings.len(), 1, "{:?}", machine_lines(&findings));
    assert_eq!(findings[0].code, "WS111");
    assert_eq!(
        findings[0].message,
        "data race: relaxed store to synchronizing atomic 'lockdep.it.publish' \
         (publication requires Ordering::Release or stronger)"
    );
}

#[test]
fn unsynchronized_relaxed_read_fires_ws111() {
    let _session = detector_session();
    let flag = TrackedAtomicU64::synchronizing("lockdep.it.read", 0);

    // The writer publishes correctly with Release on another thread...
    std::thread::scope(|scope| {
        scope
            .spawn(|| flag.store(1, Ordering::Release))
            .join()
            .expect("writer thread");
    });
    // ...but a relaxed read is not happens-before-ordered with that store
    // (the model deliberately excludes spawn/join edges, keeping the
    // vector clocks purely synchronization-derived).
    assert_eq!(flag.load(Ordering::Relaxed), 1);
    let findings = lockdep_findings();
    assert_eq!(findings.len(), 1, "{:?}", machine_lines(&findings));
    assert_eq!(findings[0].code, "WS111");
    assert!(
        findings[0].message.contains("relaxed load of synchronizing atomic 'lockdep.it.read'"),
        "{}",
        findings[0].message
    );

    // An Acquire load *is* ordered and adds nothing.
    assert_eq!(flag.load(Ordering::Acquire), 1);
    assert_eq!(lockdep_findings().len(), 1);
}

#[test]
fn violation_vectors_render_identically_across_100_seeds() {
    let _session = detector_session();
    let mut baseline: Option<Vec<String>> = None;
    for seed in 0..100u64 {
        lockdep_reset();
        let a = TrackedMutex::new("lockdep.it.seed_a", 0u64);
        let b = TrackedMutex::new("lockdep.it.seed_b", 0u64);
        let atom = TrackedAtomicU64::synchronizing("lockdep.it.seed_atom", 0);
        // Seed-varied workload shape (repetition counts), identical
        // violation set: normalized output must not depend on schedule.
        for i in 0..(1 + seed % 7) {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
            atom.store(i, Ordering::Release);
        }
        for _ in 0..(1 + seed % 3) {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            atom.store(seed, Ordering::Relaxed);
        }
        let lines = machine_lines(&lockdep_findings());
        assert_eq!(lines.len(), 2, "seed {seed}: {lines:?}");
        match &baseline {
            None => baseline = Some(lines),
            Some(expected) => assert_eq!(&lines, expected, "seed {seed}"),
        }
    }
}

#[test]
fn lockorder_json_is_deterministic_and_idempotent_across_100_seeds() {
    let _session = detector_session();
    let run_workload = || {
        let outer = TrackedMutex::new("lockdep.it.json_outer", ());
        let inner = TrackedMutex::new("lockdep.it.json_inner", ());
        // Four threads race over the same ordered pair; the interleaving
        // varies, the aggregated graph must not.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        let _go = outer.lock().unwrap();
                        let _gi = inner.lock().unwrap();
                    }
                });
            }
        });
    };
    let mut baseline: Option<String> = None;
    for seed in 0..100u64 {
        lockdep_reset();
        run_workload();
        let first = lockorder_json();
        // Idempotence: rendering is a pure read of the registry.
        assert_eq!(first, lockorder_json(), "seed {seed}: render not idempotent");
        match &baseline {
            None => baseline = Some(first),
            Some(expected) => assert_eq!(&first, expected, "seed {seed}"),
        }
    }
    let json = baseline.expect("at least one seed ran");
    assert!(json.contains("\"schema\": \"websec-lockorder-v1\""));
    assert!(json.contains("lockdep.it.json_outer"));
    assert!(json.contains("\"acquisitions\": 32"));
}

#[test]
fn serving_engine_runs_clean_under_lockdep() {
    let _session = detector_session();
    let mut stack = SecureWebStack::new([7u8; 32]);
    stack.add_document(
        "ward.xml",
        Document::parse(
            "<ward><patient id=\"p0\"><name>Ada</name></patient>\
             <patient id=\"p1\"><name>Bo</name></patient></ward>",
        )
        .expect("well-formed document"),
        ContextLabel::fixed(Level::Unclassified),
    );
    stack.policies.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Document("ward.xml".into())).privilege(Privilege::Read).grant());
    let server = StackServer::with_shards(stack, 8);
    let requests: Vec<QueryRequest> = (0..64)
        .map(|i| {
            QueryRequest::for_doc("ward.xml")
                .path(Path::parse(&format!("//patient[@id='p{}']", i % 2)).expect("path"))
                .subject(&SubjectProfile::new(&format!("doctor-{}", i % 4)))
                .clearance(Clearance(Level::Unclassified))
        })
        .collect();
    let batch = BatchRequest::new(requests).workers(4);
    let results = server.serve_batch(&batch).results;
    assert!(results.iter().all(Result::is_ok));
    server.update(|s| {
        s.policies.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Document("ward.xml".into())).privilege(Privilege::Write).grant());
    });
    let _ = server.serve_batch(&batch);
    let _ = server.analyze();
    let findings = lockdep_findings();
    assert!(
        findings.is_empty(),
        "serving engine produced sync findings:\n{}",
        machine_lines(&findings).join("\n")
    );
    // The graph saw the serving engine's real lock classes.
    let json = lockorder_json();
    assert!(json.contains("server.shard_map"), "{json}");
    assert!(json.contains("server.session"), "{json}");
    assert!(json.contains("server.snapshot"), "{json}");
}
