//! End-to-end exercise of the static analyzer (WS001–WS005) through the
//! public stack API: every diagnostic class fires on a purpose-built
//! misconfiguration, and a well-formed stack analyzes clean.

use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;

fn hospital() -> Document {
    Document::parse(
        "<hospital><patient id=\"p1\" ssn=\"1\"><name>Alice</name></patient>\
         <admin><budget>9</budget></admin></hospital>",
    )
    .unwrap()
}

fn portion(path: &str) -> ObjectSpec {
    ObjectSpec::Portion {
        document: "h.xml".into(),
        path: Path::parse(path).unwrap(),
    }
}

fn base_stack() -> SecureWebStack {
    let mut s = SecureWebStack::new([7u8; 32]);
    s.add_document("h.xml", hospital(), ContextLabel::fixed(Level::Unclassified));
    s.policies.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(portion("//patient")).privilege(Privilege::Read).grant());
    s
}

#[test]
fn default_stack_analyzes_clean() {
    let s = base_stack();
    let report = s.analyze();
    assert!(report.is_clean(), "{}", report.human());
    assert!(s.analyze_strict().is_ok());
}

#[test]
fn ws001_conflict_surfaces_through_stack() {
    let mut s = base_stack();
    s.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("h.xml".into())).privilege(Privilege::Read).grant());
    s.policies.add(Authorization::for_subject(SubjectSpec::Identity("eve".into())).on(portion("/hospital/admin")).privilege(Privilege::Read).deny());
    let report = s.analyze();
    let hits = report.with_code("WS001");
    assert!(!hits.is_empty(), "{}", report.human());
    assert!(hits.iter().all(|d| d.code == "WS001"));
    // Strategy-dependent but resolvable: warning, not a strict-boot error.
    assert!(s.analyze_strict().is_ok());
}

#[test]
fn ws001_priority_tie_refuses_strict_boot() {
    let mut s = base_stack();
    s.engine = PolicyEngine::new(ConflictStrategy::ExplicitPriority);
    s.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("h.xml".into())).privilege(Privilege::Read).grant());
    s.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("h.xml".into())).privilege(Privilege::Read).deny());
    let report = s.analyze();
    assert!(
        report
            .with_code("WS001")
            .iter()
            .any(|d| d.severity == Severity::Error),
        "{}",
        report.human()
    );
    match s.analyze_strict() {
        Err(StackError::Misconfigured(m)) => assert!(m.contains("WS001"), "{m}"),
        other => panic!("expected Misconfigured, got {other:?}"),
    }
}

#[test]
fn ws002_unreachable_rule_is_flagged() {
    let mut s = base_stack();
    s.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(portion("//cafeteria")).privilege(Privilege::Read).grant());
    let report = s.analyze();
    let hits = report.with_code("WS002");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert!(hits[0].message.contains("unreachable"));
    // Warnings do not block a strict boot.
    assert!(s.analyze_strict().is_ok());
}

#[test]
fn ws003_context_label_flow_is_flagged() {
    let mut s = SecureWebStack::new([7u8; 32]);
    s.add_document(
        "war.xml",
        Document::parse("<ops><plan>x</plan></ops>").unwrap(),
        ContextLabel::fixed(Level::Secret).unless_condition("wartime", Level::Unclassified),
    );
    s.policies.add(Authorization::for_subject(SubjectSpec::Identity("analyst".into())).on(ObjectSpec::Document("war.xml".into())).privilege(Privilege::Read).grant());
    let report = s.analyze();
    let hits = report.with_code("WS003");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert_eq!(hits[0].severity, Severity::Warning);
}

#[test]
fn ws004_inference_channel_via_direct_input() {
    // Privacy constraints live outside the stack facade, so WS004 is fed
    // through the analyzer's own input type.
    let store = PolicyStore::new();
    let constraints = vec![PrivacyConstraint::new(
        &["name", "diagnosis"],
        PrivacyLevel::Private,
    )];
    let columns: Vec<String> = ["id", "name", "diagnosis"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut input = AnalyzerInput::new(&store, ConflictStrategy::default())
        .with_schema("patients", &columns);
    input.constraints = &constraints;
    let report = Analyzer::analyze(&input);
    let hits = report.with_code("WS004");
    assert_eq!(hits.len(), 1, "{}", report.human());
    assert!(hits[0].message.contains("separate query"));
}

#[test]
fn ws005_dangling_reference_refuses_strict_boot() {
    let mut s = base_stack();
    s.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("ghost.xml".into())).privilege(Privilege::Read).grant());
    let report = s.analyze();
    assert!(
        report
            .with_code("WS005")
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("ghost.xml")),
        "{}",
        report.human()
    );
    assert!(matches!(
        s.analyze_strict(),
        Err(StackError::Misconfigured(_))
    ));
}

#[test]
fn machine_output_is_line_oriented() {
    let mut s = base_stack();
    s.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("ghost.xml".into())).privilege(Privilege::Read).grant());
    let machine = s.analyze().machine();
    for line in machine.lines() {
        let fields: Vec<&str> = line.split('|').collect();
        assert!(fields.len() >= 4, "malformed line: {line}");
        assert!(fields[0].starts_with("WS"), "bad code in: {line}");
        assert!(
            matches!(fields[1], "info" | "warning" | "error"),
            "bad severity in: {line}"
        );
    }
}
