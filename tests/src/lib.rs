//! Integration-test host crate; see `tests/` for the tests.
