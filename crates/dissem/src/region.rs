//! Policy-equivalence regions and the node records they carry.
//!
//! A **region** is the set of document nodes granted by exactly the same set
//! of (positive, read) authorizations. Each region is encrypted with its own
//! key; a node granted by policies {A, B} lands in the {A, B} region, so a
//! subject satisfying either A or B receives that region's key — exactly the
//! minimal-key scheme of §4.1.
//!
//! Region payloads are **node records**. A `Full` record carries the node's
//! complete content; a `Shell` record carries only the element name and tree
//! position, letting the subscriber rebuild the path from the root to its
//! authorized nodes (the Author-X view keeps ancestor structure visible).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use websec_policy::{AuthzId, PolicyEngine, PolicyStore, Privilege};
use websec_xml::{Document, NodeId, NodeKind};

/// Region identifier (dense, stable within one [`RegionMap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// A serializable record of one document node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRecord {
    /// Complete element: id, parent, sibling position, name, attributes.
    Element {
        /// Node id in the source document.
        id: u32,
        /// Parent node id (`None` for the root).
        parent: Option<u32>,
        /// Position among the parent's children.
        position: u32,
        /// Tag name.
        name: String,
        /// Attribute pairs.
        attributes: Vec<(String, String)>,
    },
    /// Complete text node.
    Text {
        /// Node id in the source document.
        id: u32,
        /// Parent node id.
        parent: u32,
        /// Position among the parent's children.
        position: u32,
        /// Text content.
        content: String,
    },
    /// Structural shell of an ancestor element: name only.
    Shell {
        /// Node id in the source document.
        id: u32,
        /// Parent node id (`None` for the root).
        parent: Option<u32>,
        /// Position among the parent's children.
        position: u32,
        /// Tag name (structure is considered visible; content is not).
        name: String,
    },
}

impl NodeRecord {
    /// The node id this record describes.
    #[must_use]
    pub fn id(&self) -> u32 {
        match self {
            NodeRecord::Element { id, .. }
            | NodeRecord::Text { id, .. }
            | NodeRecord::Shell { id, .. } => *id,
        }
    }

    /// True for shell (structure-only) records.
    #[must_use]
    pub fn is_shell(&self) -> bool {
        matches!(self, NodeRecord::Shell { .. })
    }
}

/// One policy-equivalence region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Identifier.
    pub id: RegionId,
    /// The granting authorizations shared by every node in the region.
    pub policies: BTreeSet<AuthzId>,
    /// Node records (full nodes plus ancestor shells).
    pub records: Vec<NodeRecord>,
}

/// The complete partition of one document.
#[derive(Debug, Clone)]
pub struct RegionMap {
    /// Document name the partition was computed for.
    pub document: String,
    /// Regions with at least one granting policy. Nodes granted by **no**
    /// policy are omitted entirely (they are never disseminated).
    pub regions: Vec<Region>,
    /// Number of nodes not covered by any policy.
    pub undisclosed_nodes: usize,
}

impl RegionMap {
    /// Partitions `doc` according to the read-granting authorizations in
    /// `store`.
    #[must_use]
    pub fn build(store: &PolicyStore, doc_name: &str, doc: &Document) -> Self {
        let classes =
            PolicyEngine::policy_equivalence_classes(store, doc_name, doc, Privilege::Read);
        let mut regions = Vec::new();
        let mut undisclosed = 0usize;
        let mut next = 0u32;
        for (policies, nodes) in classes {
            if policies.is_empty() {
                undisclosed += nodes.len();
                continue;
            }
            let records = records_for(doc, &nodes);
            regions.push(Region {
                id: RegionId(next),
                policies,
                records,
            });
            next += 1;
        }
        RegionMap {
            document: doc_name.to_string(),
            regions,
            undisclosed_nodes: undisclosed,
        }
    }

    /// Number of regions (== number of distinct keys needed).
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.regions.len()
    }
}

/// Builds the record list for `nodes`: full records for each node, plus
/// shell records for every ancestor not already included in full form.
fn records_for(doc: &Document, nodes: &[NodeId]) -> Vec<NodeRecord> {
    let in_region: BTreeSet<NodeId> = nodes.iter().copied().collect();
    let mut shells: BTreeSet<NodeId> = BTreeSet::new();
    for &n in nodes {
        for anc in doc.ancestors(n) {
            if !in_region.contains(&anc) {
                shells.insert(anc);
            }
        }
    }

    // Sibling positions for reconstruction ordering.
    let position = |n: NodeId| -> u32 {
        match doc.parent(n) {
            Some(p) => doc
                .children(p)
                .position(|c| c == n)
                .map(|i| u32::try_from(i).expect("few children"))
                .unwrap_or(0),
            None => 0,
        }
    };

    let mut records = Vec::with_capacity(nodes.len() + shells.len());
    for &n in nodes.iter().chain(shells.iter()) {
        let id = u32::try_from(n.index()).expect("document too large");
        let parent = doc.parent(n).map(|p| u32::try_from(p.index()).expect("id"));
        let pos = position(n);
        let record = if shells.contains(&n) {
            NodeRecord::Shell {
                id,
                parent,
                position: pos,
                name: doc.name(n).unwrap_or("?").to_string(),
            }
        } else {
            match doc.kind(n) {
                NodeKind::Element { name, attributes } => NodeRecord::Element {
                    id,
                    parent,
                    position: pos,
                    name: name.clone(),
                    attributes: attributes.clone(),
                },
                NodeKind::Text(content) => NodeRecord::Text {
                    id,
                    parent: parent.expect("text nodes have parents"),
                    position: pos,
                    content: content.clone(),
                },
            }
        };
        records.push(record);
    }
    records
}

/// Rebuilds a document from decrypted records (full records win over shells
/// for the same node id). Returns `None` when no root record is present.
#[must_use]
pub fn reconstruct(records: &[NodeRecord]) -> Option<Document> {
    // Deduplicate by id, preferring full records.
    let mut by_id: HashMap<u32, &NodeRecord> = HashMap::new();
    for r in records {
        match by_id.get(&r.id()) {
            Some(existing) if !existing.is_shell() => {}
            _ => {
                if r.is_shell() {
                    by_id.entry(r.id()).or_insert(r);
                } else {
                    by_id.insert(r.id(), r);
                }
            }
        }
    }

    // Find the root (parent == None).
    let root = by_id.values().find(|r| match r {
        NodeRecord::Element { parent, .. } | NodeRecord::Shell { parent, .. } => parent.is_none(),
        NodeRecord::Text { .. } => false,
    })?;
    let root_name = match root {
        NodeRecord::Element { name, .. } | NodeRecord::Shell { name, .. } => name.clone(),
        NodeRecord::Text { .. } => unreachable!(),
    };
    let root_id = root.id();
    let mut doc = Document::new(&root_name);
    if let NodeRecord::Element { attributes, .. } = root {
        for (k, v) in attributes {
            doc.set_attribute(doc.root(), k, v);
        }
    }

    // Children by parent, ordered by recorded position.
    let mut children: BTreeMap<u32, Vec<&NodeRecord>> = BTreeMap::new();
    for r in by_id.values() {
        let parent = match r {
            NodeRecord::Element { parent, .. } | NodeRecord::Shell { parent, .. } => *parent,
            NodeRecord::Text { parent, .. } => Some(*parent),
        };
        if let Some(p) = parent {
            children.entry(p).or_default().push(r);
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|r| match r {
            NodeRecord::Element { position, .. }
            | NodeRecord::Shell { position, .. }
            | NodeRecord::Text { position, .. } => *position,
        });
    }

    // DFS attach.
    let mut stack = vec![(root_id, doc.root())];
    while let Some((old_id, new_id)) = stack.pop() {
        if let Some(kids) = children.get(&old_id) {
            for r in kids {
                match r {
                    NodeRecord::Element {
                        id,
                        name,
                        attributes,
                        ..
                    } => {
                        let e = doc.add_element(new_id, name);
                        for (k, v) in attributes {
                            doc.set_attribute(e, k, v);
                        }
                        stack.push((*id, e));
                    }
                    NodeRecord::Shell { id, name, .. } => {
                        let e = doc.add_element(new_id, name);
                        stack.push((*id, e));
                    }
                    NodeRecord::Text { content, .. } => {
                        doc.add_text(new_id, content);
                    }
                }
            }
        }
    }
    Some(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::{Authorization, ObjectSpec, SubjectSpec};
    use websec_xml::Path;

    fn doc() -> Document {
        Document::parse(
            "<hospital>\
               <patient id=\"p1\"><name>Alice</name><record>flu</record></patient>\
               <admin><budget>100</budget></admin>\
             </hospital>",
        )
        .unwrap()
    }

    fn store_two_policies() -> PolicyStore {
        let mut store = PolicyStore::new();
        store.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
        store.add(Authorization::for_subject(SubjectSpec::Identity("accountant".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("/hospital/admin").unwrap(),
            }).privilege(Privilege::Read).grant());
        store
    }

    #[test]
    fn build_partitions_by_policy_set() {
        let d = doc();
        let map = RegionMap::build(&store_two_policies(), "h.xml", &d);
        assert_eq!(map.key_count(), 2);
        // Root node is covered by no policy.
        assert_eq!(map.undisclosed_nodes, 1);
    }

    #[test]
    fn regions_include_ancestor_shells() {
        let d = doc();
        let map = RegionMap::build(&store_two_policies(), "h.xml", &d);
        for region in &map.regions {
            // Every region must contain a shell for the root.
            assert!(
                region.records.iter().any(|r| r.is_shell()),
                "region {:?} lacks shells",
                region.id
            );
        }
    }

    #[test]
    fn reconstruct_single_region() {
        let d = doc();
        let map = RegionMap::build(&store_two_policies(), "h.xml", &d);
        // The patient region (policy 0).
        let patient_region = map
            .regions
            .iter()
            .find(|r| {
                r.records
                    .iter()
                    .any(|rec| matches!(rec, NodeRecord::Element { name, .. } if name == "patient"))
            })
            .unwrap();
        let view = reconstruct(&patient_region.records).unwrap();
        let s = view.to_xml_string();
        assert!(s.contains("Alice"), "{s}");
        assert!(s.contains("flu"), "{s}");
        assert!(!s.contains("budget"), "{s}");
        assert!(s.starts_with("<hospital>"), "root shell present: {s}");
    }

    #[test]
    fn reconstruct_merges_regions() {
        let d = doc();
        let map = RegionMap::build(&store_two_policies(), "h.xml", &d);
        let mut all: Vec<NodeRecord> = Vec::new();
        for r in &map.regions {
            all.extend(r.records.iter().cloned());
        }
        let view = reconstruct(&all).unwrap();
        let s = view.to_xml_string();
        assert!(s.contains("Alice") && s.contains("budget"), "{s}");
    }

    #[test]
    fn reconstruct_preserves_sibling_order() {
        let d = Document::parse("<r><a/><b/><c/></r>").unwrap();
        let mut store = PolicyStore::new();
        store.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("d".into())).privilege(Privilege::Read).grant());
        let map = RegionMap::build(&store, "d", &d);
        assert_eq!(map.key_count(), 1);
        let view = reconstruct(&map.regions[0].records).unwrap();
        assert_eq!(view.to_xml_string(), "<r><a/><b/><c/></r>");
    }

    #[test]
    fn reconstruct_empty_is_none() {
        assert!(reconstruct(&[]).is_none());
    }

    #[test]
    fn full_record_wins_over_shell() {
        let d = doc();
        // patient region + admin region both shell the root; merging with a
        // full root record (from a root-granting policy) keeps attributes.
        let mut store = store_two_policies();
        store.add(Authorization::for_subject(SubjectSpec::Identity("root-reader".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("/hospital").unwrap(),
            }).privilege(Privilege::Read).grant());
        let map = RegionMap::build(&store, "h.xml", &d);
        // Root-granting policy cascades over everything: nodes now have
        // bigger policy sets, still partitioned consistently.
        let total_records: usize = map.regions.iter().map(|r| r.records.len()).sum();
        assert!(total_records >= d.node_count());
        let mut all: Vec<NodeRecord> = Vec::new();
        for r in &map.regions {
            all.extend(r.records.iter().cloned());
        }
        let view = reconstruct(&all).unwrap();
        assert_eq!(view.to_xml_string(), d.to_xml_string());
    }

    #[test]
    fn undisclosed_nodes_never_in_records() {
        let d = doc();
        let map = RegionMap::build(&store_two_policies(), "h.xml", &d);
        // Root is undisclosed: it may appear as a shell but never as a full
        // element record with attributes.
        for r in &map.regions {
            for rec in &r.records {
                if rec.id() == u32::try_from(d.root().index()).unwrap() {
                    assert!(rec.is_shell());
                }
            }
        }
    }
}
