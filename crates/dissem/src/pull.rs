//! Pull-mode dissemination.
//!
//! In **push** mode ([`crate::package`]) the owner broadcasts one
//! multi-region package and subscribers decrypt their share offline. In
//! **pull** mode the subscriber requests the document on demand: the server
//! computes the subject's view at request time and encrypts it under the
//! subscriber's session key. Pull trades per-request server work for
//! always-fresh views and no key-distribution machinery — the trade-off the
//! dissemination literature contrasts, measurable here because both modes
//! share the policy engine.

use websec_crypto::{hkdf, hmac_sha256, ChaCha20};
use websec_policy::{PolicyEngine, PolicyStore, SubjectProfile};
use websec_xml::Document;

/// An encrypted pull response.
#[derive(Debug, Clone)]
pub struct PullResponse {
    /// Encryption nonce.
    pub nonce: [u8; 12],
    /// Ciphertext of the view's XML.
    pub ciphertext: Vec<u8>,
    /// HMAC over nonce ‖ ciphertext.
    pub mac: [u8; 32],
}

impl PullResponse {
    /// Response size on the wire.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        12 + self.ciphertext.len() + 32
    }
}

/// Pull-mode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullError {
    /// MAC verification failed.
    IntegrityFailure,
    /// Decrypted bytes were not a valid document.
    Corrupt(String),
}

impl std::fmt::Display for PullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PullError::IntegrityFailure => write!(f, "pull response failed integrity check"),
            PullError::Corrupt(m) => write!(f, "corrupt pull response: {m}"),
        }
    }
}

impl std::error::Error for PullError {}

/// The pull-mode server for one document.
pub struct PullServer<'a> {
    /// Policy base the views are computed from.
    pub store: &'a PolicyStore,
    /// Evaluation engine.
    pub engine: PolicyEngine,
    /// Document name (for policy matching).
    pub doc_name: String,
    /// The source document.
    pub doc: &'a Document,
}

fn subkeys(session_key: &[u8; 32]) -> ([u8; 32], [u8; 32]) {
    let okm = hkdf(b"dissem-pull", session_key, b"cipher+mac", 64);
    let mut enc = [0u8; 32];
    let mut mac = [0u8; 32];
    enc.copy_from_slice(&okm[..32]);
    mac.copy_from_slice(&okm[32..]);
    (enc, mac)
}

impl<'a> PullServer<'a> {
    /// Serves one request: computes the subject's view and encrypts it
    /// under the shared `session_key` with the given request `nonce`.
    #[must_use]
    pub fn serve(
        &self,
        profile: &SubjectProfile,
        session_key: &[u8; 32],
        nonce: [u8; 12],
    ) -> PullResponse {
        let view = self
            .engine
            .compute_view(self.store, profile, &self.doc_name, self.doc);
        let mut ciphertext = view.to_xml_string().into_bytes();
        let (enc, mac_key) = subkeys(session_key);
        ChaCha20::new(&enc, &nonce, 1).apply(&mut ciphertext);
        let mut mac_input = nonce.to_vec();
        mac_input.extend_from_slice(&ciphertext);
        let mac = hmac_sha256(&mac_key, &mac_input);
        PullResponse {
            nonce,
            ciphertext,
            mac,
        }
    }
}

/// Subscriber side: verifies and decrypts a pull response.
pub fn open_pull(response: &PullResponse, session_key: &[u8; 32]) -> Result<Document, PullError> {
    let (enc, mac_key) = subkeys(session_key);
    let mut mac_input = response.nonce.to_vec();
    mac_input.extend_from_slice(&response.ciphertext);
    let expected = hmac_sha256(&mac_key, &mac_input);
    if !websec_crypto::ct_eq(&expected, &response.mac) {
        return Err(PullError::IntegrityFailure);
    }
    let mut plaintext = response.ciphertext.clone();
    ChaCha20::new(&enc, &response.nonce, 1).apply(&mut plaintext);
    let xml = String::from_utf8(plaintext).map_err(|_| PullError::Corrupt("not UTF-8".into()))?;
    if xml.is_empty() {
        // An empty view (subject sees nothing) serializes to nothing.
        return Ok(Document::new("empty"));
    }
    Document::parse(&xml).map_err(|e| PullError::Corrupt(e.message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::{Authorization, ObjectSpec, Privilege, SubjectSpec};
    use websec_xml::Path;

    fn setup() -> (PolicyStore, Document) {
        let mut store = PolicyStore::new();
        store.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
        let doc = Document::parse(
            "<hospital><patient><name>Alice</name></patient><admin><budget>1</budget></admin></hospital>",
        )
        .unwrap();
        (store, doc)
    }

    #[test]
    fn pull_roundtrip_matches_view() {
        let (store, doc) = setup();
        let server = PullServer {
            store: &store,
            engine: PolicyEngine::default(),
            doc_name: "h.xml".into(),
            doc: &doc,
        };
        let key = [7u8; 32];
        let response = server.serve(&SubjectProfile::new("doctor"), &key, [1u8; 12]);
        let view = open_pull(&response, &key).unwrap();
        let s = view.to_xml_string();
        assert!(s.contains("Alice"), "{s}");
        assert!(!s.contains("budget"), "{s}");
    }

    #[test]
    fn unauthorized_subject_gets_empty_view() {
        let (store, doc) = setup();
        let server = PullServer {
            store: &store,
            engine: PolicyEngine::default(),
            doc_name: "h.xml".into(),
            doc: &doc,
        };
        let key = [7u8; 32];
        let response = server.serve(&SubjectProfile::new("stranger"), &key, [1u8; 12]);
        let view = open_pull(&response, &key).unwrap();
        assert!(!view.to_xml_string().contains("Alice"));
    }

    #[test]
    fn wrong_session_key_rejected() {
        let (store, doc) = setup();
        let server = PullServer {
            store: &store,
            engine: PolicyEngine::default(),
            doc_name: "h.xml".into(),
            doc: &doc,
        };
        let response = server.serve(&SubjectProfile::new("doctor"), &[1u8; 32], [0u8; 12]);
        assert_eq!(
            open_pull(&response, &[2u8; 32]).unwrap_err(),
            PullError::IntegrityFailure
        );
    }

    #[test]
    fn tampered_response_rejected() {
        let (store, doc) = setup();
        let server = PullServer {
            store: &store,
            engine: PolicyEngine::default(),
            doc_name: "h.xml".into(),
            doc: &doc,
        };
        let key = [3u8; 32];
        let mut response = server.serve(&SubjectProfile::new("doctor"), &key, [0u8; 12]);
        response.ciphertext[0] ^= 1;
        assert_eq!(open_pull(&response, &key).unwrap_err(), PullError::IntegrityFailure);
    }

    #[test]
    fn ciphertext_hides_content() {
        let (store, doc) = setup();
        let server = PullServer {
            store: &store,
            engine: PolicyEngine::default(),
            doc_name: "h.xml".into(),
            doc: &doc,
        };
        let response = server.serve(&SubjectProfile::new("doctor"), &[9u8; 32], [2u8; 12]);
        assert!(!String::from_utf8_lossy(&response.ciphertext).contains("Alice"));
        assert!(response.size_bytes() > 44);
    }
}
