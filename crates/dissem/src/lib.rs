//! # websec-dissem
//!
//! Secure and **selective dissemination** of XML documents, after the
//! Bertino–Ferrari TISSEC 2002 approach the paper cites in §3.2 and applies
//! to UDDI in §4.1: "the service provider encrypts the entries … according to
//! its access control policies: all the entry portions to which the same
//! policies apply are encrypted with the same key. … the service provider is
//! responsible for distributing keys to the service requestors in such a way
//! that each service requestor receives all and only the keys corresponding
//! to the information it is entitled to access."
//!
//! Pipeline:
//!
//! 1. [`region`] partitions a document into **policy-equivalence regions**
//!    (one per distinct set of granting authorizations).
//! 2. [`keyring`] derives one key per region from a document master key and
//!    hands each subject exactly the keys its credentials entitle it to.
//! 3. [`package`] encrypts each region's node records into a broadcast
//!    package (**push** mode) and reconstructs a subject's view from
//!    whichever regions its keys open, with per-region integrity.
//! 4. [`pull`] is the on-demand alternative: the server computes the view
//!    at request time and encrypts it under the subscriber's session key.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod keyring;
pub mod package;
pub mod pull;
pub mod region;

pub use keyring::{KeyAuthority, SubjectKeyring};
pub use package::{DissemError, DissemPackage, EncryptedRegion};
pub use pull::{open_pull, PullError, PullResponse, PullServer};
pub use region::{Region, RegionId, RegionMap};
