//! Encrypted dissemination packages.
//!
//! Push mode: the owner encrypts every region with its key and broadcasts
//! one [`DissemPackage`] to all subscribers; each subscriber opens exactly
//! the regions its keyring covers and reconstructs its authorized view.
//! Integrity is per-region (encrypt-then-MAC with keys derived from the
//! region key), so a tampered region is rejected without affecting others.

use crate::keyring::{RegionKey, SubjectKeyring};
use crate::region::{reconstruct, NodeRecord, Region, RegionId, RegionMap};
use websec_crypto::{hkdf, hmac_sha256, ChaCha20};
use websec_xml::Document;

/// Errors from packaging / unpackaging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DissemError {
    /// A region's MAC did not verify (tampering or wrong key).
    IntegrityFailure(RegionId),
    /// Region payload could not be decoded after decryption.
    Corrupt(RegionId, String),
    /// No region could be opened with the provided keyring.
    NoAccessibleRegion,
}

impl std::fmt::Display for DissemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DissemError::IntegrityFailure(r) => write!(f, "integrity failure in region {}", r.0),
            DissemError::Corrupt(r, m) => write!(f, "corrupt region {}: {m}", r.0),
            DissemError::NoAccessibleRegion => write!(f, "keyring opens no region"),
        }
    }
}

impl std::error::Error for DissemError {}

/// One encrypted region.
#[derive(Debug, Clone)]
pub struct EncryptedRegion {
    /// Region id (cleartext — subscribers must know which key to try).
    pub id: RegionId,
    /// Encryption nonce.
    pub nonce: [u8; 12],
    /// Ciphertext of the encoded records.
    pub ciphertext: Vec<u8>,
    /// HMAC over id ‖ nonce ‖ ciphertext with the region MAC key.
    pub mac: [u8; 32],
}

/// A broadcastable encrypted document.
#[derive(Debug, Clone)]
pub struct DissemPackage {
    /// Source document name.
    pub document: String,
    /// Encrypted regions.
    pub regions: Vec<EncryptedRegion>,
}

/// Splits a region key into independent cipher and MAC keys.
fn subkeys(key: &RegionKey) -> ([u8; 32], [u8; 32]) {
    let okm = hkdf(b"dissem-subkeys", key, b"cipher+mac", 64);
    let mut enc = [0u8; 32];
    let mut mac = [0u8; 32];
    enc.copy_from_slice(&okm[..32]);
    mac.copy_from_slice(&okm[32..]);
    (enc, mac)
}

fn mac_input(id: RegionId, nonce: &[u8; 12], ciphertext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 12 + ciphertext.len());
    out.extend_from_slice(&id.0.to_le_bytes());
    out.extend_from_slice(nonce);
    out.extend_from_slice(ciphertext);
    out
}

impl DissemPackage {
    /// Encrypts every region of `map`, deriving keys through `key_for`
    /// (typically [`crate::KeyAuthority::region_key`]). `nonce_seed`
    /// deterministically derives one nonce per region — callers must use a
    /// fresh seed per broadcast.
    #[must_use]
    pub fn seal(
        map: &RegionMap,
        nonce_seed: &[u8],
        mut key_for: impl FnMut(&Region) -> RegionKey,
    ) -> DissemPackage {
        let regions = map
            .regions
            .iter()
            .map(|region| {
                let key = key_for(region);
                let (enc_key, mac_key) = subkeys(&key);
                let nonce_bytes = hkdf(
                    b"dissem-nonce",
                    nonce_seed,
                    &region.id.0.to_le_bytes(),
                    12,
                );
                let mut nonce = [0u8; 12];
                nonce.copy_from_slice(&nonce_bytes);
                let mut ciphertext = encode_records(&region.records);
                ChaCha20::new(&enc_key, &nonce, 1).apply(&mut ciphertext);
                let mac = hmac_sha256(&mac_key, &mac_input(region.id, &nonce, &ciphertext));
                EncryptedRegion {
                    id: region.id,
                    nonce,
                    ciphertext,
                    mac,
                }
            })
            .collect();
        DissemPackage {
            document: map.document.clone(),
            regions,
        }
    }

    /// Total ciphertext bytes (experiment metric).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.regions.iter().map(|r| r.ciphertext.len() + 44).sum()
    }

    /// Opens every region covered by `keyring`, verifies integrity, and
    /// reconstructs the subscriber's view.
    pub fn open(&self, keyring: &SubjectKeyring) -> Result<Document, DissemError> {
        let mut records: Vec<NodeRecord> = Vec::new();
        let mut opened = 0usize;
        for region in &self.regions {
            let Some(key) = keyring.key(region.id) else {
                continue;
            };
            let (enc_key, mac_key) = subkeys(key);
            let expected = hmac_sha256(
                &mac_key,
                &mac_input(region.id, &region.nonce, &region.ciphertext),
            );
            if !websec_crypto::ct_eq(&expected, &region.mac) {
                return Err(DissemError::IntegrityFailure(region.id));
            }
            let mut plaintext = region.ciphertext.clone();
            ChaCha20::new(&enc_key, &region.nonce, 1).apply(&mut plaintext);
            let decoded = decode_records(&plaintext)
                .map_err(|e| DissemError::Corrupt(region.id, e))?;
            records.extend(decoded);
            opened += 1;
        }
        if opened == 0 {
            return Err(DissemError::NoAccessibleRegion);
        }
        reconstruct(&records).ok_or(DissemError::NoAccessibleRegion)
    }
}

// --- record codec -----------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Encodes records into the region payload format.
#[must_use]
pub fn encode_records(records: &[NodeRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        match r {
            NodeRecord::Element {
                id,
                parent,
                position,
                name,
                attributes,
            } => {
                out.push(0);
                out.extend_from_slice(&id.to_le_bytes());
                put_opt_u32(&mut out, *parent);
                out.extend_from_slice(&position.to_le_bytes());
                put_str(&mut out, name);
                out.extend_from_slice(&(attributes.len() as u32).to_le_bytes());
                for (k, v) in attributes {
                    put_str(&mut out, k);
                    put_str(&mut out, v);
                }
            }
            NodeRecord::Text {
                id,
                parent,
                position,
                content,
            } => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&parent.to_le_bytes());
                out.extend_from_slice(&position.to_le_bytes());
                put_str(&mut out, content);
            }
            NodeRecord::Shell {
                id,
                parent,
                position,
                name,
            } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
                put_opt_u32(&mut out, *parent);
                out.extend_from_slice(&position.to_le_bytes());
                put_str(&mut out, name);
            }
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err("truncated payload".into());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(format!("bad option tag {t}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        if len > 1 << 24 {
            return Err("string too long".into());
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8".into())
    }
}

/// Decodes a region payload.
pub fn decode_records(buf: &[u8]) -> Result<Vec<NodeRecord>, String> {
    let mut r = Reader { buf, pos: 0 };
    let count = r.u32()? as usize;
    if count > 1 << 24 {
        return Err("record count too large".into());
    }
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let tag = r.u8()?;
        let record = match tag {
            0 => {
                let id = r.u32()?;
                let parent = r.opt_u32()?;
                let position = r.u32()?;
                let name = r.string()?;
                let n_attrs = r.u32()? as usize;
                if n_attrs > 1 << 16 {
                    return Err("too many attributes".into());
                }
                let mut attributes = Vec::with_capacity(n_attrs.min(64));
                for _ in 0..n_attrs {
                    let k = r.string()?;
                    let v = r.string()?;
                    attributes.push((k, v));
                }
                NodeRecord::Element {
                    id,
                    parent,
                    position,
                    name,
                    attributes,
                }
            }
            1 => NodeRecord::Text {
                id: r.u32()?,
                parent: r.u32()?,
                position: r.u32()?,
                content: r.string()?,
            },
            2 => NodeRecord::Shell {
                id: r.u32()?,
                parent: r.opt_u32()?,
                position: r.u32()?,
                name: r.string()?,
            },
            t => return Err(format!("unknown record tag {t}")),
        };
        out.push(record);
    }
    if r.pos != buf.len() {
        return Err("trailing bytes in payload".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyring::KeyAuthority;
    use websec_policy::{
        Authorization, ObjectSpec, PolicyStore, Privilege, SubjectProfile, SubjectSpec,
    };
    use websec_xml::Path;

    fn setup() -> (PolicyStore, Document, RegionMap, KeyAuthority) {
        let mut store = PolicyStore::new();
        store.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
        store.add(Authorization::for_subject(SubjectSpec::Identity("accountant".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//admin").unwrap(),
            }).privilege(Privilege::Read).grant());
        let doc = Document::parse(
            "<hospital><patient><name>Alice</name></patient><admin><budget>100</budget></admin></hospital>",
        )
        .unwrap();
        let map = RegionMap::build(&store, "h.xml", &doc);
        let ka = KeyAuthority::new("h.xml", [5u8; 32]);
        (store, doc, map, ka)
    }

    #[test]
    fn codec_roundtrip() {
        let records = vec![
            NodeRecord::Element {
                id: 0,
                parent: None,
                position: 0,
                name: "root".into(),
                attributes: vec![("a".into(), "1".into()), ("b".into(), "x\"y".into())],
            },
            NodeRecord::Text {
                id: 1,
                parent: 0,
                position: 0,
                content: "héllo".into(),
            },
            NodeRecord::Shell {
                id: 2,
                parent: Some(0),
                position: 1,
                name: "shell".into(),
            },
        ];
        let encoded = encode_records(&records);
        assert_eq!(decode_records(&encoded).unwrap(), records);
    }

    #[test]
    fn codec_rejects_truncation_and_garbage() {
        let records = vec![NodeRecord::Text {
            id: 1,
            parent: 0,
            position: 0,
            content: "x".into(),
        }];
        let encoded = encode_records(&records);
        assert!(decode_records(&encoded[..encoded.len() - 1]).is_err());
        let mut trailing = encoded.clone();
        trailing.push(0);
        assert!(decode_records(&trailing).is_err());
        assert!(decode_records(&[0xff; 16]).is_err());
    }

    #[test]
    fn doctor_sees_only_patient() {
        let (store, _doc, map, ka) = setup();
        let pkg = DissemPackage::seal(&map, b"broadcast-1", |r| ka.region_key(&map, r.id));
        let keyring = ka.keys_for(&store, &map, &SubjectProfile::new("doctor"));
        let view = pkg.open(&keyring).unwrap();
        let s = view.to_xml_string();
        assert!(s.contains("Alice"), "{s}");
        assert!(!s.contains("100"), "{s}");
    }

    #[test]
    fn accountant_sees_only_admin() {
        let (store, _doc, map, ka) = setup();
        let pkg = DissemPackage::seal(&map, b"broadcast-1", |r| ka.region_key(&map, r.id));
        let keyring = ka.keys_for(&store, &map, &SubjectProfile::new("accountant"));
        let view = pkg.open(&keyring).unwrap();
        let s = view.to_xml_string();
        assert!(s.contains("100"), "{s}");
        assert!(!s.contains("Alice"), "{s}");
    }

    #[test]
    fn stranger_opens_nothing() {
        let (store, _doc, map, ka) = setup();
        let pkg = DissemPackage::seal(&map, b"broadcast-1", |r| ka.region_key(&map, r.id));
        let keyring = ka.keys_for(&store, &map, &SubjectProfile::new("stranger"));
        assert_eq!(pkg.open(&keyring).unwrap_err(), DissemError::NoAccessibleRegion);
    }

    #[test]
    fn tampered_region_detected() {
        let (store, _doc, map, ka) = setup();
        let mut pkg = DissemPackage::seal(&map, b"broadcast-1", |r| ka.region_key(&map, r.id));
        let keyring = ka.keys_for(&store, &map, &SubjectProfile::new("doctor"));
        let doctor_region = keyring.regions().next().unwrap();
        let slot = pkg
            .regions
            .iter_mut()
            .find(|r| r.id == doctor_region)
            .unwrap();
        slot.ciphertext[0] ^= 1;
        assert_eq!(
            pkg.open(&keyring).unwrap_err(),
            DissemError::IntegrityFailure(doctor_region)
        );
    }

    #[test]
    fn wrong_key_fails_integrity_not_garbage() {
        let (_store, _doc, map, ka) = setup();
        let pkg = DissemPackage::seal(&map, b"broadcast-1", |r| ka.region_key(&map, r.id));
        // Hand the subscriber a wrong key for an existing region id.
        let mut keyring = SubjectKeyring::empty();
        keyring.insert(map.regions[0].id, [0xAB; 32]);
        assert!(matches!(
            pkg.open(&keyring).unwrap_err(),
            DissemError::IntegrityFailure(_)
        ));
    }

    #[test]
    fn fresh_nonce_seed_changes_ciphertext() {
        let (_store, _doc, map, ka) = setup();
        let p1 = DissemPackage::seal(&map, b"seed-1", |r| ka.region_key(&map, r.id));
        let p2 = DissemPackage::seal(&map, b"seed-2", |r| ka.region_key(&map, r.id));
        assert_ne!(p1.regions[0].ciphertext, p2.regions[0].ciphertext);
        assert_ne!(p1.regions[0].nonce, p2.regions[0].nonce);
    }

    #[test]
    fn ciphertext_hides_content() {
        let (_store, _doc, map, ka) = setup();
        let pkg = DissemPackage::seal(&map, b"b", |r| ka.region_key(&map, r.id));
        for r in &pkg.regions {
            let hay = String::from_utf8_lossy(&r.ciphertext);
            assert!(!hay.contains("Alice") && !hay.contains("100"));
        }
        assert!(pkg.size_bytes() > 0);
    }

    #[test]
    fn subject_matching_multiple_policies_sees_union() {
        let (mut store, doc, _m, _ka) = setup();
        // A super-user identity granted both portions via a third policy
        // set: grant both paths to "chief".
        store.add(Authorization::for_subject(SubjectSpec::Identity("chief".into())).on(ObjectSpec::Document("h.xml".into())).privilege(Privilege::Read).grant());
        let map = RegionMap::build(&store, "h.xml", &doc);
        let ka = KeyAuthority::new("h.xml", [5u8; 32]);
        let pkg = DissemPackage::seal(&map, b"b2", |r| ka.region_key(&map, r.id));
        let keyring = ka.keys_for(&store, &map, &SubjectProfile::new("chief"));
        let view = pkg.open(&keyring).unwrap();
        let s = view.to_xml_string();
        assert!(s.contains("Alice") && s.contains("100"), "{s}");
    }
}
