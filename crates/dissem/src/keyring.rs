//! Key derivation and distribution.
//!
//! The owner holds one master key per document; every region key is derived
//! from it with HKDF over the region's policy-set fingerprint, so the owner
//! stores O(1) key material per document no matter how many regions exist.
//! A subject receives the keys of exactly the regions containing at least
//! one authorization whose subject specification the subject satisfies —
//! "all and only the keys corresponding to the information it is entitled to
//! access" (§4.1).

use crate::region::{RegionId, RegionMap};
use std::collections::BTreeMap;
use websec_policy::{PolicyStore, SubjectProfile};

/// A 256-bit region key.
pub type RegionKey = [u8; 32];

/// The owner-side key authority for one document.
pub struct KeyAuthority {
    master: [u8; 32],
    document: String,
}

impl KeyAuthority {
    /// Creates an authority from a master key.
    #[must_use]
    pub fn new(document: &str, master: [u8; 32]) -> Self {
        KeyAuthority {
            master,
            document: document.to_string(),
        }
    }

    /// Derives the key for `region` of the partition `map`.
    ///
    /// The derivation context binds document name and the *policy set*, not
    /// the dense region id, so re-partitioning after unrelated policy churn
    /// keeps keys stable for unchanged regions.
    #[must_use]
    pub fn region_key(&self, map: &RegionMap, region: RegionId) -> RegionKey {
        let r = map
            .regions
            .iter()
            .find(|r| r.id == region)
            .expect("unknown region");
        let mut info = format!("websec-dissem:{}:", self.document).into_bytes();
        for p in &r.policies {
            info.extend_from_slice(&p.0.to_le_bytes());
        }
        let okm = websec_crypto::hkdf(b"region-key", &self.master, &info, 32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&okm);
        key
    }

    /// Computes the keyring for `profile`: keys for every region granted to
    /// it by at least one of its satisfying authorizations.
    #[must_use]
    pub fn keys_for(
        &self,
        store: &PolicyStore,
        map: &RegionMap,
        profile: &SubjectProfile,
    ) -> SubjectKeyring {
        let mut keys = BTreeMap::new();
        for region in &map.regions {
            let entitled = region.policies.iter().any(|pid| {
                store
                    .authorizations()
                    .iter()
                    .find(|a| a.id == *pid)
                    .is_some_and(|a| a.subject.matches(profile, &store.hierarchy))
            });
            if entitled {
                keys.insert(region.id, self.region_key(map, region.id));
            }
        }
        SubjectKeyring { keys }
    }
}

/// The keys one subject holds.
#[derive(Debug, Clone, Default)]
pub struct SubjectKeyring {
    keys: BTreeMap<RegionId, RegionKey>,
}

impl SubjectKeyring {
    /// An empty keyring.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Key for `region`, if held.
    #[must_use]
    pub fn key(&self, region: RegionId) -> Option<&RegionKey> {
        self.keys.get(&region)
    }

    /// Number of keys held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Regions this keyring opens.
    pub fn regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.keys.keys().copied()
    }

    /// Inserts a key (used by tests and by external key escrow).
    pub fn insert(&mut self, region: RegionId, key: RegionKey) {
        self.keys.insert(region, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::{Authorization, ObjectSpec, Privilege, SubjectSpec};
    use websec_xml::{Document, Path};

    fn setup() -> (PolicyStore, Document) {
        let mut store = PolicyStore::new();
        store.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
        store.add(Authorization::for_subject(SubjectSpec::Identity("accountant".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//admin").unwrap(),
            }).privilege(Privilege::Read).grant());
        let doc = Document::parse(
            "<hospital><patient><name>A</name></patient><admin><budget>1</budget></admin></hospital>",
        )
        .unwrap();
        (store, doc)
    }

    #[test]
    fn keys_only_for_entitled_regions() {
        let (store, doc) = setup();
        let map = RegionMap::build(&store, "h.xml", &doc);
        let ka = KeyAuthority::new("h.xml", [9u8; 32]);
        let doctor = ka.keys_for(&store, &map, &SubjectProfile::new("doctor"));
        let accountant = ka.keys_for(&store, &map, &SubjectProfile::new("accountant"));
        let stranger = ka.keys_for(&store, &map, &SubjectProfile::new("stranger"));
        assert_eq!(doctor.len(), 1);
        assert_eq!(accountant.len(), 1);
        assert!(stranger.is_empty());
        // Doctor and accountant hold different keys.
        let dr = doctor.regions().next().unwrap();
        let ar = accountant.regions().next().unwrap();
        assert_ne!(dr, ar);
    }

    #[test]
    fn region_keys_distinct_and_deterministic() {
        let (store, doc) = setup();
        let map = RegionMap::build(&store, "h.xml", &doc);
        let ka = KeyAuthority::new("h.xml", [9u8; 32]);
        let k0 = ka.region_key(&map, map.regions[0].id);
        let k1 = ka.region_key(&map, map.regions[1].id);
        assert_ne!(k0, k1);
        assert_eq!(k0, ka.region_key(&map, map.regions[0].id));
    }

    #[test]
    fn different_masters_different_keys() {
        let (store, doc) = setup();
        let map = RegionMap::build(&store, "h.xml", &doc);
        let a = KeyAuthority::new("h.xml", [1u8; 32]);
        let b = KeyAuthority::new("h.xml", [2u8; 32]);
        assert_ne!(
            a.region_key(&map, map.regions[0].id),
            b.region_key(&map, map.regions[0].id)
        );
    }

    #[test]
    fn key_stability_across_unrelated_policy_churn() {
        let (mut store, doc) = setup();
        let map1 = RegionMap::build(&store, "h.xml", &doc);
        let ka = KeyAuthority::new("h.xml", [7u8; 32]);
        // Find the patient region key before adding an unrelated policy.
        let patient_region_1 = map1
            .regions
            .iter()
            .find(|r| r.records.iter().any(|rec| {
                matches!(rec, crate::region::NodeRecord::Element { name, .. } if name == "patient")
            }))
            .unwrap();
        let key_before = ka.region_key(&map1, patient_region_1.id);

        // Add a policy on a different subtree; the patient policy set is
        // unchanged, so its key must be too.
        store.add(Authorization::for_subject(SubjectSpec::Identity("auditor".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//admin").unwrap(),
            }).privilege(Privilege::Read).grant());
        let map2 = RegionMap::build(&store, "h.xml", &doc);
        let patient_region_2 = map2
            .regions
            .iter()
            .find(|r| r.records.iter().any(|rec| {
                matches!(rec, crate::region::NodeRecord::Element { name, .. } if name == "patient")
            }))
            .unwrap();
        let key_after = ka.region_key(&map2, patient_region_2.id);
        assert_eq!(key_before, key_after);
    }
}
