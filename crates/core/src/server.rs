//! Concurrent serving layer over an immutable stack snapshot.
//!
//! The ROADMAP's north star is a system that "serves heavy traffic from
//! millions of users"; the paper's §5 stack is the per-request work. This
//! module supplies the two scaling levers the web-service security
//! literature treats as fundamental — **per-session security context** and
//! **policy decision reuse** — plus thread-parallel batch execution:
//!
//! * **Session reuse** — one [`ChannelSession`] per subject, established
//!   (handshake + key derivation) on first contact and reused for every
//!   later request, instead of two fresh [`websec_services::SecureChannel`]
//!   constructions per query.
//! * **Policy-view cache** — the subject's computed view of a document is
//!   cached under `(subject identity, document, policy epoch)`. A policy
//!   mutation bumps [`websec_policy::PolicyStore::epoch`], so stale views
//!   can never be served; entries from older epochs are evicted on the next
//!   touch, and [`StackServer::update`] / [`StackServer::invalidate_views`]
//!   clear the cache explicitly when documents, policies, or labels mutate.
//! * **Parallel batches** — [`StackServer::serve_batch`] fans a slice of
//!   requests across `std::thread` workers sharing the `Arc` snapshot;
//!   results are positionally identical to a serial run.
//!
//! Everything is observable: [`ServerMetrics`] extends the per-request
//! [`LayerTimings`] into cumulative per-layer counters, cache/session/gate
//! statistics, and a log₂ latency histogram.
//!
//! The cache key deliberately uses the subject *identity* (not the full
//! profile): a server maps each authenticated identity to one profile, the
//! same assumption the per-identity session table makes. Callers that
//! attach different role/credential sets to one identity must invalidate
//! between them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::error::Error;
use crate::request::{CacheStatus, Decision, QueryRequest, QueryResponse};
use crate::stack::{LayerTimings, SecureWebStack};
use websec_services::ChannelSession;
use websec_xml::Document;

/// Number of log₂ latency buckets (bucket `i` covers `[2^i, 2^{i+1})` ns;
/// 40 buckets span ~18 minutes, far beyond any sane request).
const LATENCY_BUCKETS: usize = 40;

/// A snapshot of the server's cumulative latency distribution.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts requests whose total latency fell in
    /// `[2^i, 2^{i+1})` nanoseconds.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total recorded requests.
    pub count: u64,
    /// Sum of recorded latencies in nanoseconds.
    pub sum_ns: u64,
}

impl LatencyHistogram {
    /// Mean latency in nanoseconds (0 when nothing was recorded).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive, in ns) of the bucket containing quantile `q`
    /// (e.g. `0.5`, `0.99`). Returns 0 when nothing was recorded.
    #[must_use]
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// Cumulative serving statistics, reported by [`StackServer::metrics`].
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Total requests received (including failures).
    pub requests: u64,
    /// Requests answered with a view (possibly empty).
    pub allowed: u64,
    /// Requests refused by the RDF label layer (`WS102`).
    pub denied: u64,
    /// Requests failing for any other reason (unknown document, channel,
    /// malformed request).
    pub errors: u64,
    /// Requests that ran the full policy evaluation.
    pub enforced: u64,
    /// Requests admitted unchecked by the flexible gate (the measured
    /// exposure at reduced enforcement levels).
    pub admitted_unchecked: u64,
    /// Policy-view cache hits.
    pub cache_hits: u64,
    /// Policy-view cache misses (view computed and inserted).
    pub cache_misses: u64,
    /// Channel sessions established (one handshake each).
    pub sessions_established: u64,
    /// Requests that reused an existing session (handshakes avoided).
    pub session_reuses: u64,
    /// Cumulative per-layer time across all successful requests.
    pub layer_totals: LayerTimings,
    /// Distribution of total request latency.
    pub latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Cache hits over cache-eligible (enforced) view lookups.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of gated requests admitted without checking (mirrors
    /// [`websec_policy::FlexibleEnforcer::exposure`] but aggregated across
    /// the server's immutable snapshot).
    #[must_use]
    pub fn exposure(&self) -> f64 {
        let total = self.enforced + self.admitted_unchecked;
        if total == 0 {
            0.0
        } else {
            self.admitted_unchecked as f64 / total as f64
        }
    }
}

/// Lock-free cumulative counters (the mutable twin of [`ServerMetrics`]).
struct MetricsInner {
    requests: AtomicU64,
    allowed: AtomicU64,
    denied: AtomicU64,
    errors: AtomicU64,
    enforced: AtomicU64,
    admitted_unchecked: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sessions_established: AtomicU64,
    session_reuses: AtomicU64,
    channel_ns: AtomicU64,
    rdf_ns: AtomicU64,
    xml_ns: AtomicU64,
    gate_ns: AtomicU64,
    latency_sum_ns: AtomicU64,
    latency_count: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for MetricsInner {
    fn default() -> Self {
        MetricsInner {
            requests: AtomicU64::new(0),
            allowed: AtomicU64::new(0),
            denied: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            enforced: AtomicU64::new(0),
            admitted_unchecked: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            sessions_established: AtomicU64::new(0),
            session_reuses: AtomicU64::new(0),
            channel_ns: AtomicU64::new(0),
            rdf_ns: AtomicU64::new(0),
            xml_ns: AtomicU64::new(0),
            gate_ns: AtomicU64::new(0),
            latency_sum_ns: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl MetricsInner {
    fn record_latency(&self, total_ns: u128) {
        let ns = u64::try_from(total_ns).unwrap_or(u64::MAX);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    fn record_outcome(&self, result: &Result<QueryResponse, Error>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(response) => {
                self.allowed.fetch_add(1, Ordering::Relaxed);
                match response.decision {
                    Decision::Enforced => self.enforced.fetch_add(1, Ordering::Relaxed),
                    Decision::AdmittedUnchecked => {
                        self.admitted_unchecked.fetch_add(1, Ordering::Relaxed)
                    }
                };
                match response.cache {
                    CacheStatus::Hit => self.cache_hits.fetch_add(1, Ordering::Relaxed),
                    CacheStatus::Miss => self.cache_misses.fetch_add(1, Ordering::Relaxed),
                    CacheStatus::Bypass => 0,
                };
                let t = &response.timings;
                let add = |a: &AtomicU64, v: u128| {
                    a.fetch_add(u64::try_from(v).unwrap_or(u64::MAX), Ordering::Relaxed);
                };
                add(&self.channel_ns, t.channel_ns);
                add(&self.rdf_ns, t.rdf_ns);
                add(&self.xml_ns, t.xml_ns);
                add(&self.gate_ns, t.gate_ns);
                self.record_latency(t.total_ns());
            }
            Err(Error::ClearanceViolation) => {
                self.denied.fetch_add(1, Ordering::Relaxed);
                // A denial is the *result* of full enforcement.
                self.enforced.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn snapshot(&self) -> ServerMetrics {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, counter) in buckets.iter_mut().zip(self.latency.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        ServerMetrics {
            requests: self.requests.load(Ordering::Relaxed),
            allowed: self.allowed.load(Ordering::Relaxed),
            denied: self.denied.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            enforced: self.enforced.load(Ordering::Relaxed),
            admitted_unchecked: self.admitted_unchecked.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            sessions_established: self.sessions_established.load(Ordering::Relaxed),
            session_reuses: self.session_reuses.load(Ordering::Relaxed),
            layer_totals: LayerTimings {
                channel_ns: u128::from(self.channel_ns.load(Ordering::Relaxed)),
                rdf_ns: u128::from(self.rdf_ns.load(Ordering::Relaxed)),
                xml_ns: u128::from(self.xml_ns.load(Ordering::Relaxed)),
                gate_ns: u128::from(self.gate_ns.load(Ordering::Relaxed)),
            },
            latency: LatencyHistogram {
                buckets,
                count: self.latency_count.load(Ordering::Relaxed),
                sum_ns: self.latency_sum_ns.load(Ordering::Relaxed),
            },
        }
    }
}

/// Policy-view cache keyed by `(identity, document)` within one policy
/// epoch; entries from older epochs are evicted wholesale on first touch
/// after the epoch advances.
struct ViewCache {
    inner: RwLock<ViewCacheInner>,
}

struct ViewCacheInner {
    epoch: u64,
    views: HashMap<(String, String), Arc<Document>>,
}

impl ViewCache {
    fn new() -> Self {
        ViewCache {
            inner: RwLock::new(ViewCacheInner {
                epoch: 0,
                views: HashMap::new(),
            }),
        }
    }

    fn view_for(
        &self,
        stack: &SecureWebStack,
        profile: &websec_policy::SubjectProfile,
        doc_name: &str,
        doc: &Document,
    ) -> (Arc<Document>, CacheStatus) {
        let epoch = stack.policies.epoch();
        {
            let guard = self.inner.read().expect("view cache poisoned");
            if guard.epoch == epoch {
                let key = (profile.identity.clone(), doc_name.to_string());
                if let Some(view) = guard.views.get(&key) {
                    return (Arc::clone(view), CacheStatus::Hit);
                }
            }
        }
        // Compute outside the write lock; a racing thread may duplicate the
        // work but both produce the same view.
        let view = Arc::new(
            stack
                .engine
                .compute_view(&stack.policies, profile, doc_name, doc),
        );
        let mut guard = self.inner.write().expect("view cache poisoned");
        if guard.epoch != epoch {
            // The policy base mutated: evict every stale view.
            guard.views.clear();
            guard.epoch = epoch;
        }
        guard
            .views
            .insert((profile.identity.clone(), doc_name.to_string()), Arc::clone(&view));
        (view, CacheStatus::Miss)
    }

    fn clear(&self) {
        self.inner
            .write()
            .expect("view cache poisoned")
            .views
            .clear();
    }

    fn len(&self) -> usize {
        self.inner.read().expect("view cache poisoned").views.len()
    }
}

/// A concurrent server over an immutable [`SecureWebStack`] snapshot.
///
/// `serve` and `serve_batch` take `&self` and are safe to call from many
/// threads; mutation goes through [`StackServer::update`], which requires
/// `&mut self` (no concurrent serving) and invalidates cached views.
pub struct StackServer {
    snapshot: Arc<SecureWebStack>,
    sessions: Mutex<HashMap<String, Arc<Mutex<ChannelSession>>>>,
    cache: ViewCache,
    metrics: MetricsInner,
}

impl StackServer {
    /// Wraps a configured stack into a serving snapshot.
    #[must_use]
    pub fn new(stack: SecureWebStack) -> Self {
        StackServer {
            snapshot: Arc::new(stack),
            sessions: Mutex::new(HashMap::new()),
            cache: ViewCache::new(),
            metrics: MetricsInner::default(),
        }
    }

    /// The current immutable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Arc<SecureWebStack> {
        Arc::clone(&self.snapshot)
    }

    /// Mutates the stack configuration (documents, policies, labels,
    /// context, gate) through copy-on-write on the snapshot, then
    /// invalidates every cached view. Requires `&mut self`, so no request
    /// can observe a half-applied mutation.
    pub fn update<R>(&mut self, mutate: impl FnOnce(&mut SecureWebStack) -> R) -> R {
        let result = mutate(Arc::make_mut(&mut self.snapshot));
        self.cache.clear();
        result
    }

    /// Explicitly drops every cached view (e.g. after out-of-band mutation
    /// of state the policy epoch cannot observe).
    pub fn invalidate_views(&self) {
        self.cache.clear();
    }

    /// Number of views currently cached.
    #[must_use]
    pub fn cached_views(&self) -> usize {
        self.cache.len()
    }

    /// Number of established subject sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.lock().expect("session table poisoned").len()
    }

    /// The session for `identity`, establishing it (one handshake) on first
    /// contact.
    fn session_for(&self, identity: &str) -> Arc<Mutex<ChannelSession>> {
        let mut table = self.sessions.lock().expect("session table poisoned");
        if let Some(session) = table.get(identity) {
            self.metrics.session_reuses.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(session);
        }
        let session = Arc::new(Mutex::new(ChannelSession::establish(
            &self.snapshot.session_key,
            identity,
            self.snapshot.channel_protected,
        )));
        self.metrics
            .sessions_established
            .fetch_add(1, Ordering::Relaxed);
        table.insert(identity.to_string(), Arc::clone(&session));
        session
    }

    /// Serves one request: session lookup (handshake only on first
    /// contact), the four-layer evaluation with the policy-view cache
    /// plugged in, and metrics accounting.
    pub fn serve(&self, request: &QueryRequest) -> Result<QueryResponse, Error> {
        let session = self.session_for(&request.subject_profile().identity);
        let result = {
            let mut guard = session.lock().expect("session poisoned");
            self.snapshot.execute_in_session(
                request,
                &mut guard,
                &mut |stack, profile, name, doc| self.cache.view_for(stack, profile, name, doc),
            )
        };
        self.metrics.record_outcome(&result);
        result
    }

    /// Serves a batch of requests across `workers` threads sharing the
    /// snapshot. Results are positional: `out[i]` answers `requests[i]`,
    /// and every response is byte-identical to what a serial
    /// [`StackServer::serve`] loop would produce.
    pub fn serve_batch(
        &self,
        requests: &[QueryRequest],
        workers: usize,
    ) -> Vec<Result<QueryResponse, Error>> {
        let workers = workers.max(1).min(requests.len().max(1));
        let next = AtomicUsize::new(0);
        let mut out: Vec<Option<Result<QueryResponse, Error>>> = Vec::new();
        out.resize_with(requests.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= requests.len() {
                                break;
                            }
                            local.push((i, self.serve(&requests[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                let local = handle.join().expect("worker panicked");
                for (i, result) in local {
                    out[i] = Some(result);
                }
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every index was assigned to a worker"))
            .collect()
    }

    /// A consistent snapshot of the cumulative serving statistics.
    #[must_use]
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::mls::{Clearance, ContextLabel, Level};
    use websec_policy::{
        Authorization, ObjectSpec, Privilege, SubjectProfile, SubjectSpec,
    };
    use websec_xml::Path;

    fn stack() -> SecureWebStack {
        let mut s = SecureWebStack::new([8u8; 32]);
        s.add_document(
            "h.xml",
            Document::parse(
                "<hospital><patient id=\"p1\"><name>Alice</name></patient><admin><budget>9</budget></admin></hospital>",
            )
            .unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        s.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity("doctor".into()),
            ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            },
            Privilege::Read,
        ));
        s
    }

    fn doctor_request() -> QueryRequest {
        QueryRequest::for_doc("h.xml")
            .path(Path::parse("//patient").unwrap())
            .subject(&SubjectProfile::new("doctor"))
            .clearance(Clearance(Level::Unclassified))
    }

    #[test]
    fn serve_reuses_session_and_cache() {
        let server = StackServer::new(stack());
        let first = server.serve(&doctor_request()).unwrap();
        assert_eq!(first.cache, CacheStatus::Miss);
        for _ in 0..9 {
            let again = server.serve(&doctor_request()).unwrap();
            assert_eq!(again.cache, CacheStatus::Hit);
            assert_eq!(again.xml, first.xml);
        }
        let m = server.metrics();
        assert_eq!(m.requests, 10);
        assert_eq!(m.sessions_established, 1);
        assert_eq!(m.session_reuses, 9);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 9);
        assert!(m.cache_hit_rate() > 0.89);
        assert_eq!(server.session_count(), 1);
        assert_eq!(server.cached_views(), 1);
        assert_eq!(m.latency.count, 10);
        assert!(m.latency.mean_ns() > 0.0);
        assert!(m.latency.quantile_upper_ns(0.5) > 0);
    }

    #[test]
    fn update_invalidates_views_and_epoch_keys_cache() {
        let mut server = StackServer::new(stack());
        let before = server.serve(&doctor_request()).unwrap();
        assert!(before.xml.contains("Alice"));
        assert_eq!(server.cached_views(), 1);
        let epoch_before = server.snapshot().policies.epoch();
        server.update(|s| {
            s.policies.add(Authorization::deny(
                0,
                SubjectSpec::Identity("doctor".into()),
                ObjectSpec::Document("h.xml".into()),
                Privilege::Read,
            ));
        });
        assert!(server.snapshot().policies.epoch() > epoch_before);
        assert_eq!(server.cached_views(), 0, "stale views evicted");
        let after = server.serve(&doctor_request()).unwrap();
        assert_eq!(after.cache, CacheStatus::Miss, "view recomputed");
        assert!(!after.xml.contains("Alice"), "{}", after.xml);
    }

    #[test]
    fn batch_results_are_positional() {
        let server = StackServer::new(stack());
        let requests: Vec<QueryRequest> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    doctor_request()
                } else {
                    QueryRequest::for_doc("nope.xml")
                        .path(Path::parse("//x").unwrap())
                        .subject(&SubjectProfile::new("doctor"))
                }
            })
            .collect();
        let results = server.serve_batch(&requests, 8);
        assert_eq!(results.len(), 64);
        for (i, result) in results.iter().enumerate() {
            if i % 2 == 0 {
                assert!(result.as_ref().unwrap().xml.contains("Alice"));
            } else {
                assert_eq!(result.as_ref().unwrap_err().code(), "WS101");
            }
        }
        let m = server.metrics();
        assert_eq!(m.requests, 64);
        assert_eq!(m.allowed, 32);
        assert_eq!(m.errors, 32);
    }
}
