//! Security-aware query processing (§3.1 of the paper).
//!
//! "We need to examine the security impact on all of the web data
//! management functions… query processing algorithms may need to take into
//! consideration the access control policies."
//!
//! Two strategies with identical semantics but different cost profiles:
//!
//! * **view-first** — materialize the subject's authorized view, then run
//!   the query on it (simple; pays full view cost even for selective
//!   queries);
//! * **filter-after** — run the query on the raw document, then keep only
//!   hits whose entire subtree the subject may read (cheap for selective
//!   queries; never leaks, because results are re-checked node by node).
//!
//! The equivalence of the two is asserted by integration property tests;
//! their cost difference is the query-processing "security impact" the
//! paper asks about.

use websec_policy::{DocumentDecision, PolicyEngine, PolicyStore, Privilege, SubjectProfile};
use websec_xml::{Document, Path};

/// Evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStrategy {
    /// Materialize the view, then query it.
    ViewFirst,
    /// Query the raw document, then filter hits by per-node decisions.
    FilterAfter,
}

/// A secure query processor bound to one policy base.
pub struct SecureQueryProcessor<'a> {
    /// The policy base.
    pub store: &'a PolicyStore,
    /// The evaluation engine.
    pub engine: PolicyEngine,
}

/// One query result: the matched subtree serialized from the authorized
/// view (so partially-readable subtrees appear pruned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureHit {
    /// XML of the authorized portion of the matched subtree.
    pub xml: String,
}

impl<'a> SecureQueryProcessor<'a> {
    /// Creates a processor.
    #[must_use]
    pub fn new(store: &'a PolicyStore, engine: PolicyEngine) -> Self {
        SecureQueryProcessor { store, engine }
    }

    /// Runs `path` over `doc` for `profile` under the chosen strategy.
    #[must_use]
    pub fn query(
        &self,
        profile: &SubjectProfile,
        doc_name: &str,
        doc: &Document,
        path: &Path,
        strategy: QueryStrategy,
    ) -> Vec<SecureHit> {
        match strategy {
            QueryStrategy::ViewFirst => {
                let view = self.engine.compute_view(self.store, profile, doc_name, doc);
                // The view keeps unauthorized *ancestors* as structural
                // shells (Author-X path visibility); those must not count
                // as query results. Node ids are stable across pruning, so
                // the per-node decision filters them out.
                let decision = self.engine.evaluate_document(
                    self.store,
                    profile,
                    doc_name,
                    doc,
                    Privilege::Read,
                );
                path.select_nodes(&view)
                    .into_iter()
                    .filter(|&n| decision.is_allowed(n))
                    .map(|n| SecureHit {
                        xml: subtree_xml(&view, n),
                    })
                    .collect()
            }
            QueryStrategy::FilterAfter => {
                let decision = self.engine.evaluate_document(
                    self.store,
                    profile,
                    doc_name,
                    doc,
                    Privilege::Read,
                );
                // A hit is returned iff the matched node itself is
                // readable; its subtree is pruned to the readable portion
                // (matching what the view would contain).
                let hits = path.select_nodes(doc);
                hits.into_iter()
                    .filter(|&n| decision.is_allowed(n))
                    .map(|n| SecureHit {
                        xml: pruned_subtree_xml(doc, n, &decision),
                    })
                    .collect()
            }
        }
    }
}

/// Serializes the subtree at `node` of an (already pruned) view.
fn subtree_xml(view: &Document, node: websec_xml::NodeId) -> String {
    emit(view, node)
}

/// Serializes the subtree at `node` of the raw document, omitting nodes
/// and attributes the decision forbids.
fn pruned_subtree_xml(doc: &Document, node: websec_xml::NodeId, decision: &DocumentDecision) -> String {
    let mut out = String::new();
    emit_filtered(doc, node, decision, &mut out);
    out
}

fn emit(doc: &Document, node: websec_xml::NodeId) -> String {
    let mut out = String::new();
    emit_all(doc, node, &mut out);
    out
}

fn emit_all(doc: &Document, node: websec_xml::NodeId, out: &mut String) {
    match doc.kind(node) {
        websec_xml::NodeKind::Text(t) => out.push_str(&websec_xml::node::escape_text(t)),
        websec_xml::NodeKind::Element { name, attributes } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attributes {
                out.push_str(&format!(" {k}=\"{}\"", websec_xml::node::escape_attr(v)));
            }
            let children: Vec<_> = doc.children(node).collect();
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    emit_all(doc, c, out);
                }
                out.push_str(&format!("</{name}>"));
            }
        }
    }
}

fn emit_filtered(
    doc: &Document,
    node: websec_xml::NodeId,
    decision: &DocumentDecision,
    out: &mut String,
) {
    if !decision.is_allowed(node) {
        return;
    }
    match doc.kind(node) {
        websec_xml::NodeKind::Text(t) => out.push_str(&websec_xml::node::escape_text(t)),
        websec_xml::NodeKind::Element { name, attributes } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attributes {
                if decision.attr_allowed(node, k) {
                    out.push_str(&format!(" {k}=\"{}\"", websec_xml::node::escape_attr(v)));
                }
            }
            let children: Vec<_> = doc
                .children(node)
                .filter(|&c| decision.is_allowed(c))
                .collect();
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    emit_filtered(doc, c, decision, out);
                }
                out.push_str(&format!("</{name}>"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::{Authorization, ObjectSpec, SubjectSpec};

    fn setup() -> (PolicyStore, Document) {
        let mut store = PolicyStore::new();
        store.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
        store.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient/@ssn").unwrap(),
            }).privilege(Privilege::Read).deny());
        let doc = Document::parse(
            "<hospital>\
               <patient id=\"p1\" ssn=\"123\"><name>Alice</name></patient>\
               <patient id=\"p2\" ssn=\"456\"><name>Bob</name></patient>\
               <admin><budget>9</budget></admin>\
             </hospital>",
        )
        .unwrap();
        (store, doc)
    }

    #[test]
    fn strategies_agree() {
        let (store, doc) = setup();
        let processor = SecureQueryProcessor::new(&store, PolicyEngine::default());
        let profile = SubjectProfile::new("u");
        for q in ["//patient", "//name", "/hospital/admin", "//patient[@id='p2']"] {
            let path = Path::parse(q).unwrap();
            let a = processor.query(&profile, "h.xml", &doc, &path, QueryStrategy::ViewFirst);
            let b = processor.query(&profile, "h.xml", &doc, &path, QueryStrategy::FilterAfter);
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn hits_prune_denied_attributes() {
        let (store, doc) = setup();
        let processor = SecureQueryProcessor::new(&store, PolicyEngine::default());
        let profile = SubjectProfile::new("u");
        let path = Path::parse("//patient[@id='p1']").unwrap();
        let hits = processor.query(&profile, "h.xml", &doc, &path, QueryStrategy::FilterAfter);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].xml.contains("Alice"), "{}", hits[0].xml);
        assert!(!hits[0].xml.contains("ssn"), "{}", hits[0].xml);
    }

    #[test]
    fn unauthorized_region_yields_no_hits() {
        let (store, doc) = setup();
        let processor = SecureQueryProcessor::new(&store, PolicyEngine::default());
        let profile = SubjectProfile::new("u");
        let path = Path::parse("//budget").unwrap();
        for strategy in [QueryStrategy::ViewFirst, QueryStrategy::FilterAfter] {
            assert!(processor
                .query(&profile, "h.xml", &doc, &path, strategy)
                .is_empty());
        }
    }
}
