//! Secure interoperability of web databases (§5 of the paper).
//!
//! "Researchers have done some work on the secure interoperability of
//! databases. We need to revisit this research and then determine what else
//! needs to be done so that the information on the web can be managed,
//! integrated and exchanged securely."
//!
//! A [`Federation`] integrates several autonomous **sites**, each with its
//! own document store and its own policy base. Federated queries fan out to
//! every site; each site enforces *its own* policies before returning
//! anything (autonomy — the federation never sees more than any single site
//! would release), and results are merged with site provenance attached.

use crate::query::{QueryStrategy, SecureHit, SecureQueryProcessor};
use websec_policy::{PolicyEngine, PolicyStore, SubjectProfile};
use websec_xml::{DocumentStore, Path};

/// One autonomous site: a store plus its own policy base and engine.
pub struct Site {
    /// Site name (provenance label).
    pub name: String,
    /// The site's documents.
    pub documents: DocumentStore,
    /// The site's own policy base — never shared with the federation.
    pub policies: PolicyStore,
    /// The site's evaluation engine (sites may differ in conflict
    /// strategy).
    pub engine: PolicyEngine,
}

impl Site {
    /// Creates an empty site with the default engine.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Site {
            name: name.to_string(),
            documents: DocumentStore::new(),
            policies: PolicyStore::new(),
            engine: PolicyEngine::default(),
        }
    }

    /// Answers a federated query locally: every document is queried under
    /// this site's own policies.
    #[must_use]
    pub fn answer(&self, profile: &SubjectProfile, path: &Path) -> Vec<FederatedHit> {
        let processor = SecureQueryProcessor::new(&self.policies, self.engine);
        let mut out = Vec::new();
        for doc_name in self.documents.names() {
            let doc = self.documents.get(doc_name).expect("listed name exists");
            for hit in processor.query(profile, doc_name, doc, path, QueryStrategy::FilterAfter) {
                out.push(FederatedHit {
                    site: self.name.clone(),
                    document: doc_name.to_string(),
                    hit,
                });
            }
        }
        out
    }
}

/// A federated result with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FederatedHit {
    /// Originating site.
    pub site: String,
    /// Originating document.
    pub document: String,
    /// The (authorized portion of the) matched subtree.
    pub hit: SecureHit,
}

/// A federation of autonomous sites.
#[derive(Default)]
pub struct Federation {
    sites: Vec<Site>,
}

impl Federation {
    /// Creates an empty federation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a site.
    pub fn add_site(&mut self, site: Site) {
        self.sites.push(site);
    }

    /// Number of member sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when no sites joined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Federated query: fans out to every site; each site applies its own
    /// policies; results carry provenance.
    #[must_use]
    pub fn query(&self, profile: &SubjectProfile, path: &Path) -> Vec<FederatedHit> {
        self.sites
            .iter()
            .flat_map(|s| s.answer(profile, path))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::{Authorization, ObjectSpec, Privilege, SubjectSpec};
    use websec_xml::Document;

    fn federation() -> Federation {
        let mut fed = Federation::new();

        // Site A: grants its patients to researchers.
        let mut a = Site::new("hospital-a");
        a.documents.insert(
            "ward.xml",
            Document::parse("<ward><patient><name>Alice</name></patient></ward>").unwrap(),
        );
        a.policies.add(Authorization::for_subject(SubjectSpec::Identity("researcher".into())).on(ObjectSpec::Document("ward.xml".into())).privilege(Privilege::Read).grant());
        fed.add_site(a);

        // Site B: grants nothing to researchers, everything to its admin.
        let mut b = Site::new("hospital-b");
        b.documents.insert(
            "ward.xml",
            Document::parse("<ward><patient><name>Bob</name></patient></ward>").unwrap(),
        );
        b.policies.add(Authorization::for_subject(SubjectSpec::Identity("b-admin".into())).on(ObjectSpec::Document("ward.xml".into())).privilege(Privilege::Read).grant());
        fed.add_site(b);
        fed
    }

    #[test]
    fn site_autonomy_respected() {
        let fed = federation();
        let path = Path::parse("//patient").unwrap();
        // The researcher sees only site A's patient.
        let hits = fed.query(&SubjectProfile::new("researcher"), &path);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].site, "hospital-a");
        assert!(hits[0].hit.xml.contains("Alice"));
        // Site B's admin sees only site B's patient.
        let hits = fed.query(&SubjectProfile::new("b-admin"), &path);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].site, "hospital-b");
        assert!(hits[0].hit.xml.contains("Bob"));
    }

    #[test]
    fn federated_union_for_multi_site_subject() {
        let mut fed = federation();
        // A subject granted at both sites sees the union; sites remain the
        // enforcement points.
        for site in &mut fed.sites {
            site.policies.add(Authorization::for_subject(SubjectSpec::Identity("auditor".into())).on(ObjectSpec::Document("ward.xml".into())).privilege(Privilege::Read).grant());
        }
        let hits = fed.query(
            &SubjectProfile::new("auditor"),
            &Path::parse("//patient").unwrap(),
        );
        assert_eq!(hits.len(), 2);
        let sites: Vec<&str> = hits.iter().map(|h| h.site.as_str()).collect();
        assert!(sites.contains(&"hospital-a") && sites.contains(&"hospital-b"));
    }

    #[test]
    fn stranger_sees_nothing_anywhere() {
        let fed = federation();
        let hits = fed.query(
            &SubjectProfile::new("stranger"),
            &Path::parse("//patient").unwrap(),
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn provenance_includes_document() {
        let fed = federation();
        let hits = fed.query(
            &SubjectProfile::new("researcher"),
            &Path::parse("//name").unwrap(),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].document, "ward.xml");
    }
}
