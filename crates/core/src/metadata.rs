//! Metadata management for web databases (§2.1 of the paper).
//!
//! "Metadata describes all of the information pertaining to a data source.
//! This could include the various web sites, the types of users, access
//! control issues, and policies enforced. Where should the metadata be
//! located? Should each participating site maintain its own metadata?
//! Should the metadata be replicated or should there be a centralized
//! metadata repository?" — and: "We need efficient metadata management
//! techniques for the web as well as **use metadata to enhance security**."
//!
//! [`MetadataRepository`] implements the three placements the paper asks
//! about — centralized, per-site, replicated — behind one lookup API, with
//! probe counting (the efficiency question) and staleness detection for
//! replicas (the consistency cost of replication). Security enhancement:
//! lookups can be pre-filtered by clearance against the stored label, so a
//! subject never even learns of documents beyond its clearance.

use std::collections::BTreeMap;
use websec_policy::mls::{Clearance, ContextLabel, SecurityContext};

/// Metadata describing one document at one site.
#[derive(Debug, Clone)]
pub struct DocumentMeta {
    /// Document name.
    pub document: String,
    /// Hosting site.
    pub site: String,
    /// Content type (e.g. "xml", "rdf").
    pub content_type: String,
    /// Security label (metadata enhances security: pre-filtering).
    pub label: ContextLabel,
    /// Number of policies attached (advisory).
    pub policy_count: usize,
    /// Logical update epoch of this record.
    pub epoch: u64,
}

/// Placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One central catalog.
    Centralized,
    /// Each site keeps only its own records; lookups probe every site.
    PerSite,
    /// Every site keeps a full copy, synchronized lazily.
    Replicated,
}

/// The repository, parameterized by placement.
pub struct MetadataRepository {
    placement: Placement,
    /// site → (document → meta). Centralized uses the synthetic site "".
    stores: BTreeMap<String, BTreeMap<String, DocumentMeta>>,
    sites: Vec<String>,
    master_epoch: u64,
    probes: u64,
}

impl MetadataRepository {
    /// Creates a repository over the given sites.
    #[must_use]
    pub fn new(placement: Placement, sites: &[&str]) -> Self {
        let mut stores = BTreeMap::new();
        match placement {
            Placement::Centralized => {
                stores.insert(String::new(), BTreeMap::new());
            }
            Placement::PerSite | Placement::Replicated => {
                for s in sites {
                    stores.insert((*s).to_string(), BTreeMap::new());
                }
            }
        }
        MetadataRepository {
            placement,
            stores,
            sites: sites.iter().map(|s| (*s).to_string()).collect(),
            master_epoch: 0,
            probes: 0,
        }
    }

    /// Registers (or updates) metadata. For replicated placement, only the
    /// *owning* site's replica is updated eagerly; others go stale until
    /// [`Self::sync`].
    pub fn register(&mut self, mut meta: DocumentMeta) {
        self.master_epoch += 1;
        meta.epoch = self.master_epoch;
        match self.placement {
            Placement::Centralized => {
                self.stores
                    .get_mut("")
                    .expect("central store")
                    .insert(meta.document.clone(), meta);
            }
            Placement::PerSite | Placement::Replicated => {
                let site = meta.site.clone();
                assert!(
                    self.stores.contains_key(&site),
                    "unknown site '{site}'"
                );
                self.stores
                    .get_mut(&site)
                    .expect("site checked above")
                    .insert(meta.document.clone(), meta);
            }
        }
    }

    /// Propagates records to all replicas (replicated placement only).
    pub fn sync(&mut self) {
        if self.placement != Placement::Replicated {
            return;
        }
        // Gather the newest record per document across replicas.
        let mut newest: BTreeMap<String, DocumentMeta> = BTreeMap::new();
        for store in self.stores.values() {
            for meta in store.values() {
                let replace = newest
                    .get(&meta.document)
                    .is_none_or(|m| m.epoch < meta.epoch);
                if replace {
                    newest.insert(meta.document.clone(), meta.clone());
                }
            }
        }
        for store in self.stores.values_mut() {
            for meta in newest.values() {
                store.insert(meta.document.clone(), meta.clone());
            }
        }
    }

    /// Looks up a document's metadata, counting the site probes required.
    pub fn lookup(&mut self, document: &str) -> Option<DocumentMeta> {
        match self.placement {
            Placement::Centralized => {
                self.probes += 1;
                self.stores[""].get(document).cloned()
            }
            Placement::PerSite => {
                // Must probe sites until found (no routing knowledge).
                for site in &self.sites {
                    self.probes += 1;
                    if let Some(m) = self.stores[site].get(document) {
                        return Some(m.clone());
                    }
                }
                None
            }
            Placement::Replicated => {
                // Any single replica answers (probe the first site).
                self.probes += 1;
                let first = self.sites.first()?;
                self.stores[first].get(document).cloned()
            }
        }
    }

    /// Total probes performed so far (the efficiency metric).
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Documents whose replica record is stale (older than the master
    /// epoch of that document anywhere) — the consistency cost of
    /// replication.
    #[must_use]
    pub fn stale_replicas(&self) -> usize {
        if self.placement != Placement::Replicated {
            return 0;
        }
        let mut newest: BTreeMap<&str, u64> = BTreeMap::new();
        for store in self.stores.values() {
            for meta in store.values() {
                let e = newest.entry(meta.document.as_str()).or_insert(0);
                *e = (*e).max(meta.epoch);
            }
        }
        let mut stale = 0;
        for store in self.stores.values() {
            for meta in store.values() {
                if meta.epoch < newest[meta.document.as_str()] {
                    stale += 1;
                }
            }
            // Missing records count as stale too.
            stale += newest.len().saturating_sub(store.len());
        }
        stale
    }

    /// Security-enhancing lookup: only returns metadata the subject's
    /// clearance dominates — documents above clearance are invisible even
    /// as names ("use metadata to enhance security").
    pub fn lookup_cleared(
        &mut self,
        document: &str,
        clearance: Clearance,
        context: &SecurityContext,
    ) -> Option<DocumentMeta> {
        let meta = self.lookup(document)?;
        if meta.label.effective(context) <= clearance.0 {
            Some(meta)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::mls::Level;

    fn meta(doc: &str, site: &str, level: Level) -> DocumentMeta {
        DocumentMeta {
            document: doc.to_string(),
            site: site.to_string(),
            content_type: "xml".into(),
            label: ContextLabel::fixed(level),
            policy_count: 3,
            epoch: 0,
        }
    }

    #[test]
    fn centralized_single_probe() {
        let mut repo = MetadataRepository::new(Placement::Centralized, &["a", "b", "c"]);
        repo.register(meta("d1", "a", Level::Unclassified));
        repo.register(meta("d2", "c", Level::Unclassified));
        assert!(repo.lookup("d2").is_some());
        assert_eq!(repo.probes(), 1);
    }

    #[test]
    fn per_site_probes_grow_with_sites() {
        let mut repo = MetadataRepository::new(Placement::PerSite, &["a", "b", "c"]);
        repo.register(meta("d1", "c", Level::Unclassified)); // lives at the last site
        assert!(repo.lookup("d1").is_some());
        assert_eq!(repo.probes(), 3); // probed a, b, then found at c
        assert!(repo.lookup("missing").is_none());
        assert_eq!(repo.probes(), 6);
    }

    #[test]
    fn replicated_single_probe_after_sync() {
        let mut repo = MetadataRepository::new(Placement::Replicated, &["a", "b"]);
        repo.register(meta("d1", "b", Level::Unclassified));
        // Before sync, replica "a" is stale/missing.
        assert_eq!(repo.stale_replicas(), 1);
        assert!(repo.lookup("d1").is_none()); // probed replica "a" only
        repo.sync();
        assert_eq!(repo.stale_replicas(), 0);
        assert!(repo.lookup("d1").is_some());
        assert_eq!(repo.probes(), 2); // one probe per lookup
    }

    #[test]
    fn replication_update_staleness() {
        let mut repo = MetadataRepository::new(Placement::Replicated, &["a", "b"]);
        repo.register(meta("d1", "a", Level::Unclassified));
        repo.sync();
        // Update at site a; replica b now stale.
        repo.register(meta("d1", "a", Level::Secret));
        assert_eq!(repo.stale_replicas(), 1);
        repo.sync();
        assert_eq!(repo.stale_replicas(), 0);
    }

    #[test]
    fn cleared_lookup_hides_classified() {
        let mut repo = MetadataRepository::new(Placement::Centralized, &[]);
        repo.register(meta("secret.xml", "a", Level::Secret));
        repo.register(meta("public.xml", "a", Level::Unclassified));
        let ctx = SecurityContext::new();
        let public = Clearance(Level::Unclassified);
        assert!(repo.lookup_cleared("public.xml", public, &ctx).is_some());
        assert!(repo.lookup_cleared("secret.xml", public, &ctx).is_none());
        assert!(repo
            .lookup_cleared("secret.xml", Clearance(Level::Secret), &ctx)
            .is_some());
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn per_site_requires_known_site() {
        let mut repo = MetadataRepository::new(Placement::PerSite, &["a"]);
        repo.register(meta("d1", "zz", Level::Unclassified));
    }
}
