//! Multimedia data management (§2.1 of the paper).
//!
//! "Appropriate index strategies and access methods for handling multimedia
//! data are needed. In addition, due to the large volumes of data,
//! techniques for integrating database management technology with mass
//! storage technology are also needed."
//!
//! Large binary objects (images, scans, recordings) do not live in the XML
//! tree; documents carry `blobRef` attributes pointing into a
//! content-addressed [`BlobStore`]. Content addressing gives integrity for
//! free (the reference *is* the digest); blobs are sealed at rest with
//! per-blob keys derived from a store master key; and
//! [`fetch_authorized`] gates retrieval on the XML-level access decision
//! for the referencing element, so multimedia inherits the document's
//! policy without duplicating it.

use websec_crypto::sha256::{sha256, Digest};
use websec_crypto::{hkdf, hmac_sha256, ChaCha20};
use websec_policy::{PolicyEngine, PolicyStore, Privilege, SubjectProfile};
use websec_xml::{Document, NodeId};
use std::collections::BTreeMap;

/// The attribute linking an element to its blob.
pub const BLOB_REF_ATTR: &str = "blobRef";

/// A content address: hex SHA-256 of the plaintext.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlobRef(pub String);

impl BlobRef {
    fn of(content: &[u8]) -> Self {
        let d = sha256(content);
        BlobRef(d.iter().map(|b| format!("{b:02x}")).collect())
    }

    fn digest(&self) -> Option<Digest> {
        if self.0.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&self.0[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(out)
    }
}

/// Blob retrieval errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// No blob under this reference.
    NotFound,
    /// Stored bytes fail their MAC or digest check (corruption/tampering).
    IntegrityFailure,
    /// The subject may not read the referencing element.
    AccessDenied,
    /// The element carries no (valid) blob reference.
    NoReference,
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlobError::NotFound => write!(f, "blob not found"),
            BlobError::IntegrityFailure => write!(f, "blob failed integrity verification"),
            BlobError::AccessDenied => write!(f, "access to the referencing element denied"),
            BlobError::NoReference => write!(f, "element has no blob reference"),
        }
    }
}

impl std::error::Error for BlobError {}

struct SealedBlob {
    nonce: [u8; 12],
    ciphertext: Vec<u8>,
    mac: [u8; 32],
}

/// Content-addressed, sealed-at-rest blob storage.
pub struct BlobStore {
    master: [u8; 32],
    blobs: BTreeMap<BlobRef, SealedBlob>,
}

impl BlobStore {
    /// Creates a store sealing blobs under `master`.
    #[must_use]
    pub fn new(master: [u8; 32]) -> Self {
        BlobStore {
            master,
            blobs: BTreeMap::new(),
        }
    }

    fn keys_for(&self, reference: &BlobRef) -> ([u8; 32], [u8; 32]) {
        let okm = hkdf(b"blob-store", &self.master, reference.0.as_bytes(), 64);
        let mut enc = [0u8; 32];
        let mut mac = [0u8; 32];
        enc.copy_from_slice(&okm[..32]);
        mac.copy_from_slice(&okm[32..]);
        (enc, mac)
    }

    /// Stores `content`, returning its content address. Idempotent.
    pub fn put(&mut self, content: &[u8]) -> BlobRef {
        let reference = BlobRef::of(content);
        if self.blobs.contains_key(&reference) {
            return reference;
        }
        let (enc, mac_key) = self.keys_for(&reference);
        // Content addressing makes the nonce derivable from the reference.
        let nonce_bytes = hkdf(b"blob-nonce", &self.master, reference.0.as_bytes(), 12);
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&nonce_bytes);
        let mut ciphertext = content.to_vec();
        ChaCha20::new(&enc, &nonce, 1).apply(&mut ciphertext);
        let mut mac_input = nonce.to_vec();
        mac_input.extend_from_slice(&ciphertext);
        let mac = hmac_sha256(&mac_key, &mac_input);
        self.blobs.insert(
            reference.clone(),
            SealedBlob {
                nonce,
                ciphertext,
                mac,
            },
        );
        reference
    }

    /// Retrieves and verifies a blob: MAC first, then the content address.
    pub fn get(&self, reference: &BlobRef) -> Result<Vec<u8>, BlobError> {
        let sealed = self.blobs.get(reference).ok_or(BlobError::NotFound)?;
        let (enc, mac_key) = self.keys_for(reference);
        let mut mac_input = sealed.nonce.to_vec();
        mac_input.extend_from_slice(&sealed.ciphertext);
        let expected = hmac_sha256(&mac_key, &mac_input);
        if !websec_crypto::ct_eq(&expected, &sealed.mac) {
            return Err(BlobError::IntegrityFailure);
        }
        let mut plaintext = sealed.ciphertext.clone();
        ChaCha20::new(&enc, &sealed.nonce, 1).apply(&mut plaintext);
        // Content address re-check (defense in depth).
        let digest = reference.digest().ok_or(BlobError::IntegrityFailure)?;
        if sha256(&plaintext) != digest {
            return Err(BlobError::IntegrityFailure);
        }
        Ok(plaintext)
    }

    /// Number of stored blobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when no blobs are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Test hook: corrupts a stored blob's ciphertext.
    #[cfg(test)]
    fn corrupt(&mut self, reference: &BlobRef) {
        if let Some(s) = self.blobs.get_mut(reference) {
            s.ciphertext[0] ^= 1;
        }
    }
}

/// Attaches a blob to `element`: stores the content and records the
/// reference on the element.
pub fn attach_blob(
    doc: &mut Document,
    element: NodeId,
    store: &mut BlobStore,
    content: &[u8],
) -> BlobRef {
    let reference = store.put(content);
    doc.set_attribute(element, BLOB_REF_ATTR, &reference.0);
    reference
}

/// Fetches the blob referenced by `element`, but only if the subject may
/// read that element under the document's policies — multimedia inherits
/// the XML-level decision.
pub fn fetch_authorized(
    store: &BlobStore,
    policies: &PolicyStore,
    engine: &PolicyEngine,
    profile: &SubjectProfile,
    doc_name: &str,
    doc: &Document,
    element: NodeId,
) -> Result<Vec<u8>, BlobError> {
    let decision = engine.evaluate_document(policies, profile, doc_name, doc, Privilege::Read);
    if !decision.is_allowed(element) || !decision.attr_allowed(element, BLOB_REF_ATTR) {
        return Err(BlobError::AccessDenied);
    }
    let reference = doc
        .attribute(element, BLOB_REF_ATTR)
        .map(|s| BlobRef(s.to_string()))
        .ok_or(BlobError::NoReference)?;
    store.get(&reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::{Authorization, ObjectSpec, SubjectSpec};
    use websec_xml::Path;

    #[test]
    fn put_get_roundtrip() {
        let mut store = BlobStore::new([1u8; 32]);
        let scan = b"binary MRI scan bytes \x00\x01\x02".to_vec();
        let r = store.put(&scan);
        assert_eq!(store.get(&r).unwrap(), scan);
        // Idempotent put.
        let r2 = store.put(&scan);
        assert_eq!(r, r2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sealed_at_rest() {
        let mut store = BlobStore::new([2u8; 32]);
        let content = b"confidential image".to_vec();
        let r = store.put(&content);
        let sealed = &store.blobs[&r];
        assert_ne!(sealed.ciphertext, content);
    }

    #[test]
    fn corruption_detected() {
        let mut store = BlobStore::new([3u8; 32]);
        let r = store.put(b"data");
        store.corrupt(&r);
        assert_eq!(store.get(&r).unwrap_err(), BlobError::IntegrityFailure);
    }

    #[test]
    fn missing_blob() {
        let store = BlobStore::new([4u8; 32]);
        assert_eq!(
            store.get(&BlobRef("0".repeat(64))).unwrap_err(),
            BlobError::NotFound
        );
    }

    #[test]
    fn policy_gated_fetch() {
        let mut store = BlobStore::new([5u8; 32]);
        let mut doc = Document::parse(
            "<hospital><patient id=\"p1\"><scan/></patient></hospital>",
        )
        .unwrap();
        let scan_el = Path::parse("//scan").unwrap().select_nodes(&doc)[0];
        attach_blob(&mut doc, scan_el, &mut store, b"MRI bytes");

        let mut policies = PolicyStore::new();
        policies.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Document("h.xml".into())).privilege(Privilege::Read).grant());
        let engine = PolicyEngine::default();

        let doctor = SubjectProfile::new("doctor");
        let bytes = fetch_authorized(
            &store, &policies, &engine, &doctor, "h.xml", &doc, scan_el,
        )
        .unwrap();
        assert_eq!(bytes, b"MRI bytes");

        let stranger = SubjectProfile::new("stranger");
        assert_eq!(
            fetch_authorized(&store, &policies, &engine, &stranger, "h.xml", &doc, scan_el)
                .unwrap_err(),
            BlobError::AccessDenied
        );
    }

    #[test]
    fn attribute_level_denial_blocks_blob() {
        let mut store = BlobStore::new([6u8; 32]);
        let mut doc = Document::parse("<r><media/></r>").unwrap();
        let media = Path::parse("//media").unwrap().select_nodes(&doc)[0];
        attach_blob(&mut doc, media, &mut store, b"video");

        let mut policies = PolicyStore::new();
        policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("d".into())).privilege(Privilege::Read).grant());
        // Deny the reference attribute itself: metadata visible, blob not.
        policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Portion {
                document: "d".into(),
                path: Path::parse("//media/@blobRef").unwrap(),
            }).privilege(Privilege::Read).deny());
        let engine = PolicyEngine::default();
        assert_eq!(
            fetch_authorized(
                &store,
                &policies,
                &engine,
                &SubjectProfile::new("u"),
                "d",
                &doc,
                media
            )
            .unwrap_err(),
            BlobError::AccessDenied
        );
    }

    #[test]
    fn element_without_reference() {
        let store = BlobStore::new([7u8; 32]);
        let doc = Document::parse("<r><media/></r>").unwrap();
        let media = Path::parse("//media").unwrap().select_nodes(&doc)[0];
        let mut policies = PolicyStore::new();
        policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::Document("d".into())).privilege(Privilege::Read).grant());
        assert_eq!(
            fetch_authorized(
                &store,
                &policies,
                &PolicyEngine::default(),
                &SubjectProfile::new("u"),
                "d",
                &doc,
                media
            )
            .unwrap_err(),
            BlobError::NoReference
        );
    }
}
