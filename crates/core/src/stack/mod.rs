//! The layered secure semantic web stack of §5.
//!
//! "For the semantic web to be secure all of its components have to be
//! secure… consider the lowest layer. One needs secure TCP/IP… Next layer
//! is XML… The next step is securing RDF… Once XML and RDF have been
//! secured the next step is to examine security for ontologies and
//! interoperation."
//!
//! [`SecureWebStack`] wires four layers around a document query:
//!
//! 1. **Channel** — the request and response transit a
//!    [`websec_services::ChannelSession`].
//! 2. **XML security** — the policy engine computes the subject's view.
//! 3. **RDF security** — document metadata (catalog triples with context
//!    labels) is consulted: a document whose effective label dominates the
//!    subject's clearance is refused entirely.
//! 4. **Flexible policy** — the enforcement-level gate decides whether the
//!    full evaluation runs (§5's "thirty percent security").
//!
//! The module is split along the read/write axis:
//!
//! * [`state`](self) (`state.rs`) — the stack's **mutable configuration**:
//!   documents, policies, labels, catalog, context, gate. Mutation happens
//!   here (and only here), so the serving layer can treat a stack value as
//!   an immutable snapshot.
//! * `eval.rs` — **read-only query evaluation**: [`SecureWebStack::execute`]
//!   takes `&self` and is safe to call from many threads at once over a
//!   shared snapshot ([`crate::server::StackServer`] does exactly that).
//!
//! Every layer is timed; [`LayerTimings`] feeds experiment E12 and
//! aggregates into [`crate::server::MetricsSnapshot`].

mod eval;
mod state;

pub use eval::LayerTimings;
pub(crate) use eval::{ResolvedView, ViewResolver};
pub use state::{vocab, SecureWebStack, StackError};
