//! Mutable configuration of the stack: documents, policies, labels,
//! catalog, context, and the enforcement gate.
//!
//! Everything that *changes* a stack lives here; read-only query
//! evaluation lives in `eval.rs`. The split is what lets the serving layer
//! hold an `Arc<SecureWebStack>` snapshot and evaluate queries from many
//! threads without locks: a snapshot is only mutated through
//! [`crate::server::StackServer::update`], which also invalidates the
//! policy-view cache.

use std::collections::{BTreeSet, HashMap};
use websec_analyzer::{AnalyzerInput, DissemInput, UddiInput};
use websec_dissem::{RegionMap, SubjectKeyring};
use websec_policy::mls::{ContextLabel, SecurityContext};
use websec_policy::{FlexibleEnforcer, PolicyEngine, PolicyStore, SubjectProfile};
use websec_privacy::PrivacyConstraint;
use websec_rdf::{PatternTerm, SecureStore, Term, Triple, TriplePattern, TripleStore};
use websec_uddi::UddiRegistry;
use websec_xml::{Document, DocumentStore};

/// Stack processing errors (legacy enum, superseded by [`crate::Error`]
/// which wraps it with stable `WS1xx` codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackError {
    /// Unknown document.
    UnknownDocument(String),
    /// The document's effective label dominates the subject's clearance.
    ClearanceViolation,
    /// Transport failure.
    Channel(String),
    /// Static analysis found error-severity misconfigurations (strict mode);
    /// carries the machine rendering of the findings.
    Misconfigured(String),
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::UnknownDocument(d) => write!(f, "unknown document '{d}'"),
            StackError::ClearanceViolation => write!(f, "document label exceeds clearance"),
            StackError::Channel(m) => write!(f, "channel failure: {m}"),
            StackError::Misconfigured(m) => write!(f, "stack misconfigured:\n{m}"),
        }
    }
}

impl std::error::Error for StackError {}

/// Metadata vocabulary for the catalog graph.
pub mod vocab {
    /// Links a catalog entry to its document name literal.
    pub const DOC_NAME: &str = "http://websec.example/cat#documentName";
    /// Marks a document classified (object: level literal "U"/"C"/"S"/"TS").
    pub const CLASSIFIED: &str = "http://websec.example/cat#classifiedAs";
}

/// The layered stack.
///
/// Cloning produces an independent snapshot — the serving layer relies on
/// this for copy-on-write mutation of a shared `Arc` snapshot.
#[derive(Clone)]
pub struct SecureWebStack {
    /// Documents under management.
    pub documents: DocumentStore,
    /// XML-layer policy base.
    pub policies: PolicyStore,
    /// XML-layer evaluation engine.
    pub engine: PolicyEngine,
    /// RDF metadata catalog: one entry per document, with labels.
    pub catalog: TripleStore,
    /// Context labels per document name (evaluated against the context).
    pub(crate) labels: HashMap<String, ContextLabel>,
    /// The evaluation context (epoch, conditions).
    pub context: SecurityContext,
    /// Flexible enforcement gate.
    pub gate: FlexibleEnforcer,
    pub(crate) session_key: [u8; 32],
    /// Toggle for the channel layer (false = plaintext transport baseline).
    pub channel_protected: bool,
    /// Named semantic (RDF) stores under management; analyzed by WS006
    /// (entailment leaks) and WS009 (their role hierarchies join the cycle
    /// check). Empty by default.
    pub semantic_stores: Vec<(String, SecureStore)>,
    /// Privacy constraints guarding tabular releases (WS004, WS007, WS010).
    pub privacy_constraints: Vec<PrivacyConstraint>,
    /// Queryable table schemas as `(table name, column names)` feeding the
    /// privacy inference passes.
    pub table_schemas: Vec<(String, Vec<String>)>,
    /// Documents whose declassification path runs through a registered
    /// sanitizer; exempt from WS010.
    pub sanitized_documents: BTreeSet<String>,
    /// Dissemination audits: each entry pairs a document partition with the
    /// key holders to audit against the current policy base (WS008).
    pub dissemination_audits: Vec<(RegionMap, Vec<(SubjectProfile, SubjectKeyring)>)>,
    /// The UDDI registry plus the set of tModel keys carrying a verified
    /// signature (WS011). `None` skips the pass.
    pub uddi: Option<(UddiRegistry, BTreeSet<String>)>,
    /// Registered subject profiles; when non-empty, WS012 flags credential
    /// types no registered subject holds.
    pub registered_profiles: Vec<SubjectProfile>,
}

impl SecureWebStack {
    /// Creates a stack at full (100%) enforcement.
    #[must_use]
    pub fn new(session_key: [u8; 32]) -> Self {
        SecureWebStack {
            documents: DocumentStore::new(),
            policies: PolicyStore::new(),
            engine: PolicyEngine::default(),
            catalog: TripleStore::new(),
            labels: HashMap::new(),
            context: SecurityContext::new(),
            gate: FlexibleEnforcer::new(100, session_key),
            session_key,
            channel_protected: true,
            semantic_stores: Vec::new(),
            privacy_constraints: Vec::new(),
            table_schemas: Vec::new(),
            sanitized_documents: BTreeSet::new(),
            dissemination_audits: Vec::new(),
            uddi: None,
            registered_profiles: Vec::new(),
        }
    }

    /// Adds a document with a context label, registering catalog metadata.
    pub fn add_document(&mut self, name: &str, doc: Document, label: ContextLabel) {
        let entry = self.catalog.fresh_blank();
        self.catalog.insert(&Triple::new(
            entry.clone(),
            Term::iri(vocab::DOC_NAME),
            Term::lit(name),
        ));
        self.catalog.insert(&Triple::new(
            entry,
            Term::iri(vocab::CLASSIFIED),
            Term::lit(&label.effective(&self.context).to_string()),
        ));
        self.labels.insert(name.to_string(), label);
        self.documents.insert(name, doc);
    }

    /// The context label registered for `name`, if any. Lookup is a hash
    /// probe — this sits on the per-request RDF-layer hot path.
    #[must_use]
    pub fn label_of(&self, name: &str) -> Option<&ContextLabel> {
        self.labels.get(name)
    }

    /// Names of catalogued documents (via the RDF layer).
    #[must_use]
    pub fn catalog_names(&self) -> Vec<String> {
        self.catalog
            .query(&TriplePattern::new(
                PatternTerm::Any,
                PatternTerm::Const(Term::iri(vocab::DOC_NAME)),
                PatternTerm::Any,
            ))
            .into_iter()
            .filter_map(|t| match t.o {
                Term::Literal(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// Builds the full [`AnalyzerInput`] over every configured layer and
    /// hands it to `f`. Closure-shaped because the input borrows from
    /// temporaries (the sorted label list, the catalog names) that must
    /// outlive the borrow; both [`SecureWebStack::analyze`] and the serving
    /// layer's incremental re-analysis funnel through here so every caller
    /// sees the same input.
    pub(crate) fn with_analyzer_input<R>(&self, f: impl FnOnce(&AnalyzerInput<'_>) -> R) -> R {
        let catalog: Vec<String> = self.catalog_names();
        let mut input = AnalyzerInput::new(&self.policies, self.engine.strategy);
        for name in self.documents.names() {
            if let Some(doc) = self.documents.get(name) {
                input.documents.push((name, doc));
            }
        }
        // Deterministic label order (the map iterates in arbitrary order).
        let mut labels: Vec<(&str, &ContextLabel)> = self
            .labels
            .iter()
            .map(|(n, l)| (n.as_str(), l))
            .collect();
        labels.sort_by_key(|(n, _)| *n);
        input.labels = labels;
        input.catalog_names = catalog.iter().map(String::as_str).collect();
        input.constraints = &self.privacy_constraints;
        input.schemas = self
            .table_schemas
            .iter()
            .map(|(t, cols)| (t.as_str(), cols.clone()))
            .collect();
        input.sanitized_documents = self.sanitized_documents.clone();
        input.rdf = self
            .semantic_stores
            .iter()
            .map(|(n, s)| (n.as_str(), s))
            .collect();
        input.rdf_context = self.context.clone();
        input.dissem = self
            .dissemination_audits
            .iter()
            .map(|(map, holders)| DissemInput {
                map,
                holders: holders.iter().map(|(p, k)| (p, k)).collect(),
            })
            .collect();
        input.uddi = self.uddi.as_ref().map(|(registry, signed)| UddiInput {
            registry,
            signed_tmodels: signed.clone(),
        });
        if !self.registered_profiles.is_empty() {
            input.registered_profiles = Some(self.registered_profiles.iter().collect());
        }
        f(&input)
    }

    /// Runs the twelve static-analysis passes (WS001–WS012) over the
    /// stack's current configuration — policy base, documents, labels,
    /// catalog, privacy constraints, semantic stores, dissemination audits,
    /// UDDI registry and subject registry — without executing any query.
    #[must_use]
    pub fn analyze(&self) -> websec_analyzer::Report {
        self.with_analyzer_input(websec_analyzer::Analyzer::analyze)
    }

    /// Strict boot gate: refuses service when [`Self::analyze`] reports any
    /// error-severity finding, returning the report otherwise.
    pub fn analyze_strict(&self) -> Result<websec_analyzer::Report, StackError> {
        let report = self.analyze();
        if report.has_errors() {
            return Err(StackError::Misconfigured(report.machine()));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::mls::Level;

    #[test]
    fn catalog_lists_documents() {
        let mut s = SecureWebStack::new([3u8; 32]);
        s.add_document(
            "h.xml",
            Document::parse("<hospital/>").unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        assert_eq!(s.catalog_names(), vec!["h.xml".to_string()]);
        assert!(s.label_of("h.xml").is_some());
        assert!(s.label_of("nope.xml").is_none());
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        let mut s = SecureWebStack::new([3u8; 32]);
        s.add_document(
            "h.xml",
            Document::parse("<hospital/>").unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        let snapshot = s.clone();
        s.add_document(
            "extra.xml",
            Document::parse("<x/>").unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        assert_eq!(snapshot.documents.len(), 1);
        assert_eq!(s.documents.len(), 2);
    }
}
