//! Read-only query evaluation over a stack snapshot.
//!
//! [`SecureWebStack::execute`] takes `&self`: it never mutates the stack,
//! so any number of threads may evaluate queries concurrently over a shared
//! snapshot. The flexible gate is consulted through its pure
//! [`websec_policy::flexible::FlexibleEnforcer::decide`] path; gate
//! *statistics* are aggregated by the serving layer
//! ([`crate::server::ServerMetrics`]) instead of mutating the stack.

use std::sync::Arc;
use std::time::Instant;

use crate::error::Error;
use crate::request::{CacheStatus, Decision, QueryRequest, QueryResponse};
use crate::stack::{SecureWebStack, StackError};
use websec_policy::mls::Clearance;
use websec_policy::SubjectProfile;
use websec_services::ChannelSession;
use websec_xml::{Document, Path};

/// Per-layer elapsed time for one request, in nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerTimings {
    /// Secure-channel transit (both directions).
    pub channel_ns: u128,
    /// RDF metadata / label checking.
    pub rdf_ns: u128,
    /// Policy evaluation and view computation.
    pub xml_ns: u128,
    /// Flexible-enforcement gating.
    pub gate_ns: u128,
    /// Time spent inside the compiled decision tables
    /// ([`websec_policy::CompiledPolicies`]) while resolving the view.
    /// This is an *attribution within* [`LayerTimings::xml_ns`], not an
    /// additional layer, so [`LayerTimings::total_ns`] does not include it.
    pub compile_ns: u128,
}

impl LayerTimings {
    /// Total time across layers. `compile_ns` is an attribution inside
    /// `xml_ns` and is deliberately not added again.
    #[must_use]
    pub fn total_ns(&self) -> u128 {
        self.channel_ns + self.rdf_ns + self.xml_ns + self.gate_ns
    }
}

/// The outcome of view resolution: the authorized view plus how it was
/// produced — which cache level served it, whether the compiled decision
/// tables (rather than the interpreting engine) computed it, and how long
/// the compiled tables took.
pub(crate) struct ResolvedView {
    pub(crate) view: Arc<Document>,
    pub(crate) cache: CacheStatus,
    /// True when the view came out of [`websec_policy::CompiledPolicies`]
    /// decision tables on this request (always false on cache hits — the
    /// stored view's provenance is not re-reported).
    pub(crate) compiled: bool,
    /// Nanoseconds spent inside the compiled tables (0 on the interpreted
    /// path).
    pub(crate) compile_ns: u128,
}

/// Resolves the subject's view of a document, reporting whether a cache
/// served it. The serving layer plugs its token-checked L1/L2 caches in
/// here; the direct [`SecureWebStack::execute`] path uses [`FreshViews`],
/// which always computes.
pub(crate) trait ViewResolver {
    fn resolve(
        &mut self,
        stack: &SecureWebStack,
        profile: &SubjectProfile,
        doc_name: &str,
        doc: &Document,
    ) -> ResolvedView;
}

/// The cacheless resolver: recomputes the view on every request.
pub(crate) struct FreshViews;

impl ViewResolver for FreshViews {
    fn resolve(
        &mut self,
        stack: &SecureWebStack,
        profile: &SubjectProfile,
        doc_name: &str,
        doc: &Document,
    ) -> ResolvedView {
        ResolvedView {
            view: Arc::new(
                stack.engine.compute_view(&stack.policies, profile, doc_name, doc),
            ),
            cache: CacheStatus::Bypass,
            compiled: false,
            compile_ns: 0,
        }
    }
}

/// The request key fed to the flexible-enforcement gate (stable across the
/// legacy shim and the new API so gating decisions agree).
pub(crate) fn gate_key(identity: &str, doc_name: &str, path: &Path) -> String {
    format!("{identity}|{doc_name}|{}", path.source())
}

impl SecureWebStack {
    /// Processes one request through all four layers.
    ///
    /// This is the sessionless convenience path: it performs a one-shot
    /// channel handshake and computes the subject's view without caching.
    /// Production traffic should go through a
    /// [`crate::server::StackServer`], which reuses one session per subject
    /// and caches policy views across requests.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, Error> {
        let mut session = ChannelSession::establish(
            &self.session_key,
            &request.subject_profile().identity,
            self.channel_protected,
        );
        self.execute_in_session(request, &mut session, &mut FreshViews)
    }

    /// The full evaluation pipeline over an established session, with view
    /// resolution delegated to `resolver` (the serving layer's cache hook).
    pub(crate) fn execute_in_session(
        &self,
        request: &QueryRequest,
        session: &mut ChannelSession,
        resolver: &mut impl ViewResolver,
    ) -> Result<QueryResponse, Error> {
        let path = request
            .query_path()
            .ok_or_else(|| Error::InvalidRequest("query path not set".into()))?;
        let profile = request.subject_profile();
        let doc_name = request.doc_name();
        let mut timings = LayerTimings::default();

        // Layer 1 (inbound): the query transits the established session.
        let t = Instant::now();
        let _query_bytes = session.transit_to_server(path.source().as_bytes())?;
        timings.channel_ns += t.elapsed().as_nanos();

        // Layer 4 gate first: is this request fully enforced?
        let t = Instant::now();
        let key = gate_key(&profile.identity, doc_name, path);
        let enforce = matches!(
            self.gate.decide(key.as_bytes()),
            websec_policy::flexible::GateOutcome::Enforce
        );
        timings.gate_ns += t.elapsed().as_nanos();

        // Layer 3: RDF metadata — label vs clearance.
        let t = Instant::now();
        if enforce {
            if let Some(label) = self.label_of(doc_name) {
                if !request.clearance_level().can_read(label, &self.context) {
                    return Err(Error::ClearanceViolation);
                }
            }
        }
        timings.rdf_ns += t.elapsed().as_nanos();

        // Layer 2: XML security — view resolution and query.
        let t = Instant::now();
        let doc = self
            .documents
            .get(doc_name)
            .ok_or_else(|| Error::UnknownDocument(doc_name.to_string()))?;
        let (result_xml, cache, compiled) = if enforce {
            let resolved = resolver.resolve(self, profile, doc_name, doc);
            timings.compile_ns += resolved.compile_ns;
            let view = resolved.view;
            let matched = path.select_nodes(&view);
            let xml = matched
                .iter()
                .map(|&n| view.subtree_xml(n))
                .collect::<Vec<_>>()
                .join("");
            (xml, resolved.cache, resolved.compiled)
        } else {
            // Unchecked fast path: raw query on the stored document.
            let xml = path
                .select_nodes(doc)
                .iter()
                .map(|&n| String::from_utf8_lossy(&doc.canonical_bytes(n)).to_string())
                .collect::<Vec<_>>()
                .join("");
            (xml, CacheStatus::Bypass, false)
        };
        timings.xml_ns += t.elapsed().as_nanos();

        // Layer 1 (outbound): response transits the session.
        let t = Instant::now();
        let received = session.transit_to_client(result_xml.as_bytes())?;
        timings.channel_ns += t.elapsed().as_nanos();

        let text = String::from_utf8(received)
            .map_err(|_| Error::Channel("response not UTF-8".into()))?;
        Ok(QueryResponse {
            xml: text,
            decision: if enforce {
                Decision::Enforced
            } else {
                Decision::AdmittedUnchecked
            },
            cache,
            compiled,
            timings,
        })
    }

    /// Processes one query through all four layers, returning the view's
    /// XML plus the per-layer timings.
    #[deprecated(
        since = "0.1.0",
        note = "build a QueryRequest and call SecureWebStack::execute (or serve \
                through server::StackServer); this positional shim will be \
                removed next release"
    )]
    pub fn query(
        &mut self,
        profile: &SubjectProfile,
        clearance: Clearance,
        doc_name: &str,
        path: &Path,
    ) -> Result<(String, LayerTimings), StackError> {
        // Preserve the legacy gate statistics (`gate.exposure()`): the
        // stateful gate() records the same outcome decide() returns inside
        // execute().
        let key = gate_key(&profile.identity, doc_name, path);
        let _ = self.gate.gate(key.as_bytes());
        let request = QueryRequest::for_doc(doc_name)
            .path(path.clone())
            .subject(profile)
            .clearance(clearance);
        match self.execute(&request) {
            Ok(response) => Ok((response.xml, response.timings)),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::mls::{ContextLabel, Level, SecurityContext};
    use websec_policy::{
        Authorization, FlexibleEnforcer, ObjectSpec, Privilege, SubjectSpec,
    };

    fn stack() -> SecureWebStack {
        let mut s = SecureWebStack::new([3u8; 32]);
        let doc = Document::parse(
            "<hospital><patient id=\"p1\"><name>Alice</name></patient><admin><budget>9</budget></admin></hospital>",
        )
        .unwrap();
        s.add_document("h.xml", doc, ContextLabel::fixed(Level::Unclassified));
        s.policies.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
        s
    }

    fn request(identity: &str, clearance: Clearance, doc: &str, path: &str) -> QueryRequest {
        QueryRequest::for_doc(doc)
            .path(Path::parse(path).unwrap())
            .subject(&SubjectProfile::new(identity))
            .clearance(clearance)
    }

    #[test]
    fn query_through_all_layers() {
        let s = stack();
        let response = s
            .execute(&request(
                "doctor",
                Clearance(Level::Unclassified),
                "h.xml",
                "//patient",
            ))
            .unwrap();
        assert!(response.xml.contains("Alice"), "{}", response.xml);
        assert!(!response.xml.contains("budget"), "{}", response.xml);
        assert_eq!(response.decision, Decision::Enforced);
        assert!(response.timings.total_ns() > 0);
    }

    #[test]
    fn policy_denies_unauthorized_subject() {
        let s = stack();
        let response = s
            .execute(&request(
                "stranger",
                Clearance(Level::Unclassified),
                "h.xml",
                "//patient",
            ))
            .unwrap();
        assert!(!response.xml.contains("Alice"), "{}", response.xml);
    }

    #[test]
    fn clearance_violation_blocks() {
        let mut s = SecureWebStack::new([3u8; 32]);
        s.add_document(
            "secret.xml",
            Document::parse("<ops><plan>x</plan></ops>").unwrap(),
            ContextLabel::fixed(Level::Secret),
        );
        s.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::AllDocuments).privilege(Privilege::Read).grant());
        let err = s
            .execute(&request(
                "public",
                Clearance(Level::Unclassified),
                "secret.xml",
                "//plan",
            ))
            .unwrap_err();
        assert_eq!(err, Error::ClearanceViolation);
        assert_eq!(err.code(), "WS102");
        // A cleared analyst gets through.
        assert!(s
            .execute(&request(
                "analyst",
                Clearance(Level::Secret),
                "secret.xml",
                "//plan",
            ))
            .is_ok());
    }

    #[test]
    fn declassification_at_the_stack_level() {
        let mut s = SecureWebStack::new([4u8; 32]);
        s.add_document(
            "war.xml",
            Document::parse("<ops><plan>x</plan></ops>").unwrap(),
            ContextLabel::fixed(Level::Secret).unless_condition("wartime", Level::Unclassified),
        );
        s.policies.add(Authorization::for_subject(SubjectSpec::Anyone).on(ObjectSpec::AllDocuments).privilege(Privilege::Read).grant());
        s.context = SecurityContext::new().with_condition("wartime");
        let req = request(
            "journalist",
            Clearance(Level::Unclassified),
            "war.xml",
            "//plan",
        );
        assert_eq!(s.execute(&req).unwrap_err(), Error::ClearanceViolation);
        // The war ends; the same query now succeeds.
        s.context = SecurityContext::new();
        assert!(s.execute(&req).is_ok());
    }

    #[test]
    fn unknown_document_error() {
        let s = stack();
        let err = s
            .execute(&request(
                "doctor",
                Clearance(Level::TopSecret),
                "nope.xml",
                "//x",
            ))
            .unwrap_err();
        assert_eq!(err, Error::UnknownDocument("nope.xml".into()));
        assert_eq!(err.code(), "WS101");
    }

    #[test]
    fn missing_path_is_invalid_request() {
        let s = stack();
        let err = s.execute(&QueryRequest::for_doc("h.xml")).unwrap_err();
        assert_eq!(err.code(), "WS105");
    }

    #[test]
    fn reduced_enforcement_skips_checks() {
        let mut s = stack();
        s.gate = FlexibleEnforcer::new(0, [3u8; 32]);
        // At 0% enforcement even a stranger gets the fast path (exposure!).
        let response = s
            .execute(&request(
                "stranger",
                Clearance(Level::Unclassified),
                "h.xml",
                "//patient",
            ))
            .unwrap();
        assert!(response.xml.contains("Alice"), "{}", response.xml);
        assert_eq!(response.decision, Decision::AdmittedUnchecked);
        assert_eq!(response.cache, CacheStatus::Bypass);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_new_api() {
        let mut s = stack();
        let path = Path::parse("//patient").unwrap();
        let profile = SubjectProfile::new("doctor");
        let (legacy_xml, legacy_timings) = s
            .query(&profile, Clearance(Level::Unclassified), "h.xml", &path)
            .unwrap();
        let response = s
            .execute(
                &QueryRequest::for_doc("h.xml")
                    .path(path)
                    .subject(&profile)
                    .clearance(Clearance(Level::Unclassified)),
            )
            .unwrap();
        assert_eq!(legacy_xml, response.xml);
        assert!(legacy_timings.total_ns() > 0);
        // The shim still feeds the legacy gate statistics.
        let (enforced, _) = s.gate.stats();
        assert_eq!(enforced, 1);
    }
}
