//! The trust layer (§5 of the paper).
//!
//! "Note that logic, proof and trust are at the highest layers of the
//! semantic web." Everything below this module verifies *signatures*; this
//! module answers the question those verifications defer: **whose keys do
//! we believe in the first place?**
//!
//! A [`TrustStore`] holds directly-trusted root keys (configured out of
//! band) and accepts further keys through signed [`Voucher`] chains: a
//! trusted introducer signs a statement binding a name to a key; the
//! vouched key may (up to a depth bound) introduce further keys. This is
//! the minimal web-of-trust needed for requestors to bootstrap provider
//! keys in the third-party UDDI architecture without a global PKI.

use std::collections::BTreeMap;
use websec_crypto::sig::{self, Keypair, PublicKey, SignError, Signature};

/// A signed introduction: `introducer` asserts that `subject_name`'s key
/// is `subject_key`.
#[derive(Debug, Clone)]
pub struct Voucher {
    /// Name of the introducing party (key looked up in the trust store or
    /// earlier in the chain).
    pub introducer: String,
    /// Name being introduced.
    pub subject_name: String,
    /// Key being introduced.
    pub subject_key: PublicKey,
    /// Signature over [`voucher_message`].
    pub signature: Signature,
}

/// The byte string an introducer signs.
#[must_use]
pub fn voucher_message(introducer: &str, subject_name: &str, subject_key: &PublicKey) -> Vec<u8> {
    let mut msg = b"websec-trust-voucher-v1:".to_vec();
    msg.extend_from_slice(&(introducer.len() as u32).to_le_bytes());
    msg.extend_from_slice(introducer.as_bytes());
    msg.extend_from_slice(&(subject_name.len() as u32).to_le_bytes());
    msg.extend_from_slice(subject_name.as_bytes());
    msg.extend_from_slice(&subject_key.root);
    msg.extend_from_slice(&(subject_key.n_keys as u64).to_le_bytes());
    msg
}

/// Issues a voucher: `introducer_keypair` signs the binding.
pub fn issue_voucher(
    introducer: &str,
    introducer_keypair: &mut Keypair,
    subject_name: &str,
    subject_key: PublicKey,
) -> Result<Voucher, SignError> {
    let msg = voucher_message(introducer, subject_name, &subject_key);
    Ok(Voucher {
        introducer: introducer.to_string(),
        subject_name: subject_name.to_string(),
        subject_key,
        signature: introducer_keypair.sign(&msg)?,
    })
}

/// Why a chain was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrustError {
    /// The chain's first introducer is not a trusted root.
    UntrustedRoot(String),
    /// A voucher signature failed under the introducer's (established) key.
    BadVoucher {
        /// The failing introducer.
        introducer: String,
    },
    /// A voucher's introducer does not match the previous link's subject.
    BrokenChain,
    /// The chain exceeds the configured depth bound.
    TooDeep {
        /// Configured maximum.
        max_depth: usize,
    },
    /// The chain does not terminate at the claimed name/key.
    WrongSubject,
}

impl std::fmt::Display for TrustError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrustError::UntrustedRoot(r) => write!(f, "'{r}' is not a trusted root"),
            TrustError::BadVoucher { introducer } => {
                write!(f, "invalid voucher from '{introducer}'")
            }
            TrustError::BrokenChain => write!(f, "voucher chain is not contiguous"),
            TrustError::TooDeep { max_depth } => {
                write!(f, "chain exceeds maximum depth {max_depth}")
            }
            TrustError::WrongSubject => write!(f, "chain does not introduce the claimed subject"),
        }
    }
}

impl std::error::Error for TrustError {}

/// A requestor's trust configuration.
pub struct TrustStore {
    roots: BTreeMap<String, PublicKey>,
    /// Maximum voucher-chain length accepted.
    pub max_depth: usize,
}

impl TrustStore {
    /// Creates a store with the given chain-depth bound.
    #[must_use]
    pub fn new(max_depth: usize) -> Self {
        TrustStore {
            roots: BTreeMap::new(),
            max_depth,
        }
    }

    /// Directly trusts `name`'s key (out-of-band configuration).
    pub fn trust_root(&mut self, name: &str, key: PublicKey) {
        self.roots.insert(name.to_string(), key);
    }

    /// Is `key` directly trusted for `name`?
    #[must_use]
    pub fn is_root(&self, name: &str, key: &PublicKey) -> bool {
        self.roots.get(name).is_some_and(|k| k == key)
    }

    /// Validates that `chain` establishes `(subject_name, subject_key)`:
    /// the first voucher must come from a trusted root; every subsequent
    /// voucher must be signed by the previous link's subject; the final
    /// link must introduce the claimed subject. A directly-trusted subject
    /// needs no chain.
    pub fn establish(
        &self,
        subject_name: &str,
        subject_key: &PublicKey,
        chain: &[Voucher],
    ) -> Result<(), TrustError> {
        if self.is_root(subject_name, subject_key) {
            return Ok(());
        }
        if chain.is_empty() {
            return Err(TrustError::UntrustedRoot(subject_name.to_string()));
        }
        if chain.len() > self.max_depth {
            return Err(TrustError::TooDeep {
                max_depth: self.max_depth,
            });
        }
        // The first introducer must be a configured root.
        let first = &chain[0];
        let mut current_key = self
            .roots
            .get(&first.introducer)
            .ok_or_else(|| TrustError::UntrustedRoot(first.introducer.clone()))?
            .to_owned();
        let mut current_name = first.introducer.clone();

        for voucher in chain {
            if voucher.introducer != current_name {
                return Err(TrustError::BrokenChain);
            }
            let msg = voucher_message(
                &voucher.introducer,
                &voucher.subject_name,
                &voucher.subject_key,
            );
            if !sig::verify(&current_key, &msg, &voucher.signature) {
                return Err(TrustError::BadVoucher {
                    introducer: voucher.introducer.clone(),
                });
            }
            current_name = voucher.subject_name.clone();
            current_key = voucher.subject_key;
        }

        if current_name == subject_name && &current_key == subject_key {
            Ok(())
        } else {
            Err(TrustError::WrongSubject)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_crypto::SecureRng;

    fn keypair(seed: u64) -> Keypair {
        Keypair::generate(&mut SecureRng::seeded(seed), 2)
    }

    #[test]
    fn direct_root_trusted() {
        let kp = keypair(1);
        let mut store = TrustStore::new(3);
        store.trust_root("ca", kp.public_key());
        assert!(store.establish("ca", &kp.public_key(), &[]).is_ok());
    }

    #[test]
    fn unknown_subject_needs_chain() {
        let kp = keypair(2);
        let store = TrustStore::new(3);
        assert_eq!(
            store.establish("someone", &kp.public_key(), &[]).unwrap_err(),
            TrustError::UntrustedRoot("someone".into())
        );
    }

    #[test]
    fn single_hop_voucher() {
        let mut ca = keypair(3);
        let provider = keypair(4);
        let mut store = TrustStore::new(3);
        store.trust_root("ca", ca.public_key());
        let voucher = issue_voucher("ca", &mut ca, "acme", provider.public_key()).unwrap();
        assert!(store
            .establish("acme", &provider.public_key(), &[voucher])
            .is_ok());
    }

    #[test]
    fn two_hop_chain() {
        let mut ca = keypair(5);
        let mut intermediate = keypair(6);
        let provider = keypair(7);
        let mut store = TrustStore::new(3);
        store.trust_root("ca", ca.public_key());
        let v1 = issue_voucher("ca", &mut ca, "regional", intermediate.public_key()).unwrap();
        let v2 =
            issue_voucher("regional", &mut intermediate, "acme", provider.public_key()).unwrap();
        assert!(store
            .establish("acme", &provider.public_key(), &[v1, v2])
            .is_ok());
    }

    #[test]
    fn depth_bound_enforced() {
        let mut ca = keypair(8);
        let mut a = keypair(9);
        let mut b = keypair(10);
        let c = keypair(11);
        let mut store = TrustStore::new(2);
        store.trust_root("ca", ca.public_key());
        let v1 = issue_voucher("ca", &mut ca, "a", a.public_key()).unwrap();
        let v2 = issue_voucher("a", &mut a, "b", b.public_key()).unwrap();
        let v3 = issue_voucher("b", &mut b, "c", c.public_key()).unwrap();
        assert_eq!(
            store
                .establish("c", &c.public_key(), &[v1, v2, v3])
                .unwrap_err(),
            TrustError::TooDeep { max_depth: 2 }
        );
    }

    #[test]
    fn forged_voucher_rejected() {
        let mut ca = keypair(12);
        let mut rogue = keypair(13);
        let provider = keypair(14);
        let mut store = TrustStore::new(3);
        store.trust_root("ca", ca.public_key());
        // The rogue signs a voucher claiming to be the CA.
        let mut voucher =
            issue_voucher("ca", &mut rogue, "acme", provider.public_key()).unwrap();
        assert_eq!(
            store
                .establish("acme", &provider.public_key(), &[voucher.clone()])
                .unwrap_err(),
            TrustError::BadVoucher {
                introducer: "ca".into()
            }
        );
        // A genuine voucher for a *different* key also fails the claim.
        voucher = issue_voucher("ca", &mut ca, "acme", rogue.public_key()).unwrap();
        assert_eq!(
            store
                .establish("acme", &provider.public_key(), &[voucher])
                .unwrap_err(),
            TrustError::WrongSubject
        );
    }

    #[test]
    fn broken_chain_rejected() {
        let mut ca = keypair(15);
        let mut other = keypair(16);
        let provider = keypair(17);
        let mut store = TrustStore::new(3);
        store.trust_root("ca", ca.public_key());
        let v1 = issue_voucher("ca", &mut ca, "regional", other.public_key()).unwrap();
        // Second link claims a different introducer name than link 1's
        // subject.
        let v2 = issue_voucher("someone-else", &mut other, "acme", provider.public_key())
            .unwrap();
        assert_eq!(
            store
                .establish("acme", &provider.public_key(), &[v1, v2])
                .unwrap_err(),
            TrustError::BrokenChain
        );
    }
}
