//! The layered secure semantic web stack of §5.
//!
//! "For the semantic web to be secure all of its components have to be
//! secure… consider the lowest layer. One needs secure TCP/IP… Next layer
//! is XML… The next step is securing RDF… Once XML and RDF have been
//! secured the next step is to examine security for ontologies and
//! interoperation."
//!
//! [`SecureWebStack`] wires four layers around a document query:
//!
//! 1. **Channel** — the request and response transit a [`SecureChannel`].
//! 2. **XML security** — the policy engine computes the subject's view.
//! 3. **RDF security** — document metadata (catalog triples with context
//!    labels) is consulted: a document whose effective label dominates the
//!    subject's clearance is refused entirely.
//! 4. **Flexible policy** — the enforcement-level gate decides whether the
//!    full evaluation runs (§5's "thirty percent security").
//!
//! Every layer is timed; [`LayerTimings`] feeds experiment E12.

use std::time::Instant;
use websec_policy::mls::{Clearance, ContextLabel, SecurityContext};
use websec_policy::{FlexibleEnforcer, PolicyEngine, PolicyStore, SubjectProfile};
use websec_rdf::{PatternTerm, Term, Triple, TriplePattern, TripleStore};
use websec_services::SecureChannel;
use websec_xml::{Document, DocumentStore, Path};

/// Per-layer elapsed time for one request, in nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerTimings {
    /// Secure-channel transit (both directions).
    pub channel_ns: u128,
    /// RDF metadata / label checking.
    pub rdf_ns: u128,
    /// Policy evaluation and view computation.
    pub xml_ns: u128,
    /// Flexible-enforcement gating.
    pub gate_ns: u128,
}

impl LayerTimings {
    /// Total time across layers.
    #[must_use]
    pub fn total_ns(&self) -> u128 {
        self.channel_ns + self.rdf_ns + self.xml_ns + self.gate_ns
    }
}

/// Stack processing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackError {
    /// Unknown document.
    UnknownDocument(String),
    /// The document's effective label dominates the subject's clearance.
    ClearanceViolation,
    /// Transport failure.
    Channel(String),
    /// Static analysis found error-severity misconfigurations (strict mode);
    /// carries the machine rendering of the findings.
    Misconfigured(String),
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::UnknownDocument(d) => write!(f, "unknown document '{d}'"),
            StackError::ClearanceViolation => write!(f, "document label exceeds clearance"),
            StackError::Channel(m) => write!(f, "channel failure: {m}"),
            StackError::Misconfigured(m) => write!(f, "stack misconfigured:\n{m}"),
        }
    }
}

impl std::error::Error for StackError {}

/// Metadata vocabulary for the catalog graph.
pub mod vocab {
    /// Links a catalog entry to its document name literal.
    pub const DOC_NAME: &str = "http://websec.example/cat#documentName";
    /// Marks a document classified (object: level literal "U"/"C"/"S"/"TS").
    pub const CLASSIFIED: &str = "http://websec.example/cat#classifiedAs";
}

/// The layered stack.
pub struct SecureWebStack {
    /// Documents under management.
    pub documents: DocumentStore,
    /// XML-layer policy base.
    pub policies: PolicyStore,
    /// XML-layer evaluation engine.
    pub engine: PolicyEngine,
    /// RDF metadata catalog: one entry per document, with labels.
    pub catalog: TripleStore,
    /// Context labels per document name (evaluated against the context).
    labels: Vec<(String, ContextLabel)>,
    /// The evaluation context (epoch, conditions).
    pub context: SecurityContext,
    /// Flexible enforcement gate.
    pub gate: FlexibleEnforcer,
    session_key: [u8; 32],
    /// Toggle for the channel layer (false = plaintext transport baseline).
    pub channel_protected: bool,
}

impl SecureWebStack {
    /// Creates a stack at full (100%) enforcement.
    #[must_use]
    pub fn new(session_key: [u8; 32]) -> Self {
        SecureWebStack {
            documents: DocumentStore::new(),
            policies: PolicyStore::new(),
            engine: PolicyEngine::default(),
            catalog: TripleStore::new(),
            labels: Vec::new(),
            context: SecurityContext::new(),
            gate: FlexibleEnforcer::new(100, session_key),
            session_key,
            channel_protected: true,
        }
    }

    /// Adds a document with a context label, registering catalog metadata.
    pub fn add_document(&mut self, name: &str, doc: Document, label: ContextLabel) {
        let entry = self.catalog.fresh_blank();
        self.catalog.insert(&Triple::new(
            entry.clone(),
            Term::iri(vocab::DOC_NAME),
            Term::lit(name),
        ));
        self.catalog.insert(&Triple::new(
            entry,
            Term::iri(vocab::CLASSIFIED),
            Term::lit(&label.effective(&self.context).to_string()),
        ));
        self.labels.push((name.to_string(), label));
        self.documents.insert(name, doc);
    }

    /// Names of catalogued documents (via the RDF layer).
    #[must_use]
    pub fn catalog_names(&self) -> Vec<String> {
        self.catalog
            .query(&TriplePattern::new(
                PatternTerm::Any,
                PatternTerm::Const(Term::iri(vocab::DOC_NAME)),
                PatternTerm::Any,
            ))
            .into_iter()
            .filter_map(|t| match t.o {
                Term::Literal(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// Runs the five static-analysis passes (WS001–WS005) over the stack's
    /// current configuration — policy base, documents, labels and catalog —
    /// without executing any query.
    #[must_use]
    pub fn analyze(&self) -> websec_analyzer::Report {
        let catalog: Vec<String> = self.catalog_names();
        let mut input =
            websec_analyzer::AnalyzerInput::new(&self.policies, self.engine.strategy);
        for name in self.documents.names() {
            if let Some(doc) = self.documents.get(name) {
                input.documents.push((name, doc));
            }
        }
        for (name, label) in &self.labels {
            input.labels.push((name.as_str(), label));
        }
        input.catalog_names = catalog.iter().map(String::as_str).collect();
        websec_analyzer::Analyzer::analyze(&input)
    }

    /// Strict boot gate: refuses service when [`Self::analyze`] reports any
    /// error-severity finding, returning the report otherwise.
    pub fn analyze_strict(&self) -> Result<websec_analyzer::Report, StackError> {
        let report = self.analyze();
        if report.has_errors() {
            return Err(StackError::Misconfigured(report.machine()));
        }
        Ok(report)
    }

    /// Processes one query through all four layers, returning the view's
    /// XML plus the per-layer timings.
    pub fn query(
        &mut self,
        profile: &SubjectProfile,
        clearance: Clearance,
        doc_name: &str,
        path: &Path,
    ) -> Result<(String, LayerTimings), StackError> {
        let mut timings = LayerTimings::default();

        // Layer 1 (inbound): the query transits the secure channel.
        let t = Instant::now();
        let mut client = SecureChannel::new(&self.session_key, self.channel_protected);
        let mut server = SecureChannel::new(&self.session_key, self.channel_protected);
        let wire = client.seal(path.source().as_bytes());
        let _query_bytes = server
            .open(&wire)
            .map_err(|e| StackError::Channel(e.to_string()))?;
        timings.channel_ns += t.elapsed().as_nanos();

        // Layer 4 gate first: is this request fully enforced?
        let t = Instant::now();
        let gate_key = format!("{}|{}|{}", profile.identity, doc_name, path.source());
        let enforce = matches!(
            self.gate.gate(gate_key.as_bytes()),
            websec_policy::flexible::GateOutcome::Enforce
        );
        timings.gate_ns += t.elapsed().as_nanos();

        // Layer 3: RDF metadata — label vs clearance.
        let t = Instant::now();
        if enforce {
            if let Some((_, label)) = self.labels.iter().find(|(n, _)| n == doc_name) {
                if !clearance.can_read(label, &self.context) {
                    return Err(StackError::ClearanceViolation);
                }
            }
        }
        timings.rdf_ns += t.elapsed().as_nanos();

        // Layer 2: XML security — view computation and query.
        let t = Instant::now();
        let doc = self
            .documents
            .get(doc_name)
            .ok_or_else(|| StackError::UnknownDocument(doc_name.to_string()))?;
        let result_xml = if enforce {
            let view = self
                .engine
                .compute_view(&self.policies, profile, doc_name, doc);
            let matched = path.select_nodes(&view);
            matched
                .iter()
                .map(|&n| {
                    let mut sub = view.clone();
                    // Serialize the matched subtree only.
                    let keep: std::collections::HashSet<_> =
                        view.descendants(n).into_iter().collect();
                    sub = sub.prune_to_view(&keep, &std::collections::HashMap::new());
                    sub.to_xml_string()
                })
                .collect::<Vec<_>>()
                .join("")
        } else {
            // Unchecked fast path: raw query on the stored document.
            path.select_nodes(doc)
                .iter()
                .map(|&n| String::from_utf8_lossy(&doc.canonical_bytes(n)).to_string())
                .collect::<Vec<_>>()
                .join("")
        };
        timings.xml_ns += t.elapsed().as_nanos();

        // Layer 1 (outbound): response transits the channel.
        let t = Instant::now();
        let mut server_tx = SecureChannel::new(&self.session_key, self.channel_protected);
        let mut client_rx = SecureChannel::new(&self.session_key, self.channel_protected);
        let wire = server_tx.seal(result_xml.as_bytes());
        let received = client_rx
            .open(&wire)
            .map_err(|e| StackError::Channel(e.to_string()))?;
        timings.channel_ns += t.elapsed().as_nanos();

        let text = String::from_utf8(received)
            .map_err(|_| StackError::Channel("response not UTF-8".into()))?;
        Ok((text, timings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::mls::Level;
    use websec_policy::{Authorization, ObjectSpec, Privilege, SubjectSpec};

    fn stack() -> SecureWebStack {
        let mut s = SecureWebStack::new([3u8; 32]);
        let doc = Document::parse(
            "<hospital><patient id=\"p1\"><name>Alice</name></patient><admin><budget>9</budget></admin></hospital>",
        )
        .unwrap();
        s.add_document("h.xml", doc, ContextLabel::fixed(Level::Unclassified));
        s.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity("doctor".into()),
            ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            },
            Privilege::Read,
        ));
        s
    }

    #[test]
    fn query_through_all_layers() {
        let mut s = stack();
        let path = Path::parse("//patient").unwrap();
        let (xml, timings) = s
            .query(
                &SubjectProfile::new("doctor"),
                Clearance(Level::Unclassified),
                "h.xml",
                &path,
            )
            .unwrap();
        assert!(xml.contains("Alice"), "{xml}");
        assert!(!xml.contains("budget"), "{xml}");
        assert!(timings.total_ns() > 0);
    }

    #[test]
    fn policy_denies_unauthorized_subject() {
        let mut s = stack();
        let path = Path::parse("//patient").unwrap();
        let (xml, _) = s
            .query(
                &SubjectProfile::new("stranger"),
                Clearance(Level::Unclassified),
                "h.xml",
                &path,
            )
            .unwrap();
        assert!(!xml.contains("Alice"), "{xml}");
    }

    #[test]
    fn clearance_violation_blocks() {
        let mut s = SecureWebStack::new([3u8; 32]);
        s.add_document(
            "secret.xml",
            Document::parse("<ops><plan>x</plan></ops>").unwrap(),
            ContextLabel::fixed(Level::Secret),
        );
        s.policies.add(Authorization::grant(
            0,
            SubjectSpec::Anyone,
            ObjectSpec::AllDocuments,
            Privilege::Read,
        ));
        let path = Path::parse("//plan").unwrap();
        let err = s
            .query(
                &SubjectProfile::new("public"),
                Clearance(Level::Unclassified),
                "secret.xml",
                &path,
            )
            .unwrap_err();
        assert_eq!(err, StackError::ClearanceViolation);
        // A cleared analyst gets through.
        assert!(s
            .query(
                &SubjectProfile::new("analyst"),
                Clearance(Level::Secret),
                "secret.xml",
                &path,
            )
            .is_ok());
    }

    #[test]
    fn declassification_at_the_stack_level() {
        let mut s = SecureWebStack::new([4u8; 32]);
        s.add_document(
            "war.xml",
            Document::parse("<ops><plan>x</plan></ops>").unwrap(),
            ContextLabel::fixed(Level::Secret).unless_condition("wartime", Level::Unclassified),
        );
        s.policies.add(Authorization::grant(
            0,
            SubjectSpec::Anyone,
            ObjectSpec::AllDocuments,
            Privilege::Read,
        ));
        s.context = SecurityContext::new().with_condition("wartime");
        let path = Path::parse("//plan").unwrap();
        let journalist = SubjectProfile::new("journalist");
        assert_eq!(
            s.query(&journalist, Clearance(Level::Unclassified), "war.xml", &path)
                .unwrap_err(),
            StackError::ClearanceViolation
        );
        // The war ends; the same query now succeeds.
        s.context = SecurityContext::new();
        assert!(s
            .query(&journalist, Clearance(Level::Unclassified), "war.xml", &path)
            .is_ok());
    }

    #[test]
    fn unknown_document_error() {
        let mut s = stack();
        let path = Path::parse("//x").unwrap();
        assert_eq!(
            s.query(
                &SubjectProfile::new("doctor"),
                Clearance(Level::TopSecret),
                "nope.xml",
                &path,
            )
            .unwrap_err(),
            StackError::UnknownDocument("nope.xml".into())
        );
    }

    #[test]
    fn catalog_lists_documents() {
        let s = stack();
        assert_eq!(s.catalog_names(), vec!["h.xml".to_string()]);
    }

    #[test]
    fn reduced_enforcement_skips_checks() {
        let mut s = stack();
        s.gate = FlexibleEnforcer::new(0, [3u8; 32]);
        let path = Path::parse("//patient").unwrap();
        // At 0% enforcement even a stranger gets the fast path (exposure!).
        let (xml, _) = s
            .query(
                &SubjectProfile::new("stranger"),
                Clearance(Level::Unclassified),
                "h.xml",
                &path,
            )
            .unwrap();
        assert!(xml.contains("Alice"), "{xml}");
        assert!(s.gate.exposure() > 0.99);
    }
}
