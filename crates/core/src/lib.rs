//! # websec-core
//!
//! The facade of the `websec` workspace: a from-scratch reproduction of the
//! systems inventoried in *Ferrari & Thuraisingham, "Security and Privacy
//! for Web Databases and Services", EDBT 2004*.
//!
//! Re-exports every subsystem crate and provides:
//!
//! * [`stack`] — the layered **secure semantic web stack** of §5 ("security
//!   cuts across all layers… one needs secure TCP/IP… next layer is XML…
//!   the next step is securing RDF"), with per-layer instrumentation (E12),
//!   split into mutable configuration and read-only evaluation;
//! * [`server`] — the **sharded concurrent serving layer**: per-subject
//!   channel sessions and a two-level token-checked policy-view cache,
//!   both sharded by identity hash; lock-free batch execution
//!   ([`server::StackServer::serve_batch`] over a [`BatchRequest`]) with
//!   per-worker work-stealing deques, a shared overflow injector, and
//!   precomputed request coalescing; observable through
//!   [`server::MetricsSnapshot`] and per-batch [`server::BatchStats`];
//! * [`request`] — the [`QueryRequest`]/[`QueryResponse`] API every query
//!   flows through;
//! * [`error`] — the unified [`Error`] with stable `WS1xx` codes;
//! * [`faults`] — deterministic **fault injection** ([`FaultPlan`] rules
//!   firing on seeded schedules at the channel/shard/cache/eval layers)
//!   plus client-facing resilience policies: [`RetryPolicy`] backoff over
//!   a logical clock, per-request deadline budgets (`WS107`), and
//!   admission-control load shedding (`WS108`);
//! * [`query`] — security-aware query processing (§3.1: "query processing
//!   algorithms may need to take into consideration the access control
//!   policies"), with view-first and filter-after strategies;
//! * [`federation`] — secure interoperability of autonomous sites (§5),
//!   each enforcing its own policy base;
//! * [`metadata`] — the §2.1 metadata-placement question (centralized vs
//!   per-site vs replicated) with probe/staleness accounting, and
//!   clearance-filtered lookups ("use metadata to enhance security");
//! * [`trust`] — the §5 trust layer: voucher chains establishing provider
//!   keys from configured roots ("logic, proof and trust are at the
//!   highest layers of the semantic web");
//! * [`blobs`] — §2.1 multimedia/mass-storage integration: a
//!   content-addressed, sealed-at-rest blob store whose retrieval is gated
//!   by the XML-level access decision of the referencing element;
//! * [`sync`] — the **concurrency-correctness layer**: instrumented
//!   [`sync::TrackedMutex`]/[`sync::TrackedRwLock`]/`TrackedAtomic*`
//!   wrappers feeding a lockdep-style lock-order graph (`WS110`) and a
//!   vector-clock happens-before race checker (`WS111`), enabled via
//!   `WEBSEC_LOCKDEP=1` at effectively zero cost when off.
//!
//! ## Quick start
//!
//! ```
//! use websec_core::prelude::*;
//!
//! // A document, a credential-based policy, and a view.
//! let doc = Document::parse(
//!     "<hospital><patient id=\"p1\"><name>Alice</name></patient></hospital>",
//! ).unwrap();
//! let mut store = PolicyStore::new();
//! store.add(
//!     Authorization::for_subject(SubjectSpec::WithCredentials(
//!         CredentialExpr::OfType("physician".into()),
//!     ))
//!     .on(ObjectSpec::Document("h.xml".into()))
//!     .privilege(Privilege::Read)
//!     .grant(),
//! );
//! let engine = PolicyEngine::default();
//! let doctor = SubjectProfile::new("alice")
//!     .with_credential(Credential::new("physician", "alice"));
//! let view = engine.compute_view(&store, &doctor, "h.xml", &doc);
//! assert!(view.to_xml_string().contains("Alice"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod blobs;
pub mod error;
pub mod faults;
pub mod federation;
pub mod metadata;
pub mod query;
pub mod request;
pub mod server;
pub mod stack;
pub mod sync;
pub mod trust;

pub use websec_analyzer as analyzer;
pub use websec_crypto as crypto;
pub use websec_dissem as dissem;
pub use websec_mining as mining;
pub use websec_policy as policy;
pub use websec_privacy as privacy;
pub use websec_publish as publish;
pub use websec_rdf as rdf;
pub use websec_services as services;
pub use websec_uddi as uddi;
pub use websec_xml as xml;

pub use blobs::{attach_blob, fetch_authorized, BlobError, BlobRef, BlobStore};
pub use error::Error;
pub use faults::{
    FaultInjector, FaultKind, FaultLayer, FaultPlan, FaultRule, FaultSchedule, RetryPolicy,
};
pub use federation::{FederatedHit, Federation, Site};
pub use metadata::{DocumentMeta, MetadataRepository, Placement};
pub use query::{QueryStrategy, SecureHit, SecureQueryProcessor};
pub use request::{BatchRequest, CacheStatus, Decision, QueryRequest, QueryResponse};
pub use server::{
    AnalysisGate, BatchResponse, BatchStats, DecisionMode, LatencyHistogram, MetricsSnapshot,
    ServerConfig, ShardStats, StackServer,
};
#[allow(deprecated)]
pub use server::ServerMetrics;
pub use stack::{LayerTimings, SecureWebStack, StackError};
pub use sync::{
    lockdep_enabled, lockdep_findings, set_lockdep_enabled, SyncFinding, TrackedAtomicBool,
    TrackedAtomicU64, TrackedMutex, TrackedRwLock,
};
pub use trust::{issue_voucher, TrustError, TrustStore, Voucher};

/// Convenience glob import for examples and downstream users.
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::faults::{
        FaultInjector, FaultKind, FaultLayer, FaultPlan, FaultRule, FaultSchedule, RetryPolicy,
    };
    pub use crate::federation::{FederatedHit, Federation, Site};
    pub use crate::query::{QueryStrategy, SecureQueryProcessor};
    pub use crate::request::{BatchRequest, CacheStatus, Decision, QueryRequest, QueryResponse};
    #[allow(deprecated)]
    pub use crate::server::ServerMetrics;
    pub use crate::server::{
        AnalysisGate, BatchResponse, BatchStats, DecisionMode, LatencyHistogram,
        MetricsSnapshot, ServerConfig, ShardStats, StackServer,
    };
    pub use crate::stack::{LayerTimings, SecureWebStack, StackError};
    pub use crate::sync::{
        lockdep_enabled, lockdep_findings, set_lockdep_enabled, SyncFinding, TrackedAtomicBool,
        TrackedAtomicU64, TrackedMutex, TrackedRwLock,
    };
    pub use websec_analyzer::{
        Analyzer, AnalyzerInput, Diagnostic, DissemInput, PassId, Report, Section, Severity,
        UddiInput,
    };
    pub use websec_crypto::{
        sha256, wots_verify, ChaCha20, Keypair, MerkleTree, SecureRng, WotsKeypair,
    };
    pub use websec_dissem::{DissemPackage, KeyAuthority, RegionMap};
    pub use websec_mining::{
        gaussian_mixture, histogram, reconstruct_distribution, secure_sum, zipf_baskets, Apriori,
        DecisionTree, DistributedMiners, MaskedBaskets, NoiseModel, PrivacyMetric,
    };
    pub use websec_policy::{
        AccessDecision, AdministeredStore, Authorization, AuthorizationBuilder, Clearance,
        CompiledPolicies, ConflictStrategy, Credential, CredentialExpr, CredentialIssuer,
        FlexibleEnforcer, InvalidLevel, Level, ObjectSpec, PolicyEngine, PolicySnapshot,
        PolicyStore, Privilege, Propagation, Role, RoleHierarchy, SecurityContext, Sign,
        SubjectProfile, SubjectSpec,
    };
    pub use websec_privacy::{
        AggregateDecision, AggregateQuery, ConsentLedger, InferenceController,
        HistoryGranularity, PrivacyConstraint, PrivacyLevel, PrivacyPolicy, Query, QueryDecision, StatisticalGate,
        Table, UserPreferences, Value, WsaChecklist,
    };
    pub use websec_publish::{verify_answer, Owner, Publisher};
    pub use websec_rdf::{
        ClassAuthorization, ClassLabel, EnforcementMode, OntologyGuard, PatternTerm,
        RdfAuthorization, Schema, SecureStore, Term, Triple, TriplePattern, TripleStore,
    };
    pub use websec_services::{ChannelSession, Envelope, SecureChannel, ServiceDescription,
        ServiceHost, ServiceRequestor};
    #[allow(deprecated)]
    pub use websec_uddi::Registry;
    pub use websec_uddi::{
        BusinessEntity, BusinessService, FindQualifier, InquiryRequest, InquiryResponse,
        ServiceProvider, TModelOverview, UddiRegistry, UntrustedAgency,
    };
    pub use websec_xml::{
        Auction, AuctionState, Document, DocumentStore, Dtd, Path, VersionedStore,
    };
}
