//! Instrumented synchronization primitives: a lockdep-style lock-order
//! graph and a vector-clock happens-before race checker.
//!
//! The serving engine's guarantees (no disclosure past a revocation, MLS
//! label monotonicity) assume a linearizable store; a lock-order inversion
//! or a relaxed-atomic race in the seqlock/shard/cache plumbing silently
//! voids them. This module provides drop-in wrappers — [`TrackedMutex`],
//! [`TrackedRwLock`], [`TrackedAtomicU64`] and friends — that behave
//! exactly like their `std::sync` counterparts but, when detection is
//! enabled, additionally feed two global checkers:
//!
//! * **Lock-order graph (WS110)** — every acquisition of lock class `C`
//!   while classes `[A, B]` are held records the directed edges `A → C`
//!   and `B → C` into a process-global graph. A cycle in that graph is a
//!   *potential* deadlock (kernel-lockdep style): it is reported as
//!   `WS110 LockOrderInversion` even when no deadlock occurred on this
//!   particular schedule, because some interleaving of the observed orders
//!   can deadlock. Classes are static strings fixed at construction
//!   (`"server.snapshot"`, `"server.session"`, …), so one report covers
//!   every instance of a shard or session lock.
//! * **Happens-before checker (WS111)** — per-thread vector clocks,
//!   advanced by lock release/acquire pairs and by `Release`-store /
//!   `Acquire`-load pairs on *synchronizing* atomics (the seqlock
//!   `generation`, the `faults_enabled` flag). A `Relaxed` store to a
//!   synchronizing atomic, or a `Relaxed` load that is not
//!   happens-before-ordered with the atomic's latest store, is reported
//!   as `WS111 DataRace`.
//!
//! Atomics are constructed with a role: [`TrackedAtomicU64::counter`] for
//! monotonic statistics (never tracked — benign counter races are the
//! lint's domain, see the `relaxed-counter` rule of `websec-lint`), or
//! [`TrackedAtomicU64::synchronizing`] for atomics whose ordering other
//! memory depends on (always modeled when detection is on).
//!
//! # Enabling detection
//!
//! Detection is off by default and costs one relaxed atomic load per
//! operation (the `serving_bench` `lockdep` section gates this at ≤ 2% on
//! the parallel sweep). Enable it with the environment variable
//! `WEBSEC_LOCKDEP=1` (read once at first use) or programmatically via
//! [`set_lockdep_enabled`]. Findings accumulate process-globally, deduped
//! by normalized text so a vector fires exactly once; read them with
//! [`lockdep_findings`] and render the full graph with [`lockorder_json`]
//! (the deterministic `LOCKORDER.json` artifact byte-diffed by CI).
//!
//! # Model notes (intentional approximations)
//!
//! * Thread spawn/join edges are **not** modeled: cross-thread visibility
//!   must flow through a tracked release/acquire pair. A relaxed read
//!   that is only ordered by a `join()` is still reported — the ordering
//!   is incidental to the schedule, not guaranteed by the access pair.
//! * Read and write acquisitions of a [`TrackedRwLock`] share one lock
//!   class in the order graph (reader/writer cycles deadlock too), and
//!   both publish/join the class's release clock (conservative for the
//!   race checker: it can only under-report races through read locks,
//!   never invent one).
//! * Lockdep state is process-wide. Tests that assert exact findings
//!   should use unique class names and [`lockdep_reset`] in a dedicated
//!   test binary (see `tests/tests/lockdep.rs`).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{
    LockResult, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard, TryLockError, TryLockResult,
};
use std::thread::ThreadId;

/// One deduplicated detector finding: a potential deadlock (`WS110`) or a
/// happens-before violation (`WS111`), with a normalized, schedule-stable
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncFinding {
    /// Stable error code: `"WS110"` (lock-order inversion) or `"WS111"`
    /// (data race).
    pub code: &'static str,
    /// Normalized description (no thread ids, counts, or addresses — the
    /// same violation always renders the same text).
    pub message: String,
}

impl SyncFinding {
    /// `"WS110 lock-order inversion: a -> b -> a"`-style machine line.
    #[must_use]
    pub fn machine_line(&self) -> String {
        format!("{} {}", self.code, self.message)
    }
}

/// How a tracked atomic participates in the happens-before model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicRole {
    /// A monotonic statistic: never modeled, even when detection is on.
    /// Relaxed races on counters are benign by construction; modeling
    /// them would serialize every hot counter through the global
    /// registry and drown real findings in noise.
    Counter,
    /// An atomic whose ordering other memory depends on (seqlock
    /// generations, enable flags). Always modeled when detection is on:
    /// stores must use `Release` (or stronger), cross-thread loads must
    /// use `Acquire` (or stronger) unless already ordered.
    Synchronizing,
}

// ---------------------------------------------------------------------------
// Global detector state
// ---------------------------------------------------------------------------

struct StoreEvent {
    /// Registry slot of the storing thread.
    thread: usize,
    /// The storing thread's vector clock at the store.
    clock: Vec<u64>,
}

struct AtomicState {
    /// Joined release clocks of every `Release`-or-stronger store.
    clock: Vec<u64>,
    last_store: Option<StoreEvent>,
}

#[derive(Default)]
struct Registry {
    /// `(held, acquired) -> times observed` over lock classes.
    edges: BTreeMap<(&'static str, &'static str), u64>,
    /// Per-class acquisition counts (lock classes only).
    acquisitions: BTreeMap<&'static str, u64>,
    /// Dedup key (`code:message`) → finding; BTreeMap keeps reporting
    /// order stable.
    findings: BTreeMap<String, SyncFinding>,
    /// Thread id → vector-clock slot.
    threads: HashMap<ThreadId, usize>,
    /// Per-slot vector clocks.
    clocks: Vec<Vec<u64>>,
    /// Per lock class: the joined clock published at every release.
    lock_clocks: HashMap<&'static str, Vec<u64>>,
    /// Per synchronizing-atomic instance.
    atomics: HashMap<u64, AtomicState>,
}

struct Detector {
    enabled: AtomicBool,
    registry: Mutex<Registry>,
}

static DETECTOR: OnceLock<Detector> = OnceLock::new();
/// Instance ids for synchronizing atomics (counter-role atomics get 0).
static NEXT_ATOMIC_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Lock classes currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn detector() -> &'static Detector {
    DETECTOR.get_or_init(|| Detector {
        enabled: AtomicBool::new(
            std::env::var("WEBSEC_LOCKDEP").map(|v| v == "1").unwrap_or(false),
        ),
        registry: Mutex::new(Registry::default()),
    })
}

/// Whether lockdep/race detection is currently enabled (one relaxed load —
/// this is the entire disabled-path cost of every tracked operation).
#[must_use]
pub fn lockdep_enabled() -> bool {
    detector().enabled.load(Ordering::Relaxed)
}

/// Programmatically enables or disables detection (the `WEBSEC_LOCKDEP=1`
/// environment variable sets the initial state; tests and the
/// `lockorder_dump` tool flip it explicitly).
pub fn set_lockdep_enabled(enabled: bool) {
    detector().enabled.store(enabled, Ordering::Relaxed);
}

fn registry() -> MutexGuard<'static, Registry> {
    detector()
        .registry
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The findings recorded so far, sorted by `(code, message)` and deduped
/// so one violation reports exactly once no matter how often it recurs.
#[must_use]
pub fn lockdep_findings() -> Vec<SyncFinding> {
    registry().findings.values().cloned().collect()
}

/// Clears the entire detector state: graph, acquisition counts, findings,
/// vector clocks. **Test/tooling only** — callers must be quiescent (no
/// other thread holding a tracked lock), otherwise later releases publish
/// clocks for classes the reset forgot (harmless but confusing).
pub fn lockdep_reset() {
    *registry() = Registry::default();
}

/// Elementwise max, growing `into` as needed.
fn vc_join(into: &mut Vec<u64>, other: &[u64]) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (slot, &v) in into.iter_mut().zip(other.iter()) {
        if *slot < v {
            *slot = v;
        }
    }
}

/// `a ≤ b` pointwise (missing components are 0).
fn vc_leq(a: &[u64], b: &[u64]) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

impl Registry {
    /// The vector-clock slot of the current thread, allocating on first
    /// sight. `ThreadId`s are never reused within a process, so a slot
    /// uniquely names one thread for the registry's lifetime.
    fn slot(&mut self) -> usize {
        let id = std::thread::current().id();
        if let Some(&s) = self.threads.get(&id) {
            return s;
        }
        let s = self.clocks.len();
        self.threads.insert(id, s);
        let mut clock = vec![0; s + 1];
        clock[s] = 1;
        self.clocks.push(clock);
        s
    }

    fn report(&mut self, code: &'static str, message: String) {
        let key = format!("{code}:{message}");
        self.findings
            .entry(key)
            .or_insert(SyncFinding { code, message });
    }

    /// A path `from →* to` in the edge graph, if one exists (deterministic
    /// DFS over the sorted edge map).
    fn find_path(&self, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![from]];
        let mut visited = BTreeSet::new();
        visited.insert(from);
        while let Some(path) = stack.pop() {
            let last = *path.last().unwrap_or(&from);
            if last == to {
                return Some(path);
            }
            for &(a, b) in self.edges.keys() {
                if a == last && visited.insert(b) {
                    let mut next = path.clone();
                    next.push(b);
                    stack.push(next);
                }
            }
        }
        None
    }
}

/// Rotates `nodes` (a cycle without the closing repeat) so the
/// lexicographically smallest class leads, then renders
/// `"a -> b -> ... -> a"` — the same cycle always normalizes to the same
/// text regardless of which edge closed it.
fn normalize_cycle(mut nodes: Vec<&'static str>) -> String {
    if let Some(min_at) = nodes
        .iter()
        .enumerate()
        .min_by_key(|&(_, c)| *c)
        .map(|(i, _)| i)
    {
        nodes.rotate_left(min_at);
    }
    let mut out = String::new();
    for c in &nodes {
        let _ = write!(out, "{c} -> ");
    }
    let _ = write!(out, "{}", nodes.first().copied().unwrap_or("?"));
    out
}

/// Records the acquisition of `class` (edges from every held class, cycle
/// check on new edges) and pushes it onto the held stack. Called *before*
/// blocking on the inner lock so a real deadlock still leaves the edge in
/// the graph. Returns whether the acquisition was tracked.
fn before_lock(class: &'static str) -> bool {
    if !lockdep_enabled() {
        return false;
    }
    let held: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
    {
        let mut reg = registry();
        *reg.acquisitions.entry(class).or_insert(0) += 1;
        let mut seen = BTreeSet::new();
        for &h in &held {
            if !seen.insert(h) {
                continue;
            }
            if h == class {
                reg.report(
                    "WS110",
                    format!(
                        "lock-order inversion: {class} -> {class} (one thread acquired two \
                         locks of the same class; a second thread doing the same in the \
                         opposite instance order deadlocks)"
                    ),
                );
                continue;
            }
            let is_new = {
                let count = reg.edges.entry((h, class)).or_insert(0);
                *count += 1;
                *count == 1
            };
            if is_new {
                // The new edge h -> class closes a cycle iff class already
                // reaches h; the cycle is class ->* h -> class.
                if let Some(path) = reg.find_path(class, h) {
                    let message =
                        format!("lock-order inversion: {}", normalize_cycle(path));
                    reg.report("WS110", message);
                }
            }
        }
    }
    HELD.with(|h| h.borrow_mut().push(class));
    true
}

/// Joins the class's release clock into the acquiring thread (the
/// happens-before edge from the previous holder). Called *after* the
/// inner lock succeeded.
fn after_lock(class: &'static str) {
    let mut reg = registry();
    let s = reg.slot();
    if let Some(clock) = reg.lock_clocks.get(class).cloned() {
        vc_join(&mut reg.clocks[s], &clock);
    }
}

/// Publishes the releasing thread's clock to the class and pops the held
/// stack. Driven by guard `Drop`, gated on the acquisition having been
/// tracked (so an enable-flag flip mid-hold cannot unbalance the stack).
fn on_release(class: &'static str) {
    {
        let mut reg = registry();
        let s = reg.slot();
        let clock = reg.clocks[s].clone();
        match reg.lock_clocks.entry(class) {
            std::collections::hash_map::Entry::Occupied(mut e) => vc_join(e.get_mut(), &clock),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(clock);
            }
        }
        reg.clocks[s][s] += 1;
    }
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(at) = held.iter().rposition(|&c| c == class) {
            held.remove(at);
        }
    });
}

fn is_release(order: Ordering) -> bool {
    matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_acquire(order: Ordering) -> bool {
    matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

/// Models a store (or the store half of an RMW) to a synchronizing atomic.
fn on_sync_store(id: u64, class: &'static str, order: Ordering, rmw: bool) {
    if !lockdep_enabled() {
        return;
    }
    let mut reg = registry();
    let s = reg.slot();
    if rmw && is_acquire(order) {
        if let Some(clock) = reg.atomics.get(&id).map(|a| a.clock.clone()) {
            vc_join(&mut reg.clocks[s], &clock);
        }
    }
    let releasing = is_release(order);
    let clock = reg.clocks[s].clone();
    let state = reg.atomics.entry(id).or_insert(AtomicState {
        clock: Vec::new(),
        last_store: None,
    });
    if releasing {
        vc_join(&mut state.clock, &clock);
    }
    state.last_store = Some(StoreEvent { thread: s, clock });
    if !releasing {
        reg.report(
            "WS111",
            format!(
                "data race: relaxed store to synchronizing atomic '{class}' (publication \
                 requires Ordering::Release or stronger)"
            ),
        );
    }
    reg.clocks[s][s] += 1;
}

/// Models a load of a synchronizing atomic.
fn on_sync_load(id: u64, class: &'static str, order: Ordering) {
    if !lockdep_enabled() {
        return;
    }
    let mut reg = registry();
    let s = reg.slot();
    if is_acquire(order) {
        if let Some(clock) = reg.atomics.get(&id).map(|a| a.clock.clone()) {
            vc_join(&mut reg.clocks[s], &clock);
        }
        return;
    }
    let racy = reg
        .atomics
        .get(&id)
        .and_then(|a| a.last_store.as_ref())
        .is_some_and(|ev| ev.thread != s && !vc_leq(&ev.clock, &reg.clocks[s]));
    if racy {
        reg.report(
            "WS111",
            format!(
                "data race: relaxed load of synchronizing atomic '{class}' is not \
                 happens-before-ordered with its latest store (readers require \
                 Ordering::Acquire or stronger)"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic lock-order artifact (LOCKORDER.json)
// ---------------------------------------------------------------------------

/// Renders the current lock-order graph as deterministic JSON: the
/// normalized edge list (sorted `(from, to)` pairs with observation
/// counts), per-class acquisition counts, and the deduped findings. Under
/// a fixed serial workload (see the `lockorder_dump` tool) the output is
/// byte-identical across runs and machines, so CI byte-diffs it against
/// the committed `LOCKORDER.json` baseline.
#[must_use]
pub fn lockorder_json() -> String {
    let reg = registry();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"websec-lockorder-v1\",\n  \"classes\": [\n");
    let classes: Vec<String> = reg
        .acquisitions
        .iter()
        .map(|(class, count)| {
            format!("    {{ \"class\": \"{class}\", \"acquisitions\": {count} }}")
        })
        .collect();
    out.push_str(&classes.join(",\n"));
    if !classes.is_empty() {
        out.push('\n');
    }
    out.push_str("  ],\n  \"edges\": [\n");
    let edges: Vec<String> = reg
        .edges
        .iter()
        .map(|((from, to), count)| {
            format!("    {{ \"from\": \"{from}\", \"to\": \"{to}\", \"count\": {count} }}")
        })
        .collect();
    out.push_str(&edges.join(",\n"));
    if !edges.is_empty() {
        out.push('\n');
    }
    out.push_str("  ],\n  \"findings\": [\n");
    let findings: Vec<String> = reg
        .findings
        .values()
        .map(|f| format!("    \"{}\"", f.machine_line().replace('"', "'")))
        .collect();
    out.push_str(&findings.join(",\n"));
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// TrackedMutex
// ---------------------------------------------------------------------------

/// A [`std::sync::Mutex`] with a static lock class, feeding the lockdep
/// graph and the happens-before checker when detection is enabled. The
/// disabled path costs one relaxed atomic load per acquisition.
pub struct TrackedMutex<T> {
    class: &'static str,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wraps `value` under lock class `class` (one class names every
    /// instance of a logical lock — e.g. all session-table shards share
    /// `"server.shard_map"`).
    pub fn new(class: &'static str, value: T) -> Self {
        TrackedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// The lock class this mutex was constructed under.
    #[must_use]
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Blocking acquisition; same contract as [`std::sync::Mutex::lock`].
    pub fn lock(&self) -> LockResult<TrackedMutexGuard<'_, T>> {
        let tracked = before_lock(self.class);
        let result = self.inner.lock();
        if tracked {
            after_lock(self.class);
        }
        match result {
            Ok(inner) => Ok(TrackedMutexGuard {
                inner,
                class: self.class,
                tracked,
            }),
            Err(poisoned) => Err(PoisonError::new(TrackedMutexGuard {
                inner: poisoned.into_inner(),
                class: self.class,
                tracked,
            })),
        }
    }

    /// Non-blocking acquisition; same contract as
    /// [`std::sync::Mutex::try_lock`]. A failed `try_lock` records
    /// nothing (it cannot block, so it adds no ordering constraint).
    pub fn try_lock(&self) -> TryLockResult<TrackedMutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => {
                let tracked = before_lock(self.class);
                if tracked {
                    after_lock(self.class);
                }
                Ok(TrackedMutexGuard {
                    inner,
                    class: self.class,
                    tracked,
                })
            }
            Err(TryLockError::Poisoned(poisoned)) => {
                let tracked = before_lock(self.class);
                if tracked {
                    after_lock(self.class);
                }
                Err(TryLockError::Poisoned(PoisonError::new(TrackedMutexGuard {
                    inner: poisoned.into_inner(),
                    class: self.class,
                    tracked,
                })))
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("class", &self.class)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard of a [`TrackedMutex`]; releases the lock (and publishes the
/// release clock / pops the held stack when tracked) on drop.
pub struct TrackedMutexGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    class: &'static str,
    tracked: bool,
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            on_release(self.class);
        }
    }
}

// ---------------------------------------------------------------------------
// TrackedRwLock
// ---------------------------------------------------------------------------

/// A [`std::sync::RwLock`] with a static lock class. Read and write
/// acquisitions share the class in the order graph (reader/writer cycles
/// deadlock too); both publish and join the class's release clock.
pub struct TrackedRwLock<T> {
    class: &'static str,
    inner: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Wraps `value` under lock class `class`.
    pub fn new(class: &'static str, value: T) -> Self {
        TrackedRwLock {
            class,
            inner: RwLock::new(value),
        }
    }

    /// The lock class this lock was constructed under.
    #[must_use]
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Shared acquisition; same contract as [`std::sync::RwLock::read`].
    pub fn read(&self) -> LockResult<TrackedReadGuard<'_, T>> {
        let tracked = before_lock(self.class);
        let result = self.inner.read();
        if tracked {
            after_lock(self.class);
        }
        match result {
            Ok(inner) => Ok(TrackedReadGuard {
                inner,
                class: self.class,
                tracked,
            }),
            Err(poisoned) => Err(PoisonError::new(TrackedReadGuard {
                inner: poisoned.into_inner(),
                class: self.class,
                tracked,
            })),
        }
    }

    /// Exclusive acquisition; same contract as
    /// [`std::sync::RwLock::write`].
    pub fn write(&self) -> LockResult<TrackedWriteGuard<'_, T>> {
        let tracked = before_lock(self.class);
        let result = self.inner.write();
        if tracked {
            after_lock(self.class);
        }
        match result {
            Ok(inner) => Ok(TrackedWriteGuard {
                inner,
                class: self.class,
                tracked,
            }),
            Err(poisoned) => Err(PoisonError::new(TrackedWriteGuard {
                inner: poisoned.into_inner(),
                class: self.class,
                tracked,
            })),
        }
    }

    /// Non-blocking shared acquisition; failures record nothing.
    pub fn try_read(&self) -> TryLockResult<TrackedReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => {
                let tracked = before_lock(self.class);
                if tracked {
                    after_lock(self.class);
                }
                Ok(TrackedReadGuard {
                    inner,
                    class: self.class,
                    tracked,
                })
            }
            Err(TryLockError::Poisoned(poisoned)) => {
                let tracked = before_lock(self.class);
                if tracked {
                    after_lock(self.class);
                }
                Err(TryLockError::Poisoned(PoisonError::new(TrackedReadGuard {
                    inner: poisoned.into_inner(),
                    class: self.class,
                    tracked,
                })))
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    /// Non-blocking exclusive acquisition; failures record nothing.
    pub fn try_write(&self) -> TryLockResult<TrackedWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => {
                let tracked = before_lock(self.class);
                if tracked {
                    after_lock(self.class);
                }
                Ok(TrackedWriteGuard {
                    inner,
                    class: self.class,
                    tracked,
                })
            }
            Err(TryLockError::Poisoned(poisoned)) => {
                let tracked = before_lock(self.class);
                if tracked {
                    after_lock(self.class);
                }
                Err(TryLockError::Poisoned(PoisonError::new(TrackedWriteGuard {
                    inner: poisoned.into_inner(),
                    class: self.class,
                    tracked,
                })))
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("class", &self.class)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII shared guard of a [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    class: &'static str,
    tracked: bool,
}

impl<T> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            on_release(self.class);
        }
    }
}

/// RAII exclusive guard of a [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    class: &'static str,
    tracked: bool,
}

impl<T> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            on_release(self.class);
        }
    }
}

// ---------------------------------------------------------------------------
// Tracked atomics
// ---------------------------------------------------------------------------

fn sync_atomic_id() -> u64 {
    NEXT_ATOMIC_ID.fetch_add(1, Ordering::Relaxed)
}

macro_rules! tracked_atomic {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $value:ty) => {
        $(#[$doc])*
        pub struct $name {
            class: &'static str,
            role: AtomicRole,
            /// Instance id in the happens-before model (0 for counters).
            id: u64,
            inner: $inner,
        }

        impl $name {
            /// A counter-role atomic: a monotonic statistic the detector
            /// never models (see [`AtomicRole::Counter`]).
            pub const fn counter(class: &'static str, value: $value) -> Self {
                $name {
                    class,
                    role: AtomicRole::Counter,
                    id: 0,
                    inner: <$inner>::new(value),
                }
            }

            /// A synchronizing-role atomic: modeled by the happens-before
            /// checker whenever detection is on (see
            /// [`AtomicRole::Synchronizing`]).
            pub fn synchronizing(class: &'static str, value: $value) -> Self {
                $name {
                    class,
                    role: AtomicRole::Synchronizing,
                    id: sync_atomic_id(),
                    inner: <$inner>::new(value),
                }
            }

            /// The atomic's class name.
            #[must_use]
            pub fn class(&self) -> &'static str {
                self.class
            }

            /// The atomic's happens-before role.
            #[must_use]
            pub fn role(&self) -> AtomicRole {
                self.role
            }

            /// Same contract as the `std` atomic `load`.
            pub fn load(&self, order: Ordering) -> $value {
                let value = self.inner.load(order);
                if self.role == AtomicRole::Synchronizing {
                    on_sync_load(self.id, self.class, order);
                }
                value
            }

            /// Same contract as the `std` atomic `store`.
            pub fn store(&self, value: $value, order: Ordering) {
                self.inner.store(value, order);
                if self.role == AtomicRole::Synchronizing {
                    on_sync_store(self.id, self.class, order, false);
                }
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("class", &self.class)
                    .field("role", &self.role)
                    .field("inner", &self.inner)
                    .finish()
            }
        }
    };
}

tracked_atomic!(
    /// A role-annotated [`std::sync::atomic::AtomicU64`].
    TrackedAtomicU64,
    AtomicU64,
    u64
);
tracked_atomic!(
    /// A role-annotated [`std::sync::atomic::AtomicBool`].
    TrackedAtomicBool,
    AtomicBool,
    bool
);
tracked_atomic!(
    /// A role-annotated [`std::sync::atomic::AtomicUsize`].
    TrackedAtomicUsize,
    AtomicUsize,
    usize
);
tracked_atomic!(
    /// A role-annotated [`std::sync::atomic::AtomicU8`].
    TrackedAtomicU8,
    AtomicU8,
    u8
);

impl TrackedAtomicU64 {
    /// Same contract as [`std::sync::atomic::AtomicU64::fetch_add`]. As an
    /// RMW, an `Acquire`-or-stronger ordering also joins the atomic's
    /// release clock into the caller.
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        let previous = self.inner.fetch_add(value, order);
        if self.role == AtomicRole::Synchronizing {
            on_sync_store(self.id, self.class, order, true);
        }
        previous
    }

    /// Same contract as [`std::sync::atomic::AtomicU64::compare_exchange`].
    /// In the happens-before model a successful exchange is an RMW store
    /// (`success` ordering); a failed one is a plain load (`failure`
    /// ordering).
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let result = self.inner.compare_exchange(current, new, success, failure);
        if self.role == AtomicRole::Synchronizing {
            match result {
                Ok(_) => on_sync_store(self.id, self.class, success, true),
                Err(_) => on_sync_load(self.id, self.class, failure),
            }
        }
        result
    }
}

impl TrackedAtomicUsize {
    /// Same contract as [`std::sync::atomic::AtomicUsize::fetch_add`].
    pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        let previous = self.inner.fetch_add(value, order);
        if self.role == AtomicRole::Synchronizing {
            on_sync_store(self.id, self.class, order, true);
        }
        previous
    }

    /// Same contract as
    /// [`std::sync::atomic::AtomicUsize::compare_exchange`]. In the
    /// happens-before model a successful exchange is an RMW store
    /// (`success` ordering); a failed one is a plain load (`failure`
    /// ordering).
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        let result = self.inner.compare_exchange(current, new, success, failure);
        if self.role == AtomicRole::Synchronizing {
            match result {
                Ok(_) => on_sync_store(self.id, self.class, success, true),
                Err(_) => on_sync_load(self.id, self.class, failure),
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global detector (they run
    /// on cargo's shared test threads) and force-enables detection for
    /// the scope of one body.
    fn with_detection<R>(f: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _guard = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        set_lockdep_enabled(true);
        let result = f();
        result
    }

    fn findings_for(classes: &[&str]) -> Vec<SyncFinding> {
        lockdep_findings()
            .into_iter()
            .filter(|f| classes.iter().any(|c| f.message.contains(c)))
            .collect()
    }

    #[test]
    fn disabled_wrappers_record_nothing() {
        // No with_detection: detection may be off or on depending on
        // sibling tests, so use the flag directly.
        if lockdep_enabled() {
            return; // another test owns the detector right now
        }
        let m = TrackedMutex::new("t.sync.off_mutex", 1u32);
        drop(m.lock());
        assert!(findings_for(&["t.sync.off_mutex"]).is_empty());
        assert!(!lockorder_json().contains("t.sync.off_mutex"));
    }

    #[test]
    fn ab_ba_inversion_reports_ws110_once() {
        with_detection(|| {
            let a = TrackedMutex::new("t.sync.inv_a", ());
            let b = TrackedMutex::new("t.sync.inv_b", ());
            for _ in 0..3 {
                let ga = a.lock().unwrap_or_else(PoisonError::into_inner);
                let gb = b.lock().unwrap_or_else(PoisonError::into_inner);
                drop(gb);
                drop(ga);
                let gb = b.lock().unwrap_or_else(PoisonError::into_inner);
                let ga = a.lock().unwrap_or_else(PoisonError::into_inner);
                drop(ga);
                drop(gb);
            }
            let found = findings_for(&["t.sync.inv_a"]);
            assert_eq!(found.len(), 1, "WS110 must fire exactly once: {found:?}");
            assert_eq!(found[0].code, "WS110");
            assert_eq!(
                found[0].message,
                "lock-order inversion: t.sync.inv_a -> t.sync.inv_b -> t.sync.inv_a"
            );
        });
    }

    #[test]
    fn consistent_order_is_clean_and_counted() {
        with_detection(|| {
            let outer = TrackedMutex::new("t.sync.ord_outer", ());
            let inner = TrackedRwLock::new("t.sync.ord_inner", ());
            for _ in 0..2 {
                let g = outer.lock().unwrap_or_else(PoisonError::into_inner);
                let r = inner.read().unwrap_or_else(PoisonError::into_inner);
                drop(r);
                drop(g);
            }
            assert!(findings_for(&["t.sync.ord_outer", "t.sync.ord_inner"]).is_empty());
            let json = lockorder_json();
            assert!(
                json.contains(
                    "{ \"from\": \"t.sync.ord_outer\", \"to\": \"t.sync.ord_inner\", \"count\": 2 }"
                ),
                "edge missing from {json}"
            );
        });
    }

    #[test]
    fn relaxed_publish_on_synchronizing_atomic_is_ws111() {
        with_detection(|| {
            let gen = TrackedAtomicU64::synchronizing("t.sync.race_gen", 0);
            gen.store(1, Ordering::Relaxed);
            gen.store(2, Ordering::Relaxed);
            let found = findings_for(&["t.sync.race_gen"]);
            assert_eq!(found.len(), 1, "WS111 must fire exactly once: {found:?}");
            assert_eq!(found[0].code, "WS111");
            assert!(found[0].message.contains("relaxed store"));
        });
    }

    #[test]
    fn release_acquire_pairs_are_clean() {
        with_detection(|| {
            let flag = TrackedAtomicBool::synchronizing("t.sync.hb_flag", false);
            std::thread::scope(|scope| {
                scope.spawn(|| flag.store(true, Ordering::Release));
            });
            assert!(flag.load(Ordering::Acquire));
            assert!(findings_for(&["t.sync.hb_flag"]).is_empty());
        });
    }

    #[test]
    fn unsynchronized_relaxed_read_is_ws111() {
        with_detection(|| {
            let word = TrackedAtomicU64::synchronizing("t.sync.hb_word", 0);
            std::thread::scope(|scope| {
                scope.spawn(|| word.store(7, Ordering::Release));
            });
            // The join orders this read in real time, but no tracked
            // acquire pairs with the release: the model (deliberately)
            // flags it, which is what makes the vector deterministic.
            let _ = word.load(Ordering::Relaxed);
            let found = findings_for(&["t.sync.hb_word"]);
            assert_eq!(found.len(), 1, "{found:?}");
            assert_eq!(found[0].code, "WS111");
            assert!(found[0].message.contains("relaxed load"));
        });
    }

    #[test]
    fn counter_role_is_never_modeled() {
        with_detection(|| {
            let hits = TrackedAtomicU64::counter("t.sync.counter", 0);
            hits.fetch_add(1, Ordering::Relaxed);
            assert_eq!(hits.load(Ordering::Relaxed), 1);
            assert!(findings_for(&["t.sync.counter"]).is_empty());
        });
    }

    #[test]
    fn poisoned_tracked_mutex_preserves_std_contract() {
        with_detection(|| {
            let m = TrackedMutex::new("t.sync.poison", 5u32);
            let _ = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        let _g = m.lock().unwrap();
                        panic!("poison");
                    })
                    .join()
            });
            let g = m.lock().unwrap_or_else(PoisonError::into_inner);
            assert_eq!(*g, 5);
            drop(g);
            assert!(matches!(m.try_lock(), Err(TryLockError::Poisoned(_))));
        });
    }

    #[test]
    fn normalize_cycle_is_rotation_invariant() {
        assert_eq!(normalize_cycle(vec!["b", "c", "a"]), "a -> b -> c -> a");
        assert_eq!(normalize_cycle(vec!["a", "b", "c"]), "a -> b -> c -> a");
        assert_eq!(normalize_cycle(vec!["c", "a", "b"]), "a -> b -> c -> a");
    }

    #[test]
    fn vector_clock_algebra() {
        let mut a = vec![1, 0];
        vc_join(&mut a, &[0, 2, 3]);
        assert_eq!(a, vec![1, 2, 3]);
        assert!(vc_leq(&[1, 2], &[1, 2, 3]));
        assert!(!vc_leq(&[2, 0], &[1, 5]));
        assert!(vc_leq(&[], &[1]));
    }
}
