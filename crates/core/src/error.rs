//! The unified error type of the serving layer.
//!
//! Every failure a caller can observe through the request API —
//! stack-processing errors, transport failures, and malformed requests —
//! is wrapped in one `#[non_exhaustive]` [`Error`] carrying a **stable
//! error code**. Codes extend the analyzer's `WSxxx` scheme (static
//! findings use `WS001`–`WS005`; runtime serving errors use the `WS1xx`
//! series) so callers and tooling match on [`Error::code`] instead of
//! display strings.
//!
//! | code  | variant                      | meaning                              |
//! |-------|------------------------------|--------------------------------------|
//! | WS101 | [`Error::UnknownDocument`]   | no document under the requested name |
//! | WS102 | [`Error::ClearanceViolation`]| document label dominates clearance   |
//! | WS103 | [`Error::Channel`]           | secure-channel transit failure       |
//! | WS104 | [`Error::Misconfigured`]     | strict boot gate found error findings|
//! | WS105 | [`Error::InvalidRequest`]    | request missing/invalid a field      |
//! | WS106 | [`Error::ShardPoisoned`]     | shard poisoned / worker panicked     |
//! | WS107 | [`Error::DeadlineExceeded`]  | per-request deadline budget exhausted|
//! | WS108 | [`Error::Overloaded`]        | admission control shed the request   |
//! | WS109 | [`Error::AnalysisRejected`]  | gated update introduced critical findings |

use crate::stack::StackError;
use websec_services::channel::ChannelError;

/// Unified serving-layer error with stable `WS1xx` codes.
///
/// Marked `#[non_exhaustive]`: future PRs may add variants (e.g. shard
/// routing failures) without a breaking change, so downstream `match`es
/// must carry a wildcard arm — typically dispatching on [`Error::code`].
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// `WS101`: the requested document is not under management.
    UnknownDocument(String),
    /// `WS102`: the document's effective label dominates the subject's
    /// clearance (RDF metadata layer refusal).
    ClearanceViolation,
    /// `WS103`: secure-channel transport failure (tampering, replay, wrong
    /// session key, or non-UTF-8 payload).
    Channel(String),
    /// `WS104`: static analysis found error-severity misconfigurations
    /// (strict mode); carries the machine rendering of the findings.
    Misconfigured(String),
    /// `WS105`: the request was malformed (e.g. no query path set).
    InvalidRequest(String),
    /// `WS106`: a serving shard was poisoned or a batch worker panicked;
    /// the affected request was degraded gracefully (the rest of the batch
    /// and the other shards keep serving). Usually transient — poisoned
    /// sessions are evicted, so a retry re-establishes cleanly.
    ShardPoisoned(String),
    /// `WS107`: the request's logical-tick deadline budget (set with
    /// [`crate::request::QueryRequest::deadline_ticks`]) was exhausted
    /// before evaluation completed — checked at queue-pop and again
    /// immediately before evaluation. Not transient: retrying the same
    /// budget against the same latency will fail the same way; callers
    /// should widen the budget instead.
    DeadlineExceeded(String),
    /// `WS108`: admission control shed the request because the batch
    /// exceeded the configured queue capacity
    /// ([`crate::server::StackServer::set_queue_limit`]). Transient by
    /// definition — the server refused the work without starting it, so a
    /// retry after backoff is always safe.
    Overloaded(String),
    /// `WS109`: an [`crate::server::AnalysisGate::Deny`]-gated
    /// [`crate::server::StackServer::try_update`] was rejected because the
    /// mutated configuration would introduce *new* error-severity analyzer
    /// findings; carries their machine rendering. The snapshot is
    /// unchanged. Not transient: the same mutation yields the same
    /// findings — fix the configuration (or drop the gate to `Warn`)
    /// instead of retrying.
    AnalysisRejected(String),
}

impl Error {
    /// The stable error code (`WS101`..`WS105`), aligned with the
    /// analyzer's `WSxxx` diagnostic scheme.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            Error::UnknownDocument(_) => "WS101",
            Error::ClearanceViolation => "WS102",
            Error::Channel(_) => "WS103",
            Error::Misconfigured(_) => "WS104",
            Error::InvalidRequest(_) => "WS105",
            Error::ShardPoisoned(_) => "WS106",
            Error::DeadlineExceeded(_) => "WS107",
            Error::Overloaded(_) => "WS108",
            Error::AnalysisRejected(_) => "WS109",
        }
    }

    /// Whether a retry with backoff can reasonably succeed.
    ///
    /// Transient failures are transport-or-capacity conditions that clear
    /// on their own: `WS103` (channel transit), `WS106` (poisoned session
    /// evicted on failure, so the next attempt re-establishes), and
    /// `WS108` (load shed before any work started). Everything else —
    /// unknown documents, clearance refusals, malformed requests,
    /// misconfiguration, exhausted deadlines — is deterministic and
    /// retrying is wasted work. [`crate::server::StackServer::serve_with_retry`]
    /// only retries errors for which this returns `true`.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::Channel(_) | Error::ShardPoisoned(_) | Error::Overloaded(_)
        )
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let code = self.code();
        match self {
            Error::UnknownDocument(d) => write!(f, "[{code}] unknown document '{d}'"),
            Error::ClearanceViolation => {
                write!(f, "[{code}] document label exceeds clearance")
            }
            Error::Channel(m) => write!(f, "[{code}] channel failure: {m}"),
            Error::Misconfigured(m) => write!(f, "[{code}] stack misconfigured:\n{m}"),
            Error::InvalidRequest(m) => write!(f, "[{code}] invalid request: {m}"),
            Error::ShardPoisoned(m) => write!(f, "[{code}] degraded: {m}"),
            Error::DeadlineExceeded(m) => write!(f, "[{code}] deadline exceeded: {m}"),
            Error::Overloaded(m) => write!(f, "[{code}] overloaded: {m}"),
            Error::AnalysisRejected(m) => {
                write!(f, "[{code}] update rejected by analysis gate:\n{m}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<StackError> for Error {
    fn from(e: StackError) -> Self {
        match e {
            StackError::UnknownDocument(d) => Error::UnknownDocument(d),
            StackError::ClearanceViolation => Error::ClearanceViolation,
            StackError::Channel(m) => Error::Channel(m),
            StackError::Misconfigured(m) => Error::Misconfigured(m),
        }
    }
}

impl From<ChannelError> for Error {
    fn from(e: ChannelError) -> Self {
        Error::Channel(e.to_string())
    }
}

/// Lossy back-conversion for the deprecated [`crate::stack::SecureWebStack::query`]
/// shim ([`Error::InvalidRequest`] has no legacy counterpart and maps to
/// [`StackError::Channel`]).
impl From<Error> for StackError {
    fn from(e: Error) -> Self {
        match e {
            Error::UnknownDocument(d) => StackError::UnknownDocument(d),
            Error::ClearanceViolation => StackError::ClearanceViolation,
            Error::Channel(m) => StackError::Channel(m),
            Error::Misconfigured(m) => StackError::Misconfigured(m),
            Error::InvalidRequest(m) => StackError::Channel(m),
            Error::ShardPoisoned(m) => StackError::Channel(m),
            Error::DeadlineExceeded(m) => StackError::Channel(m),
            Error::Overloaded(m) => StackError::Channel(m),
            Error::AnalysisRejected(m) => StackError::Misconfigured(m),
            // `Error` is non_exhaustive within the crate too: route any
            // future variant through the transport bucket.
            #[allow(unreachable_patterns)]
            other => StackError::Channel(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            Error::UnknownDocument("d".into()),
            Error::ClearanceViolation,
            Error::Channel("x".into()),
            Error::Misconfigured("y".into()),
            Error::InvalidRequest("z".into()),
            Error::ShardPoisoned("w".into()),
            Error::DeadlineExceeded("t".into()),
            Error::Overloaded("o".into()),
            Error::AnalysisRejected("g".into()),
        ];
        let codes: Vec<&str> = errors.iter().map(Error::code).collect();
        assert_eq!(
            codes,
            vec![
                "WS101", "WS102", "WS103", "WS104", "WS105", "WS106", "WS107", "WS108", "WS109"
            ]
        );
    }

    #[test]
    fn transience_is_limited_to_transport_and_capacity() {
        assert!(Error::Channel("x".into()).is_transient());
        assert!(Error::ShardPoisoned("x".into()).is_transient());
        assert!(Error::Overloaded("x".into()).is_transient());
        assert!(!Error::UnknownDocument("d".into()).is_transient());
        assert!(!Error::ClearanceViolation.is_transient());
        assert!(!Error::Misconfigured("m".into()).is_transient());
        assert!(!Error::InvalidRequest("m".into()).is_transient());
        assert!(!Error::DeadlineExceeded("m".into()).is_transient());
        assert!(!Error::AnalysisRejected("m".into()).is_transient());
    }

    #[test]
    fn display_leads_with_code() {
        assert!(Error::ClearanceViolation.to_string().starts_with("[WS102]"));
        assert!(Error::UnknownDocument("a".into())
            .to_string()
            .contains("unknown document 'a'"));
    }

    #[test]
    fn stack_error_roundtrip() {
        let e: Error = StackError::UnknownDocument("d".into()).into();
        assert_eq!(e.code(), "WS101");
        let back: StackError = e.into();
        assert_eq!(back, StackError::UnknownDocument("d".into()));
    }

    #[test]
    fn channel_error_wraps() {
        let e: Error = ChannelError::BadRecord.into();
        assert_eq!(e.code(), "WS103");
    }

    /// Parity with the shared WS-code registry: every `Error` variant's
    /// code must be registered as a Runtime row, and every Runtime row
    /// must correspond to a variant. The exhaustive (wildcard-free)
    /// match below stops compiling when a variant is added, forcing the
    /// author through this test — and the set equality fails when a
    /// code is added to the registry without a variant (or vice versa).
    #[test]
    fn runtime_codes_match_the_shared_registry() {
        use std::collections::BTreeSet;
        use websec_analyzer::registry::{Phase, REGISTRY};

        let variants = [
            Error::UnknownDocument(String::new()),
            Error::ClearanceViolation,
            Error::Channel(String::new()),
            Error::Misconfigured(String::new()),
            Error::InvalidRequest(String::new()),
            Error::ShardPoisoned(String::new()),
            Error::DeadlineExceeded(String::new()),
            Error::Overloaded(String::new()),
            Error::AnalysisRejected(String::new()),
        ];
        let mut from_variants = BTreeSet::new();
        for e in &variants {
            // Exhaustive in the defining crate: no wildcard arm, so a
            // new variant is a compile error until listed here AND in
            // the `variants` array above AND in the registry.
            let code = match e {
                Error::UnknownDocument(_) => "WS101",
                Error::ClearanceViolation => "WS102",
                Error::Channel(_) => "WS103",
                Error::Misconfigured(_) => "WS104",
                Error::InvalidRequest(_) => "WS105",
                Error::ShardPoisoned(_) => "WS106",
                Error::DeadlineExceeded(_) => "WS107",
                Error::Overloaded(_) => "WS108",
                Error::AnalysisRejected(_) => "WS109",
            };
            assert_eq!(code, e.code());
            from_variants.insert(code);
        }
        let registered: BTreeSet<&str> = REGISTRY
            .iter()
            .filter(|i| i.phase == Phase::Runtime)
            .map(|i| i.code)
            .collect();
        assert_eq!(registered, from_variants);
    }
}
