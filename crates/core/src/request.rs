//! The redesigned request/response API of the serving layer.
//!
//! A query is described by a [`QueryRequest`] built fluently:
//!
//! ```
//! use websec_core::prelude::*;
//!
//! let profile = SubjectProfile::new("doctor");
//! let request = QueryRequest::for_doc("h.xml")
//!     .path(Path::parse("//patient").unwrap())
//!     .subject(&profile)
//!     .clearance(Clearance(Level::Unclassified));
//! assert_eq!(request.doc_name(), "h.xml");
//! ```
//!
//! and answered by a [`QueryResponse`] bundling the view XML, the
//! enforcement [`Decision`], the cache outcome, and per-layer timings —
//! replacing the positional `query(&mut self, profile, clearance, doc,
//! path)` signature (kept as a deprecated shim for one release).

use crate::stack::LayerTimings;
use websec_policy::mls::{Clearance, Level};
use websec_policy::SubjectProfile;
use websec_xml::Path;

/// A single document query, built fluently starting from
/// [`QueryRequest::for_doc`]. Unset fields default to an anonymous subject
/// with Unclassified clearance; the query path is mandatory (executing a
/// request without one yields `WS105`).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    doc: String,
    path: Option<Path>,
    subject: SubjectProfile,
    clearance: Clearance,
}

impl QueryRequest {
    /// Starts a request against the named document.
    #[must_use]
    pub fn for_doc(doc: &str) -> Self {
        QueryRequest {
            doc: doc.to_string(),
            path: None,
            subject: SubjectProfile::new("anonymous"),
            clearance: Clearance(Level::Unclassified),
        }
    }

    /// Sets the query path (mandatory).
    #[must_use]
    pub fn path(mut self, path: Path) -> Self {
        self.path = Some(path);
        self
    }

    /// Sets the requesting subject's profile (identity, roles, credentials).
    #[must_use]
    pub fn subject(mut self, profile: &SubjectProfile) -> Self {
        self.subject = profile.clone();
        self
    }

    /// Sets the subject's MLS clearance.
    #[must_use]
    pub fn clearance(mut self, clearance: Clearance) -> Self {
        self.clearance = clearance;
        self
    }

    /// The requested document name.
    #[must_use]
    pub fn doc_name(&self) -> &str {
        &self.doc
    }

    /// The query path, if one has been set.
    #[must_use]
    pub fn query_path(&self) -> Option<&Path> {
        self.path.as_ref()
    }

    /// The requesting subject.
    #[must_use]
    pub fn subject_profile(&self) -> &SubjectProfile {
        &self.subject
    }

    /// The subject's clearance.
    #[must_use]
    pub fn clearance_level(&self) -> Clearance {
        self.clearance
    }

    /// The singleflight key for batch coalescing: two requests with the
    /// same key are guaranteed the same answer under one validity token
    /// (evaluation is deterministic in identity, document, path, and
    /// clearance). `None` for pathless requests — they fail fast and are
    /// not worth sharing. Uses `\u{1F}` (ASCII unit separator) so field
    /// values cannot collide into each other's positions.
    pub(crate) fn coalesce_key(&self) -> Option<String> {
        let path = self.path.as_ref()?;
        Some(format!(
            "{}\u{1f}{}\u{1f}{}\u{1f}{:?}",
            self.subject.identity,
            self.doc,
            path.source(),
            self.clearance
        ))
    }
}

/// How the flexible-enforcement gate treated a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The full policy evaluation ran (clearance check + view computation).
    Enforced,
    /// The request was admitted without checks (§5's "thirty percent
    /// security" fast path — measured exposure).
    AdmittedUnchecked,
}

/// Whether the policy-view cache served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// A cached view keyed by `(identity, document, policy epoch)` was
    /// reused.
    Hit,
    /// The view was computed (and, under a [`crate::server::StackServer`],
    /// inserted for later reuse).
    Miss,
    /// No view was needed (unchecked fast path) or no cache is attached
    /// (direct [`crate::stack::SecureWebStack::execute`] call).
    Bypass,
    /// An identical request in the same batch was evaluated once and this
    /// response is a clone of that evaluation (singleflight coalescing in
    /// [`crate::server::StackServer::serve_batch`]).
    Coalesced,
}

/// The answer to a [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The serialized view of the matched nodes (empty when nothing is
    /// visible to the subject).
    pub xml: String,
    /// How the enforcement gate treated the request.
    pub decision: Decision,
    /// Whether the policy-view cache served the request.
    pub cache: CacheStatus,
    /// Per-layer elapsed time.
    pub timings: LayerTimings,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let r = QueryRequest::for_doc("d.xml");
        assert_eq!(r.doc_name(), "d.xml");
        assert!(r.query_path().is_none());
        assert_eq!(r.subject_profile().identity, "anonymous");
        assert_eq!(r.clearance_level(), Clearance(Level::Unclassified));
    }

    #[test]
    fn builder_sets_all_fields() {
        let profile = SubjectProfile::new("alice");
        let path = Path::parse("//x").unwrap();
        let r = QueryRequest::for_doc("d.xml")
            .path(path.clone())
            .subject(&profile)
            .clearance(Clearance(Level::Secret));
        assert_eq!(r.query_path(), Some(&path));
        assert_eq!(r.subject_profile().identity, "alice");
        assert_eq!(r.clearance_level(), Clearance(Level::Secret));
    }
}
