//! The redesigned request/response API of the serving layer.
//!
//! A query is described by a [`QueryRequest`] built fluently:
//!
//! ```
//! use websec_core::prelude::*;
//!
//! let profile = SubjectProfile::new("doctor");
//! let request = QueryRequest::for_doc("h.xml")
//!     .path(Path::parse("//patient").unwrap())
//!     .subject(&profile)
//!     .clearance(Clearance(Level::Unclassified));
//! assert_eq!(request.doc_name(), "h.xml");
//! ```
//!
//! and answered by a [`QueryResponse`] bundling the view XML, the
//! enforcement [`Decision`], the cache outcome, and per-layer timings —
//! replacing the positional `query(&mut self, profile, clearance, doc,
//! path)` signature (kept as a deprecated shim for one release).

use crate::stack::LayerTimings;
use websec_policy::mls::{Clearance, Level};
use websec_policy::SubjectProfile;
use websec_xml::Path;

/// A single document query, built fluently starting from
/// [`QueryRequest::for_doc`]. Unset fields default to an anonymous subject
/// with Unclassified clearance; the query path is mandatory (executing a
/// request without one yields `WS105`).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    doc: String,
    path: Option<Path>,
    subject: SubjectProfile,
    clearance: Clearance,
    deadline: Option<u64>,
}

impl QueryRequest {
    /// Starts a request against the named document.
    #[must_use]
    pub fn for_doc(doc: &str) -> Self {
        QueryRequest {
            doc: doc.to_string(),
            path: None,
            subject: SubjectProfile::new("anonymous"),
            clearance: Clearance(Level::Unclassified),
            deadline: None,
        }
    }

    /// Sets the query path (mandatory).
    #[must_use]
    pub fn path(mut self, path: Path) -> Self {
        self.path = Some(path);
        self
    }

    /// Sets the requesting subject's profile (identity, roles, credentials).
    #[must_use]
    pub fn subject(mut self, profile: &SubjectProfile) -> Self {
        self.subject = profile.clone();
        self
    }

    /// Sets the subject's MLS clearance.
    #[must_use]
    pub fn clearance(mut self, clearance: Clearance) -> Self {
        self.clearance = clearance;
        self
    }

    /// Gives the request a deadline budget in **logical-clock ticks**
    /// (see [`crate::server::StackServer::logical_now`]; the clock only
    /// advances on injected slowdowns and retry backoffs, never on wall
    /// time, so deadline behavior is deterministic). The budget is
    /// converted to an absolute deadline when the server admits the
    /// request and checked at queue-pop and again immediately before
    /// evaluation; exhaustion yields `WS107`.
    #[must_use]
    pub fn deadline_ticks(mut self, budget: u64) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// The requested document name.
    #[must_use]
    pub fn doc_name(&self) -> &str {
        &self.doc
    }

    /// The query path, if one has been set.
    #[must_use]
    pub fn query_path(&self) -> Option<&Path> {
        self.path.as_ref()
    }

    /// The requesting subject.
    #[must_use]
    pub fn subject_profile(&self) -> &SubjectProfile {
        &self.subject
    }

    /// The subject's clearance.
    #[must_use]
    pub fn clearance_level(&self) -> Clearance {
        self.clearance
    }

    /// The deadline budget in logical ticks, if one has been set.
    #[must_use]
    pub fn deadline_budget(&self) -> Option<u64> {
        self.deadline
    }

    /// The singleflight key for batch coalescing: two requests with the
    /// same key are guaranteed the same answer under one validity token
    /// (evaluation is deterministic in identity, document, path, and
    /// clearance). `None` for pathless requests — they fail fast and are
    /// not worth sharing. Uses `\u{1F}` (ASCII unit separator) so field
    /// values cannot collide into each other's positions. Also `None` for
    /// deadline-carrying requests: a coalesced clone would inherit the
    /// leader's timing, silently widening (or narrowing) the follower's
    /// budget — deadline requests are always evaluated individually.
    pub(crate) fn coalesce_key(&self) -> Option<String> {
        if self.deadline.is_some() {
            return None;
        }
        let path = self.path.as_ref()?;
        Some(format!(
            "{}\u{1f}{}\u{1f}{}\u{1f}{:?}",
            self.subject.identity,
            self.doc,
            path.source(),
            self.clearance
        ))
    }
}

/// A batch of queries plus its scheduling parameters, built fluently and
/// handed to [`crate::server::StackServer::serve_batch`]:
///
/// ```
/// use websec_core::prelude::*;
///
/// let requests = vec![QueryRequest::for_doc("h.xml")];
/// let batch = BatchRequest::new(requests).workers(4).deadline_ticks(100);
/// assert_eq!(batch.worker_count(), 4);
/// ```
///
/// Replaces the positional `serve_batch(&[QueryRequest], usize)` signature
/// (kept as the deprecated `serve_batch_positional` shim for one release).
/// The batch-level deadline, when set, caps every member request's budget:
/// a request's effective deadline is the tighter of its own
/// [`QueryRequest::deadline_ticks`] budget and the batch's.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    requests: Vec<QueryRequest>,
    workers: usize,
    deadline: Option<u64>,
}

impl BatchRequest {
    /// Starts a batch over `requests` with a single worker (serial
    /// evaluation in submission order) and no batch deadline.
    #[must_use]
    pub fn new(requests: Vec<QueryRequest>) -> Self {
        BatchRequest {
            requests,
            workers: 1,
            deadline: None,
        }
    }

    /// Sets the number of scheduler workers (clamped to at least 1). The
    /// server may run fewer when admission control shrinks the batch below
    /// the requested parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Gives the whole batch a deadline budget in logical-clock ticks,
    /// measured from batch admission. Each request's effective deadline is
    /// the tighter of this and its own per-request budget; exhaustion
    /// yields `WS107` exactly as for per-request deadlines.
    #[must_use]
    pub fn deadline_ticks(mut self, budget: u64) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// The batch's member requests, in submission order.
    #[must_use]
    pub fn requests(&self) -> &[QueryRequest] {
        &self.requests
    }

    /// The requested worker count.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The batch-level deadline budget, if one has been set.
    #[must_use]
    pub fn deadline_budget(&self) -> Option<u64> {
        self.deadline
    }
}

/// How the flexible-enforcement gate treated a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The full policy evaluation ran (clearance check + view computation).
    Enforced,
    /// The request was admitted without checks (§5's "thirty percent
    /// security" fast path — measured exposure).
    AdmittedUnchecked,
}

/// Whether the policy-view cache served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// A cached view keyed by `(identity, document, policy epoch)` was
    /// reused.
    Hit,
    /// The view was computed (and, under a [`crate::server::StackServer`],
    /// inserted for later reuse).
    Miss,
    /// No view was needed (unchecked fast path) or no cache is attached
    /// (direct [`crate::stack::SecureWebStack::execute`] call).
    Bypass,
    /// An identical request in the same batch was evaluated once and this
    /// response is a clone of that evaluation (singleflight coalescing in
    /// [`crate::server::StackServer::serve_batch`]).
    Coalesced,
}

/// The answer to a [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The serialized view of the matched nodes (empty when nothing is
    /// visible to the subject).
    pub xml: String,
    /// How the enforcement gate treated the request.
    pub decision: Decision,
    /// Whether the policy-view cache served the request.
    pub cache: CacheStatus,
    /// Whether the view was produced by the snapshot-compiled decision
    /// tables ([`websec_policy::CompiledPolicies`]) rather than the
    /// interpreting [`websec_policy::PolicyEngine`]. Always `false` on
    /// cache hits (the cached view's original provenance is not
    /// re-reported) and under
    /// [`crate::server::DecisionMode::Interpreted`].
    pub compiled: bool,
    /// Per-layer elapsed time.
    pub timings: LayerTimings,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let r = QueryRequest::for_doc("d.xml");
        assert_eq!(r.doc_name(), "d.xml");
        assert!(r.query_path().is_none());
        assert_eq!(r.subject_profile().identity, "anonymous");
        assert_eq!(r.clearance_level(), Clearance(Level::Unclassified));
        assert_eq!(r.deadline_budget(), None);
    }

    #[test]
    fn deadline_requests_never_coalesce() {
        let path = Path::parse("//x").unwrap();
        let plain = QueryRequest::for_doc("d.xml").path(path.clone());
        assert!(plain.coalesce_key().is_some());
        let budgeted = QueryRequest::for_doc("d.xml").path(path).deadline_ticks(8);
        assert_eq!(budgeted.deadline_budget(), Some(8));
        assert!(
            budgeted.coalesce_key().is_none(),
            "a deadline-carrying request must not share another request's evaluation"
        );
    }

    #[test]
    fn batch_builder_defaults_and_setters() {
        let batch = BatchRequest::new(vec![QueryRequest::for_doc("d.xml")]);
        assert_eq!(batch.requests().len(), 1);
        assert_eq!(batch.worker_count(), 1);
        assert_eq!(batch.deadline_budget(), None);
        let batch = batch.workers(0).deadline_ticks(9);
        assert_eq!(batch.worker_count(), 1, "workers clamps to at least 1");
        assert_eq!(batch.deadline_budget(), Some(9));
        assert_eq!(BatchRequest::new(Vec::new()).workers(8).worker_count(), 8);
    }

    #[test]
    fn builder_sets_all_fields() {
        let profile = SubjectProfile::new("alice");
        let path = Path::parse("//x").unwrap();
        let r = QueryRequest::for_doc("d.xml")
            .path(path.clone())
            .subject(&profile)
            .clearance(Clearance(Level::Secret));
        assert_eq!(r.query_path(), Some(&path));
        assert_eq!(r.subject_profile().identity, "alice");
        assert_eq!(r.clearance_level(), Clearance(Level::Secret));
    }
}
