//! Deterministic fault injection and client-facing resilience policies.
//!
//! The paper's threat model assumes untrusted, failure-prone parties —
//! third-party publishers, discovery agencies, lossy channels — yet the
//! serving engine's failure paths (`WS103` channel faults, `WS106` shard
//! poisoning, epoch-bump races) were previously reachable only by real
//! panics in ad-hoc tests. This module makes every failure path a
//! first-class, *replayable* input:
//!
//! * A [`FaultPlan`] is a seeded set of [`FaultRule`]s. Each rule names a
//!   [`FaultKind`] (what breaks), a scope (which subject / document /
//!   worker it applies to), and a [`FaultSchedule`] (when it fires, as a
//!   pure function of a deterministic per-`(rule, subject, document)`
//!   event index — never of wall time or thread timing).
//! * Installing a plan on a [`crate::server::StackServer`]
//!   ([`crate::server::StackServer::install_faults`]) arms injection hooks
//!   at the four layers that can fail: channel transit, session-shard lock
//!   acquisition, L1/L2 view-cache lookups, and worker evaluation. With no
//!   plan installed the hooks are a single relaxed atomic-bool load — the
//!   zero-cost no-op default.
//! * [`RetryPolicy`] is the client-side half: bounded attempts with
//!   decorrelated-jitter backoff driven by the server's **logical clock**
//!   (ticks, not wall time), so retry traces replay exactly. It pairs with
//!   per-request deadline budgets ([`crate::request::QueryRequest::deadline_ticks`],
//!   `WS107`) and admission-control load shedding
//!   ([`crate::server::StackServer::set_queue_limit`], `WS108`).
//!
//! Determinism guarantee: for a fixed plan, the *multiset* of injected
//! faults over a fixed per-key event count is identical on every run.
//! Event indices are allocated per `(rule, subject, document)` stream, so
//! which worker thread observes a given fault may vary under parallel
//! batches, but how many fire — and therefore every counter in
//! [`crate::server::MetricsSnapshot`] that the chaos suite asserts on —
//! does not.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::PoisonError;

use crate::sync::{TrackedAtomicU64, TrackedMutex};

use websec_crypto::SecureRng;

/// FNV-1a over a byte string (mirrors the serving layer's shard hash; kept
/// local so the fault seam has no dependency on server internals).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The serving layer a fault hook lives at. Each [`FaultKind`] maps to
/// exactly one layer; a rule only ever fires at its kind's layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLayer {
    /// [`websec_services::ChannelSession`] transit (drop / tamper).
    Channel,
    /// Session-shard lock acquisition in the sharded session table.
    Shard,
    /// L1/L2 policy-view cache lookups.
    Cache,
    /// Worker request evaluation.
    Eval,
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The sealed record is dropped in transit: the request fails with
    /// `WS103` before evaluation. Session state is untouched (the drop is
    /// modelled before the client seals).
    ChannelDrop,
    /// The sealed record is bit-flipped in transit and rejected by the
    /// receiving endpoint's MAC check — the channel's *genuine* tamper
    /// detection runs and the request fails `WS103`. The session's
    /// sequence numbers are rewound (modelling retransmission of the
    /// authentic record), so the session stays usable.
    ChannelTamper,
    /// The evaluation panics inside the worker's panic boundary: the
    /// request degrades to `WS106`, the panicking worker's session mutex
    /// is poisoned, and the eviction/self-heal path runs for real.
    WorkerPanic,
    /// The request's cached view (L1 and L2) is evicted immediately before
    /// lookup, forcing a recomputation. Never changes an answer — only
    /// cache-status and hit counters.
    CacheEvict,
    /// The evaluation consumes extra logical-clock ticks (the deterministic
    /// stand-in for a slow evaluation); interacts with per-request
    /// deadline budgets (`WS107`).
    SlowEval {
        /// Ticks added to the server's logical clock when the fault fires.
        ticks: u64,
    },
    /// The session-shard lock acquisition behaves as poisoned: the request
    /// fails `WS106` and the identity's session is evicted so the next
    /// request re-establishes cleanly.
    LockPoison,
}

impl FaultKind {
    /// The injection layer this kind fires at.
    #[must_use]
    pub fn layer(&self) -> FaultLayer {
        match self {
            FaultKind::ChannelDrop | FaultKind::ChannelTamper => FaultLayer::Channel,
            FaultKind::LockPoison => FaultLayer::Shard,
            FaultKind::CacheEvict => FaultLayer::Cache,
            FaultKind::WorkerPanic | FaultKind::SlowEval { .. } => FaultLayer::Eval,
        }
    }

    /// Stable short name (used in metrics dumps and chaos-test logs).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::ChannelDrop => "channel_drop",
            FaultKind::ChannelTamper => "channel_tamper",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::CacheEvict => "cache_evict",
            FaultKind::SlowEval { .. } => "slow_eval",
            FaultKind::LockPoison => "lock_poison",
        }
    }
}

/// When a rule fires, as a pure function of the rule's derived seed and
/// the deterministic event index of its `(subject, document)` stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Fires on every matched event.
    Always,
    /// Fires when `index % every == offset % every`.
    Nth {
        /// Stream period (0 never fires).
        every: u64,
        /// Offset within the period.
        offset: u64,
    },
    /// Fires exactly once, at the given event index.
    At(u64),
    /// Fires for every event index strictly below the bound — the
    /// "transient outage" schedule: the first `n` events fail, then the
    /// fault clears and retries succeed.
    Until(u64),
    /// Seeded Bernoulli trial per event: fires with probability
    /// `permille / 1000`, decided by a [`SecureRng`] stream derived from
    /// the rule seed, the key hash, and the event index (bit-reproducible
    /// across runs and thread interleavings).
    Random {
        /// Firing probability in thousandths (1000 = always).
        permille: u16,
    },
}

impl FaultSchedule {
    fn fires(&self, rule_seed: u64, key_hash: u64, index: u64) -> bool {
        match self {
            FaultSchedule::Always => true,
            FaultSchedule::Nth { every, offset } => *every > 0 && index % every == offset % every,
            FaultSchedule::At(n) => index == *n,
            FaultSchedule::Until(n) => index < *n,
            FaultSchedule::Random { permille } => {
                let mut seed = [0u8; 24];
                seed[..8].copy_from_slice(&rule_seed.to_le_bytes());
                seed[8..16].copy_from_slice(&key_hash.to_le_bytes());
                seed[16..].copy_from_slice(&index.to_le_bytes());
                SecureRng::from_seed(&seed).next_u64() % 1000 < u64::from(*permille)
            }
        }
    }
}

/// One injectable fault: a kind, an optional subject/document/worker
/// scope (unset = match any), and a firing schedule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// What breaks when the rule fires.
    pub kind: FaultKind,
    /// Only requests by this subject identity are matched (any if `None`).
    pub subject: Option<String>,
    /// Only requests for this document are matched (any if `None`).
    pub doc: Option<String>,
    /// Only this batch worker index is matched (any if `None`; the
    /// single-request [`crate::server::StackServer::serve`] path has no
    /// worker index and never matches a worker-scoped rule).
    pub worker: Option<usize>,
    /// When the rule fires within its matched event stream.
    pub schedule: FaultSchedule,
}

impl FaultRule {
    /// A rule of the given kind, unscoped, firing on every matched event.
    #[must_use]
    pub fn new(kind: FaultKind) -> Self {
        FaultRule {
            kind,
            subject: None,
            doc: None,
            worker: None,
            schedule: FaultSchedule::Always,
        }
    }

    /// Scopes the rule to one subject identity.
    #[must_use]
    pub fn for_subject(mut self, subject: &str) -> Self {
        self.subject = Some(subject.to_string());
        self
    }

    /// Scopes the rule to one document name.
    #[must_use]
    pub fn for_doc(mut self, doc: &str) -> Self {
        self.doc = Some(doc.to_string());
        self
    }

    /// Scopes the rule to one batch worker index.
    #[must_use]
    pub fn for_worker(mut self, worker: usize) -> Self {
        self.worker = Some(worker);
        self
    }

    /// Sets the firing schedule.
    #[must_use]
    pub fn on(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    fn matches(&self, site: &FaultSite<'_>) -> bool {
        if let Some(subject) = &self.subject {
            if subject != site.subject {
                return false;
            }
        }
        if let Some(doc) = &self.doc {
            if doc != site.doc {
                return false;
            }
        }
        if let Some(worker) = self.worker {
            if site.worker != Some(worker) {
                return false;
            }
        }
        true
    }
}

/// A seeded, composable set of fault rules. Install on a server with
/// [`crate::server::StackServer::install_faults`]; the same plan against
/// the same workload replays the exact failure schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan whose per-rule randomness derives from `seed` (via a
    /// [`SecureRng`] stream, one sub-seed per rule in order of addition).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder-style).
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rules, in firing-priority order.
    #[must_use]
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// True when the plan has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// One injection site, described by the layer being entered and the
/// request coordinates a rule's scope can match on.
pub(crate) struct FaultSite<'a> {
    pub layer: FaultLayer,
    pub subject: &'a str,
    pub doc: &'a str,
    pub worker: Option<usize>,
}

impl FaultSite<'_> {
    /// The event-stream key: rules count events per `(subject, document)`
    /// so schedules are stable regardless of worker assignment.
    fn key_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.subject.len() + self.doc.len() + 1);
        bytes.extend_from_slice(self.subject.as_bytes());
        bytes.push(0x1f);
        bytes.extend_from_slice(self.doc.as_bytes());
        fnv1a(&bytes)
    }
}

/// The armed form of a [`FaultPlan`]: per-rule event counters plus fired
/// tallies. Returned by [`crate::server::StackServer::install_faults`] so
/// chaos tests can assert the injected schedule exactly.
pub struct FaultInjector {
    plan: FaultPlan,
    rule_seeds: Vec<u64>,
    /// Per rule: event index allocated per `(subject, document)` key hash.
    counters: Vec<TrackedMutex<HashMap<u64, u64>>>,
    fired: Vec<TrackedAtomicU64>,
}

impl FaultInjector {
    /// Arms a plan: derives one sub-seed per rule from the plan seed.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let mut rng = SecureRng::seeded(plan.seed);
        let rule_seeds: Vec<u64> = plan.rules.iter().map(|_| rng.next_u64()).collect();
        let counters = plan
            .rules
            .iter()
            .map(|_| TrackedMutex::new("faults.counters", HashMap::new()))
            .collect();
        let fired = plan
            .rules
            .iter()
            .map(|_| TrackedAtomicU64::counter("faults.fired", 0))
            .collect();
        FaultInjector {
            plan,
            rule_seeds,
            counters,
            fired,
        }
    }

    /// The installed plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many times rule `index` has fired.
    #[must_use]
    pub fn fired(&self, index: usize) -> u64 {
        // Monotonic tally read after the run; relaxed readers tolerate lag.
        self.fired.get(index).map_or(0, |f| f.load(Ordering::Relaxed)) // lint:allow(relaxed-counter)
    }

    /// Total fires across all rules.
    #[must_use]
    pub fn fired_total(&self) -> u64 {
        // Monotonic tallies summed for reporting only.
        self.fired.iter().map(|f| f.load(Ordering::Relaxed)).sum() // lint:allow(relaxed-counter)
    }

    /// Per-rule `(kind, fired)` tallies, in rule order.
    #[must_use]
    pub fn fired_counts(&self) -> Vec<(FaultKind, u64)> {
        self.plan
            .rules
            .iter()
            .zip(self.fired.iter())
            // Per-rule tally read for assertions after the run completes.
            .map(|(rule, fired)| (rule.kind, fired.load(Ordering::Relaxed))) // lint:allow(relaxed-counter)
            .collect()
    }

    /// Evaluates every rule of `site.layer` matching `site`, advancing each
    /// matched rule's event stream by one, and returns the kinds that
    /// fired (in rule order). A poisoned counter lock falls back to event
    /// index 0 — injection degrades rather than panics.
    pub(crate) fn check(&self, site: &FaultSite<'_>) -> Vec<FaultKind> {
        let mut fired = Vec::new();
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.kind.layer() != site.layer || !rule.matches(site) {
                continue;
            }
            let key_hash = site.key_hash();
            let index = {
                let mut map = self.counters[i].lock().unwrap_or_else(PoisonError::into_inner);
                let slot = map.entry(key_hash).or_insert(0);
                let current = *slot;
                *slot += 1;
                current
            };
            if rule.schedule.fires(self.rule_seeds[i], key_hash, index) {
                // Order-free accumulation: no reader derives other memory
                // from the tally, so relaxed increments suffice.
                self.fired[i].fetch_add(1, Ordering::Relaxed); // lint:allow(relaxed-counter)
                fired.push(rule.kind);
            }
        }
        fired
    }
}

/// Everything an injection hook needs: the armed injector plus the
/// request coordinates. Built once per request on the serving path.
pub(crate) struct FaultContext<'a> {
    pub injector: &'a FaultInjector,
    pub subject: &'a str,
    pub doc: &'a str,
    pub worker: Option<usize>,
}

impl FaultContext<'_> {
    /// Rules of `layer` that fire for this request, in rule order.
    pub fn check(&self, layer: FaultLayer) -> Vec<FaultKind> {
        self.injector.check(&FaultSite {
            layer,
            subject: self.subject,
            doc: self.doc,
            worker: self.worker,
        })
    }
}

/// Bounded retry with decorrelated-jitter backoff over the server's
/// logical clock (no wall time anywhere, so retry traces replay exactly).
///
/// Used by [`crate::server::StackServer::serve_with_retry`]: transient
/// failures (`WS103` channel, `WS106` shard/worker, `WS108` overload —
/// see [`crate::error::Error::is_transient`]) are retried up to
/// `max_attempts` total attempts; each retry advances the logical clock
/// by `backoff_ticks`, and any per-request deadline budget bounds the
/// whole sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to ≥ 1 at use).
    pub max_attempts: u32,
    /// Minimum backoff per retry, in logical ticks.
    pub base_ticks: u64,
    /// Maximum backoff per retry, in logical ticks.
    pub cap_ticks: u64,
    /// Seed for the decorrelated jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts, backoff in `[1, 64]`
    /// ticks, and a zero jitter seed.
    #[must_use]
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_ticks: 1,
            cap_ticks: 64,
            seed: 0,
        }
    }

    /// Sets the backoff bounds in logical ticks.
    #[must_use]
    pub fn backoff_range(mut self, base_ticks: u64, cap_ticks: u64) -> Self {
        self.base_ticks = base_ticks.max(1);
        self.cap_ticks = cap_ticks.max(self.base_ticks);
        self
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff before attempt `attempt` (1-based over retries), given
    /// the previous backoff — decorrelated jitter:
    /// `min(cap, uniform(base, prev * 3))`, drawn from a deterministic
    /// stream keyed by `(seed, salt, attempt)` so distinct requests
    /// (distinct salts) desynchronize instead of thundering together.
    #[must_use]
    pub fn backoff_ticks(&self, attempt: u32, prev: u64, salt: u64) -> u64 {
        let base = self.base_ticks.max(1);
        let cap = self.cap_ticks.max(base);
        let mut seed = [0u8; 24];
        seed[..8].copy_from_slice(&self.seed.to_le_bytes());
        seed[8..16].copy_from_slice(&salt.to_le_bytes());
        seed[16..].copy_from_slice(&u64::from(attempt).to_le_bytes());
        let mut rng = SecureRng::from_seed(&seed);
        let upper = prev.saturating_mul(3).max(base);
        let span = upper - base + 1;
        (base + rng.gen_range(span)).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site<'a>(layer: FaultLayer, subject: &'a str, doc: &'a str) -> FaultSite<'a> {
        FaultSite {
            layer,
            subject,
            doc,
            worker: None,
        }
    }

    #[test]
    fn schedules_fire_deterministically() {
        let always = FaultSchedule::Always;
        let nth = FaultSchedule::Nth { every: 3, offset: 1 };
        let at = FaultSchedule::At(2);
        let until = FaultSchedule::Until(2);
        for index in 0..9 {
            assert!(always.fires(7, 1, index));
            assert_eq!(nth.fires(7, 1, index), index % 3 == 1);
            assert_eq!(at.fires(7, 1, index), index == 2);
            assert_eq!(until.fires(7, 1, index), index < 2);
        }
    }

    #[test]
    fn random_schedule_is_reproducible_and_rate_accurate() {
        let schedule = FaultSchedule::Random { permille: 100 };
        let first: Vec<bool> = (0..2000).map(|i| schedule.fires(42, 9, i)).collect();
        let second: Vec<bool> = (0..2000).map(|i| schedule.fires(42, 9, i)).collect();
        assert_eq!(first, second, "random schedule must replay exactly");
        let rate = first.iter().filter(|&&f| f).count() as f64 / 2000.0;
        assert!((0.05..0.16).contains(&rate), "10% schedule fired at {rate}");
        // A different rule seed yields a different (but still ~10%) stream.
        let other: Vec<bool> = (0..2000).map(|i| schedule.fires(43, 9, i)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn injector_counts_per_subject_doc_stream() {
        let plan = FaultPlan::seeded(1).rule(
            FaultRule::new(FaultKind::ChannelDrop)
                .for_subject("alice")
                .on(FaultSchedule::Until(2)),
        );
        let injector = FaultInjector::new(plan);
        // First two alice events fire, the third does not.
        assert_eq!(
            injector.check(&site(FaultLayer::Channel, "alice", "d.xml")),
            vec![FaultKind::ChannelDrop]
        );
        assert_eq!(
            injector.check(&site(FaultLayer::Channel, "alice", "d.xml")),
            vec![FaultKind::ChannelDrop]
        );
        assert!(injector.check(&site(FaultLayer::Channel, "alice", "d.xml")).is_empty());
        // Bob's stream is independent and unmatched by the subject scope.
        assert!(injector.check(&site(FaultLayer::Channel, "bob", "d.xml")).is_empty());
        // A different doc is a different stream for the same subject.
        assert_eq!(
            injector.check(&site(FaultLayer::Channel, "alice", "other.xml")),
            vec![FaultKind::ChannelDrop]
        );
        assert_eq!(injector.fired_total(), 3);
        assert_eq!(injector.fired(0), 3);
        assert_eq!(injector.fired_counts(), vec![(FaultKind::ChannelDrop, 3)]);
    }

    #[test]
    fn rules_only_fire_at_their_kinds_layer() {
        let plan = FaultPlan::seeded(2)
            .rule(FaultRule::new(FaultKind::CacheEvict))
            .rule(FaultRule::new(FaultKind::LockPoison));
        let injector = FaultInjector::new(plan);
        assert_eq!(
            injector.check(&site(FaultLayer::Cache, "a", "d")),
            vec![FaultKind::CacheEvict]
        );
        assert_eq!(
            injector.check(&site(FaultLayer::Shard, "a", "d")),
            vec![FaultKind::LockPoison]
        );
        assert!(injector.check(&site(FaultLayer::Eval, "a", "d")).is_empty());
    }

    #[test]
    fn worker_scope_only_matches_that_worker() {
        let plan =
            FaultPlan::seeded(3).rule(FaultRule::new(FaultKind::WorkerPanic).for_worker(1));
        let injector = FaultInjector::new(plan);
        let unmatched = FaultSite {
            layer: FaultLayer::Eval,
            subject: "a",
            doc: "d",
            worker: Some(0),
        };
        let matched = FaultSite {
            worker: Some(1),
            ..unmatched
        };
        let serve_path = FaultSite {
            worker: None,
            ..unmatched
        };
        assert!(injector.check(&unmatched).is_empty());
        assert!(injector.check(&serve_path).is_empty());
        assert_eq!(injector.check(&matched), vec![FaultKind::WorkerPanic]);
    }

    #[test]
    fn backoff_is_bounded_decorrelated_and_deterministic() {
        let policy = RetryPolicy::new(5).backoff_range(2, 50).jitter_seed(9);
        let mut prev = policy.base_ticks;
        let mut trace = Vec::new();
        for attempt in 1..=8 {
            let b = policy.backoff_ticks(attempt, prev, 0xAB);
            assert!(
                (policy.base_ticks..=policy.cap_ticks).contains(&b),
                "backoff {b} out of [{}, {}]",
                policy.base_ticks,
                policy.cap_ticks
            );
            trace.push(b);
            prev = b;
        }
        // Replaying the same (seed, salt, attempt, prev) stream is exact.
        let mut prev2 = policy.base_ticks;
        for (attempt, &expected) in (1..=8u32).zip(trace.iter()) {
            let b = policy.backoff_ticks(attempt, prev2, 0xAB);
            assert_eq!(b, expected);
            prev2 = b;
        }
        // A different salt (another request) desynchronizes the jitter.
        let other: Vec<u64> = {
            let mut prev = policy.base_ticks;
            (1..=8u32)
                .map(|a| {
                    let b = policy.backoff_ticks(a, prev, 0xCD);
                    prev = b;
                    b
                })
                .collect()
        };
        assert_ne!(trace, other, "distinct salts should not thunder together");
    }

    #[test]
    fn plan_accessors() {
        let plan = FaultPlan::seeded(77).rule(FaultRule::new(FaultKind::ChannelDrop));
        assert_eq!(plan.seed(), 77);
        assert_eq!(plan.rules().len(), 1);
        assert!(!plan.is_empty());
        assert!(FaultPlan::seeded(0).is_empty());
        assert_eq!(FaultKind::SlowEval { ticks: 3 }.name(), "slow_eval");
        assert_eq!(FaultKind::SlowEval { ticks: 3 }.layer(), FaultLayer::Eval);
    }
}
