//! Sharded, contention-free serving over an immutable stack snapshot.
//!
//! The ROADMAP's north star is a system that "serves heavy traffic from
//! millions of users". PR 2's serving layer delivered session reuse and a
//! policy-view cache but serialized every request on one session map and
//! one cache lock — its own benchmark showed four workers running *slower*
//! than one. This module restructures the engine so parallel actually
//! beats serial:
//!
//! * **Identity sharding** — the session table and the shared (L2) view
//!   cache are split into a power-of-two number of shards by
//!   subject-identity hash. Two requests contend only when their subjects
//!   collide on a shard ([`shard`], [`cache`]).
//! * **Worker-local L1** — each batch worker carries a thread-local view
//!   cache and session-handle table; steady-state requests touch no shared
//!   lock at all. Every L1 entry is revalidated against a [`cache::Token`]
//!   (snapshot generation + policy epoch) on read, so a
//!   [`StackServer::update`] or [`websec_policy::PolicyStore`] mutation
//!   invalidates worker-local state globally and immediately.
//! * **Per-worker run queues + steal-half** — a batch is split into one
//!   run queue per worker; an idle worker steals the back half of a
//!   victim's queue instead of hammering a single shared injector.
//! * **Request coalescing (singleflight)** — identical requests inside one
//!   batch (same identity, document, path, clearance, *and* validity
//!   token) share a single evaluation; duplicates receive a clone marked
//!   [`CacheStatus::Coalesced`]. This is the batching win a serial
//!   request-at-a-time loop cannot express, and it is token-keyed, so a
//!   coalesced response can never cross a policy-epoch bump.
//! * **Graceful degradation** — a panicking request evaluation, a poisoned
//!   shard, or a dead worker degrades to `WS106`
//!   ([`Error::ShardPoisoned`]) answers for the affected requests; every
//!   other shard and worker keeps serving.
//! * **Deterministic fault injection & resilience policies** — a seeded
//!   [`FaultPlan`] armed via [`StackServer::install_faults`] fires at the
//!   four failure-capable layers (channel transit, shard lock acquisition,
//!   cache lookup, worker evaluation) on replayable schedules; the no-plan
//!   default costs one atomic load per request. On top: per-request
//!   deadline budgets over a **logical clock** (`WS107`), admission-control
//!   load shedding in [`StackServer::serve_batch`] (`WS108`), and
//!   [`StackServer::serve_with_retry`] with decorrelated backoff
//!   ([`RetryPolicy`]). See [`crate::faults`].
//!
//! Everything is observable through [`MetricsSnapshot`]: per-layer timing
//! totals, the L1/L2 cache-hit split, steal and coalescing counters, and
//! per-shard contention statistics ([`ShardStats`]).
//!
//! The cache and coalescing keys deliberately use the subject *identity*
//! (not the full profile): a server maps each authenticated identity to
//! one profile, the same assumption the per-identity session table makes.
//! Callers that attach different role/credential sets to one identity must
//! invalidate between them.

mod analysis;
mod cache;
mod metrics;
mod shard;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};

use crate::error::Error;
use crate::faults::{FaultContext, FaultInjector, FaultKind, FaultLayer, FaultPlan, RetryPolicy};
use crate::request::{CacheStatus, QueryRequest, QueryResponse};
use crate::stack::{SecureWebStack, ViewResolver};
use crate::sync::{
    TrackedAtomicBool, TrackedAtomicU8, TrackedAtomicU64, TrackedAtomicUsize, TrackedMutex,
    TrackedRwLock,
};
use cache::{L1ViewCache, L2ViewCache, Token, ViewKey};
use metrics::{LocalMetrics, MetricsInner};
use shard::SessionShards;
use websec_policy::SubjectProfile;
use websec_services::ChannelSession;
use websec_xml::Document;

pub use analysis::AnalysisGate;
pub use metrics::{LatencyHistogram, MetricsSnapshot, ShardStats};
#[allow(deprecated)]
pub use metrics::ServerMetrics;

/// Default shard count for the session table and L2 view cache. Sixteen
/// shards keep the expected collision rate low for up to ~8 workers while
/// staying cheap to snapshot; tune with [`StackServer::with_shards`].
const DEFAULT_SHARDS: usize = 16;

/// A concurrent server over an immutable [`SecureWebStack`] snapshot.
///
/// `serve`, `serve_batch`, `update`, and `invalidate_views` all take
/// `&self`: the stack snapshot lives behind a copy-on-write swap, so
/// configuration can mutate *while a batch is in flight* — in-flight
/// requests finish against the snapshot they started with, and every
/// request that starts after [`StackServer::update`] returns observes the
/// new configuration (cached views are token-checked, so no worker can
/// serve a stale view past the epoch bump).
pub struct StackServer {
    snapshot: TrackedRwLock<Arc<SecureWebStack>>,
    /// Bumped after every snapshot mutation; pairs with the policy epoch
    /// to form the validity [`Token`] of cached views. A synchronizing
    /// atomic: its Release/Acquire pairs publish the snapshot seqlock.
    generation: TrackedAtomicU64,
    sessions: SessionShards,
    cache: L2ViewCache,
    metrics: MetricsInner,
    /// The armed fault injector, if a chaos plan is installed. Guarded by
    /// `faults_enabled` so the no-plan serving path pays one atomic load.
    faults: TrackedMutex<Option<Arc<FaultInjector>>>,
    faults_enabled: TrackedAtomicBool,
    /// The logical clock (ticks, not wall time): advanced only by injected
    /// `SlowEval` faults, retry backoffs, and explicit
    /// [`StackServer::advance_clock`] calls, so every deadline decision is
    /// deterministic and replayable.
    clock: TrackedAtomicU64,
    /// Admission-control capacity per batch worker (0 = unlimited): a
    /// batch larger than `limit × workers` has its tail shed with `WS108`.
    queue_limit: TrackedAtomicUsize,
    /// The cached incremental analysis, keyed by the token it ran at.
    /// Lock order: the snapshot lock is always taken before this mutex.
    analysis: TrackedMutex<Option<analysis::AnalysisState>>,
    /// The configured [`AnalysisGate`] (stored as its discriminant).
    analysis_gate: TrackedAtomicU8,
    /// Analyzer passes actually executed across all [`StackServer::analyze`]
    /// calls (the incremental machinery's "work done" counter).
    analysis_passes_run: TrackedAtomicU64,
    /// Analyzer passes answered from the cache (unchanged token or
    /// unchanged input sections).
    analysis_passes_reused: TrackedAtomicU64,
    /// Updates rejected by [`AnalysisGate::Deny`] with `WS109`.
    gate_denials: TrackedAtomicU64,
    /// Codes of the passes the most recent analyze executed.
    last_passes_run: TrackedMutex<Vec<&'static str>>,
}

/// Worker-local serving state: the L1 view cache, a session-handle table,
/// and the last snapshot resolved (revalidated by generation on reuse).
#[derive(Default)]
struct WorkerState {
    l1: L1ViewCache,
    sessions: HashMap<String, Arc<TrackedMutex<ChannelSession>>>,
    snapshot: Option<(u64, Arc<SecureWebStack>, Token)>,
    /// Batch worker index (`None` on the single-request serve path);
    /// worker-scoped fault rules match against it.
    index: Option<usize>,
}

impl WorkerState {
    /// The current `(stack, token)` pair, reusing the cached `Arc` while
    /// the server's generation is unchanged (one relaxed-ish atomic load on
    /// the hot path instead of a lock).
    fn snapshot(&mut self, server: &StackServer) -> Result<(Arc<SecureWebStack>, Token), Error> {
        if let Some((generation, stack, token)) = &self.snapshot {
            if *generation == server.generation.load(Ordering::Acquire) {
                return Ok((Arc::clone(stack), *token));
            }
        }
        let (stack, token) = server.snapshot_with_token()?;
        self.snapshot = Some((token.generation, Arc::clone(&stack), token));
        Ok((stack, token))
    }
}

/// The server's view resolver: L1 (lock-free) over L2 (one shard lock)
/// over a fresh computation, all token-checked.
struct CachedViews<'a> {
    l2: &'a L2ViewCache,
    l1: &'a mut L1ViewCache,
    token: Token,
    local: &'a mut LocalMetrics,
    /// Cache-layer injection hook (`None` on every non-chaos path).
    faults: Option<&'a FaultContext<'a>>,
}

impl ViewResolver for CachedViews<'_> {
    fn resolve(
        &mut self,
        stack: &SecureWebStack,
        profile: &SubjectProfile,
        doc_name: &str,
        doc: &Document,
    ) -> (Arc<Document>, CacheStatus) {
        let key: ViewKey = (profile.identity.clone(), doc_name.to_string());
        if let Some(ctx) = self.faults {
            for kind in ctx.check(FaultLayer::Cache) {
                if kind == FaultKind::CacheEvict {
                    // Evict before lookup: the request recomputes its view
                    // (correctness is unaffected — only hit counters move).
                    self.local.faults_injected += 1;
                    self.l1.remove(&key);
                    self.l2.remove(&key);
                }
            }
        }
        if let Some(view) = self.l1.lookup(&key, self.token) {
            self.local.l1_hits += 1;
            return (view, CacheStatus::Hit);
        }
        if let Some(view) = self.l2.lookup(&key, self.token) {
            self.l1.insert(key, self.token, Arc::clone(&view));
            return (view, CacheStatus::Hit);
        }
        // Compute outside any lock; a racing worker may duplicate the work
        // but both produce the same view.
        let view = Arc::new(
            stack
                .engine
                .compute_view(&stack.policies, profile, doc_name, doc),
        );
        self.l2.insert(key.clone(), self.token, Arc::clone(&view));
        self.l1.insert(key, self.token, Arc::clone(&view));
        (view, CacheStatus::Miss)
    }
}

/// Batch-local singleflight table: the first worker to claim a coalesce
/// key evaluates it; duplicates either reuse the finished result or park
/// their output index on the in-flight slot.
enum Slot {
    InFlight(Vec<usize>),
    Done(Result<QueryResponse, Error>),
}

enum Claim {
    /// This worker owns the evaluation.
    Mine,
    /// Another worker is evaluating; the index was parked on the slot.
    Queued,
    /// The evaluation already finished.
    Done(Result<QueryResponse, Error>),
}

struct CoalesceMap {
    shards: Vec<TrackedMutex<HashMap<(String, Token), Slot>>>,
    mask: u64,
}

impl CoalesceMap {
    fn new(shards: usize) -> Self {
        CoalesceMap {
            shards: (0..shards)
                .map(|_| TrackedMutex::new("server.coalesce", HashMap::new()))
                .collect(),
            mask: shards as u64 - 1,
        }
    }

    fn shard(&self, key: &str) -> &TrackedMutex<HashMap<(String, Token), Slot>> {
        &self.shards[(shard::identity_hash(key) & self.mask) as usize]
    }

    /// First caller per key wins the evaluation; later callers park. On a
    /// poisoned shard every caller gets `Mine` — coalescing degrades to
    /// independent evaluation, never to a wrong or missing answer.
    fn claim(&self, key: &(String, Token), waiter: usize) -> Claim {
        let Ok(mut map) = self.shard(&key.0).lock() else {
            return Claim::Mine;
        };
        match map.get_mut(key) {
            None => {
                map.insert(key.clone(), Slot::InFlight(Vec::new()));
                Claim::Mine
            }
            Some(Slot::InFlight(waiters)) => {
                waiters.push(waiter);
                Claim::Queued
            }
            Some(Slot::Done(result)) => Claim::Done(result.clone()),
        }
    }

    /// Publishes the result and returns the parked waiter indices.
    fn complete(&self, key: &(String, Token), result: &Result<QueryResponse, Error>) -> Vec<usize> {
        let Ok(mut map) = self.shard(&key.0).lock() else {
            return Vec::new();
        };
        match map.insert(key.clone(), Slot::Done(result.clone())) {
            Some(Slot::InFlight(waiters)) => waiters,
            _ => Vec::new(),
        }
    }
}

/// Re-marks a shared evaluation as coalesced for a duplicate position.
fn coalesced(result: Result<QueryResponse, Error>) -> Result<QueryResponse, Error> {
    result.map(|response| QueryResponse {
        cache: CacheStatus::Coalesced,
        ..response
    })
}

impl StackServer {
    /// Wraps a configured stack into a serving snapshot with the default
    /// shard count.
    #[must_use]
    pub fn new(stack: SecureWebStack) -> Self {
        Self::with_shards(stack, DEFAULT_SHARDS)
    }

    /// Like [`StackServer::new`] with an explicit shard count for the
    /// session table and L2 view cache (rounded up to a power of two,
    /// clamped to `1..=4096`).
    #[must_use]
    pub fn with_shards(stack: SecureWebStack, shards: usize) -> Self {
        let shards = shards.clamp(1, 4096).next_power_of_two();
        StackServer {
            snapshot: TrackedRwLock::new("server.snapshot", Arc::new(stack)),
            generation: TrackedAtomicU64::synchronizing("server.generation", 0),
            sessions: SessionShards::new(shards),
            cache: L2ViewCache::new(shards),
            metrics: MetricsInner::default(),
            faults: TrackedMutex::new("server.faults", None),
            faults_enabled: TrackedAtomicBool::synchronizing("server.faults_enabled", false),
            clock: TrackedAtomicU64::counter("server.clock", 0),
            queue_limit: TrackedAtomicUsize::counter("server.queue_limit", 0),
            analysis: TrackedMutex::new("server.analysis", None),
            analysis_gate: TrackedAtomicU8::counter("server.analysis_gate", 0),
            analysis_passes_run: TrackedAtomicU64::counter("server.analysis_passes_run", 0),
            analysis_passes_reused: TrackedAtomicU64::counter("server.analysis_passes_reused", 0),
            gate_denials: TrackedAtomicU64::counter("server.gate_denials", 0),
            last_passes_run: TrackedMutex::new("server.analysis_trace", Vec::new()),
        }
    }

    /// Arms a deterministic [`FaultPlan`] on this server and returns the
    /// live [`FaultInjector`] so callers can assert the injected schedule
    /// (per-rule fired counts) exactly. Replaces any previously installed
    /// plan. While a plan is armed, the worker-local session-handle cache
    /// is bypassed so every request deterministically traverses the
    /// shard-layer hook; with no plan the serving path pays exactly one
    /// atomic load.
    pub fn install_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let injector = Arc::new(FaultInjector::new(plan));
        *self.faults.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&injector));
        self.faults_enabled.store(true, Ordering::Release);
        injector
    }

    /// Disarms fault injection: subsequent requests serve normally (the
    /// self-heal contract — evicted sessions re-establish, evicted views
    /// recompute — is asserted by the chaos suite).
    pub fn clear_faults(&self) {
        self.faults_enabled.store(false, Ordering::Release);
        *self.faults.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// The armed injector, if any (one atomic load when faults are off).
    fn injector(&self) -> Option<Arc<FaultInjector>> {
        if !self.faults_enabled.load(Ordering::Acquire) {
            return None;
        }
        self.faults.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The logical clock, in ticks. It advances only on injected
    /// `SlowEval` faults, retry backoffs, and [`StackServer::advance_clock`]
    /// — never on wall time — so deadline behavior replays exactly.
    #[must_use]
    pub fn logical_now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the logical clock by `ticks`, returning the new value
    /// (models elapsed work in tests and simulations).
    pub fn advance_clock(&self, ticks: u64) -> u64 {
        self.clock.fetch_add(ticks, Ordering::Relaxed) + ticks
    }

    /// Caps each batch worker's run-queue depth for admission control: a
    /// [`StackServer::serve_batch`] call with more than
    /// `depth × workers` requests sheds the tail with `WS108`
    /// ([`Error::Overloaded`]) before any work starts. `0` (the default)
    /// disables shedding.
    pub fn set_queue_limit(&self, per_worker_depth: usize) {
        self.queue_limit.store(per_worker_depth, Ordering::Relaxed);
    }

    /// The configured per-worker admission depth (0 = unlimited).
    #[must_use]
    pub fn queue_limit(&self) -> usize {
        self.queue_limit.load(Ordering::Relaxed)
    }

    /// Number of shards in the session table and L2 view cache.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.sessions.len()
    }

    /// The current immutable snapshot.
    ///
    /// Panics if a concurrent [`StackServer::update`] closure panicked
    /// while mutating (the snapshot may be half-applied); the serving
    /// paths degrade to `WS106` instead of panicking.
    #[must_use]
    pub fn snapshot(&self) -> Arc<SecureWebStack> {
        let guard = self.snapshot.read();
        guard
            .map(|guard| Arc::clone(&guard))
            .expect("stack snapshot poisoned by a panicked update closure")
    }

    /// The snapshot plus its validity token, read under a seqlock-style
    /// generation check so a token can never pair with the wrong snapshot.
    fn snapshot_with_token(&self) -> Result<(Arc<SecureWebStack>, Token), Error> {
        loop {
            let before = self.generation.load(Ordering::Acquire);
            let stack = match self.snapshot.read() {
                Ok(guard) => Arc::clone(&guard),
                Err(_) => {
                    return Err(Error::ShardPoisoned(
                        "stack snapshot poisoned by a panicked update closure".into(),
                    ))
                }
            };
            if self.generation.load(Ordering::Acquire) == before {
                let epoch = stack.policies.epoch();
                return Ok((
                    stack,
                    Token {
                        generation: before,
                        epoch,
                    },
                ));
            }
            // An update raced between the generation read and the snapshot
            // read; retry so the token matches the snapshot.
        }
    }

    /// Mutates the stack configuration (documents, policies, labels,
    /// context, gate) through copy-on-write on the snapshot, then bumps
    /// the generation and drops every cached view.
    ///
    /// Takes `&self`: mutation is safe *during* concurrent serving.
    /// In-flight requests complete against the snapshot they started with;
    /// any request that starts after `update` returns observes the new
    /// configuration (L1/L2 entries and coalesced results are
    /// token-checked, so none can survive the bump).
    pub fn update<R>(&self, mutate: impl FnOnce(&mut SecureWebStack) -> R) -> R {
        let result = {
            let guard = self.snapshot.write();
            let mut guard =
                guard.expect("stack snapshot poisoned by a panicked update closure");
            mutate(Arc::make_mut(&mut guard))
        };
        self.generation.fetch_add(1, Ordering::Release);
        self.cache.clear();
        result
    }

    /// Explicitly invalidates every cached view (e.g. after out-of-band
    /// mutation of state neither the policy epoch nor the snapshot
    /// generation can observe).
    pub fn invalidate_views(&self) {
        self.generation.fetch_add(1, Ordering::Release);
        self.cache.clear();
    }

    /// Number of views currently cached in the shared L2 cache.
    #[deprecated(since = "0.2.0", note = "read metrics().cached_views instead")]
    #[must_use]
    pub fn cached_views(&self) -> usize {
        self.cache.len()
    }

    /// Number of established subject sessions.
    #[deprecated(since = "0.2.0", note = "read metrics().sessions_open instead")]
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.total_sessions() as usize
    }

    /// The full evaluation of one request against the current snapshot,
    /// using (and populating) the worker's local caches.
    ///
    /// `deadline` is an absolute logical-clock tick (computed from the
    /// request's budget when the server admitted it); the budget is
    /// re-checked here immediately before evaluation so a slow (injected)
    /// wait between queue-pop and eval still surfaces as `WS107`.
    fn serve_one(
        &self,
        request: &QueryRequest,
        worker: &mut WorkerState,
        local: &mut LocalMetrics,
        deadline: Option<u64>,
    ) -> Result<QueryResponse, Error> {
        let (stack, token) = worker.snapshot(self)?;
        let identity = &request.subject_profile().identity;
        let injector = self.injector();
        let ctx = injector.as_ref().map(|inj| FaultContext {
            injector: inj,
            subject: identity,
            doc: request.doc_name(),
            worker: worker.index,
        });
        let session = if let Some(ctx) = &ctx {
            // Chaos mode: bypass the worker-local session-handle cache so
            // every request deterministically traverses the shard-layer
            // hook (the L0 handle cache would otherwise hide the shard
            // from all but the first request per worker).
            self.sessions.get_or_establish(
                identity,
                &stack.session_key,
                stack.channel_protected,
                local,
                Some(ctx),
            )?
        } else {
            match worker.sessions.get(identity) {
                Some(session) => Arc::clone(session),
                None => {
                    let session = self.sessions.get_or_establish(
                        identity,
                        &stack.session_key,
                        stack.channel_protected,
                        local,
                        None,
                    )?;
                    worker
                        .sessions
                        .insert(identity.clone(), Arc::clone(&session));
                    session
                }
            }
        };
        let mut guard = match self.sessions.lock_session(identity, &session) {
            Some(guard) => guard,
            None => {
                // The session's holder panicked mid-transit: its sequence
                // state is suspect. Evict so the next request performs a
                // clean handshake; this request degrades to WS106.
                worker.sessions.remove(identity);
                self.sessions.evict(identity);
                return Err(Error::ShardPoisoned(format!(
                    "session '{identity}' poisoned mid-request; evicted for re-establishment"
                )));
            }
        };
        if let Some(ctx) = &ctx {
            for kind in ctx.check(FaultLayer::Channel) {
                match kind {
                    FaultKind::ChannelDrop => {
                        local.faults_injected += 1;
                        return Err(Error::Channel(
                            "injected fault: request record dropped in transit".into(),
                        ));
                    }
                    FaultKind::ChannelTamper => {
                        // Run the channel's *real* MAC rejection: seal the
                        // query, flip a wire byte, open at the server end.
                        local.faults_injected += 1;
                        let payload = request
                            .query_path()
                            .map_or(String::new(), |p| p.source().to_string());
                        return match guard.transit_to_server_tampered(payload.as_bytes()) {
                            Err(e) => Err(Error::Channel(format!("injected tamper: {e}"))),
                            // An unprotected channel has no MAC to refuse
                            // corrupted bytes; the serving layer must not
                            // evaluate a tampered query.
                            Ok(_) => Err(Error::Channel(
                                "injected tamper: unprotected channel delivered a corrupted \
                                 record"
                                    .into(),
                            )),
                        };
                    }
                    _ => {}
                }
            }
            for kind in ctx.check(FaultLayer::Eval) {
                match kind {
                    FaultKind::SlowEval { ticks } => {
                        local.faults_injected += 1;
                        self.clock.fetch_add(ticks, Ordering::Relaxed);
                    }
                    FaultKind::WorkerPanic => {
                        local.faults_injected += 1;
                        // Unwinds through serve_caught's boundary into a
                        // WS106 answer; the held session guard poisons its
                        // mutex, exercising the eviction/self-heal path —
                        // the panic IS the injected fault.
                        panic!("injected fault: worker panic for '{identity}'"); // lint:allow(panic)
                    }
                    _ => {}
                }
            }
        }
        if let Some(deadline) = deadline {
            let now = self.clock.load(Ordering::Relaxed);
            if now > deadline {
                return Err(Error::DeadlineExceeded(format!(
                    "budget exhausted before evaluation (logical clock {now} past deadline \
                     {deadline})"
                )));
            }
        }
        let mut resolver = CachedViews {
            l2: &self.cache,
            l1: &mut worker.l1,
            token,
            local,
            faults: ctx.as_ref(),
        };
        stack.execute_in_session(request, &mut guard, &mut resolver)
    }

    /// [`StackServer::serve_one`] behind a panic boundary: a panicking
    /// evaluation answers `WS106` instead of killing the worker.
    fn serve_caught(
        &self,
        request: &QueryRequest,
        worker: &mut WorkerState,
        local: &mut LocalMetrics,
        deadline: Option<u64>,
    ) -> Result<QueryResponse, Error> {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.serve_one(request, worker, local, deadline)
        }));
        caught.unwrap_or_else(|_| {
            local.worker_panics += 1;
            Err(Error::ShardPoisoned(
                "request evaluation panicked; the batch degraded this request and continued"
                    .into(),
            ))
        })
    }

    /// Serves one request: session lookup (handshake only on first
    /// contact), the four-layer evaluation with the token-checked view
    /// caches plugged in, and metrics accounting. Runs behind the same
    /// panic boundary as batch workers, so an injected (or real) panic
    /// degrades to `WS106` instead of unwinding into the caller.
    pub fn serve(&self, request: &QueryRequest) -> Result<QueryResponse, Error> {
        let mut worker = WorkerState::default();
        let mut local = LocalMetrics::default();
        let deadline = request
            .deadline_budget()
            .map(|budget| self.clock.load(Ordering::Relaxed).saturating_add(budget));
        let result = self.serve_caught(request, &mut worker, &mut local, deadline);
        local.record_outcome(&result);
        self.metrics.absorb(&local);
        result
    }

    /// [`StackServer::serve`] wrapped in the bounded-retry loop of a
    /// [`RetryPolicy`]: transient failures ([`Error::is_transient`] —
    /// channel faults, poisoned shards, overload) are retried up to
    /// `policy.max_attempts` total attempts. Each retry first advances the
    /// logical clock by a decorrelated-jitter backoff (salted by the
    /// request's subject and document so distinct requests desynchronize),
    /// and a request-level deadline budget bounds the whole sequence:
    /// once the clock passes it, the loop stops with `WS107` without
    /// issuing another attempt.
    pub fn serve_with_retry(
        &self,
        request: &QueryRequest,
        policy: &RetryPolicy,
    ) -> Result<QueryResponse, Error> {
        let overall = request
            .deadline_budget()
            .map(|budget| self.clock.load(Ordering::Relaxed).saturating_add(budget));
        let salt = shard::identity_hash(&format!(
            "{}\u{1f}{}",
            request.subject_profile().identity,
            request.doc_name()
        ));
        let attempts = policy.max_attempts.max(1);
        let mut prev = policy.base_ticks.max(1);
        let mut last_transient = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = policy.backoff_ticks(attempt, prev, salt);
                prev = backoff;
                self.clock.fetch_add(backoff, Ordering::Relaxed);
                let mut local = LocalMetrics::default();
                local.retries = 1;
                self.metrics.absorb(&local);
            }
            if let Some(deadline) = overall {
                let now = self.clock.load(Ordering::Relaxed);
                if now > deadline {
                    let result = Err(Error::DeadlineExceeded(format!(
                        "retry budget exhausted after {attempt} attempt(s) (logical clock \
                         {now} past deadline {deadline})"
                    )));
                    let mut local = LocalMetrics::default();
                    local.record_outcome(&result);
                    self.metrics.absorb(&local);
                    return result;
                }
            }
            match self.serve(request) {
                Ok(response) => return Ok(response),
                Err(e) if e.is_transient() => last_transient = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_transient.unwrap_or_else(|| {
            Error::InvalidRequest("retry policy allowed zero attempts".into())
        }))
    }

    /// Serves a batch of requests across `workers` threads.
    ///
    /// Results are positional: `out[i]` answers `requests[i]`, and every
    /// response payload is byte-identical to what a serial
    /// [`StackServer::serve`] loop would produce (cache/coalescing status
    /// and timings legitimately differ). The batch is split into
    /// per-worker run queues with steal-half balancing, and identical
    /// requests are coalesced onto one evaluation per validity token.
    ///
    /// A panicking evaluation or poisoned shard answers the affected
    /// requests with `WS106` ([`Error::ShardPoisoned`]); the rest of the
    /// batch completes normally.
    ///
    /// **Admission control**: when a queue limit is configured
    /// ([`StackServer::set_queue_limit`]), at most `limit × workers`
    /// requests are admitted; the tail of the batch is shed with `WS108`
    /// ([`Error::Overloaded`]) before any evaluation starts — shedding is
    /// positional and deterministic, so the same batch against the same
    /// limit always sheds the same requests. **Deadlines**: each admitted
    /// request's budget is converted to an absolute logical-clock deadline
    /// at batch entry and checked when a worker pops the request (and
    /// again pre-eval); an exhausted budget answers `WS107` without
    /// evaluating.
    pub fn serve_batch(
        &self,
        requests: &[QueryRequest],
        workers: usize,
    ) -> Vec<Result<QueryResponse, Error>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let requested_workers = workers.max(1);
        let limit = self.queue_limit.load(Ordering::Relaxed);
        let admitted = if limit == 0 {
            requests.len()
        } else {
            requests.len().min(limit.saturating_mul(requested_workers))
        };
        let workers = requested_workers.min(admitted);
        let entry_tick = self.clock.load(Ordering::Relaxed);
        let deadlines: Vec<Option<u64>> = requests[..admitted]
            .iter()
            .map(|r| r.deadline_budget().map(|b| entry_tick.saturating_add(b)))
            .collect();
        // Contiguous index chunks, one run queue per worker.
        let chunk = admitted.div_euclid(workers).max(1);
        let queues: Vec<TrackedMutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = if w + 1 == workers {
                    admitted
                } else {
                    ((w + 1) * chunk).min(admitted)
                };
                TrackedMutex::new("server.queue", (start..end).collect())
            })
            .collect();
        let coalesce = CoalesceMap::new(self.sessions.len());

        let mut out: Vec<Option<Result<QueryResponse, Error>>> = Vec::new();
        out.resize_with(requests.len(), || None);
        if admitted < requests.len() {
            let mut local = LocalMetrics::default();
            for slot in out.iter_mut().skip(admitted) {
                let result = Err(Error::Overloaded(format!(
                    "admission control shed this request: batch of {} exceeds queue capacity \
                     {admitted} ({workers} worker(s) x depth {limit})",
                    requests.len()
                )));
                local.record_outcome(&result);
                *slot = Some(result);
            }
            self.metrics.absorb(&local);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let coalesce = &coalesce;
                    let deadlines = &deadlines;
                    scope.spawn(move || self.worker_loop(w, requests, deadlines, queues, coalesce))
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(done) => {
                        for (i, result) in done {
                            out[i] = Some(result);
                        }
                    }
                    Err(_) => {
                        // The worker died outside the per-request panic
                        // boundary (e.g. a poisoned run queue). Its
                        // unfinished slots fall through to WS106 below.
                        let mut local = LocalMetrics::default();
                        local.worker_panics += 1;
                        self.metrics.absorb(&local);
                    }
                }
            }
        });
        out.into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    let result = Err(Error::ShardPoisoned(
                        "worker abandoned this request (panicked outside evaluation)".into(),
                    ));
                    let mut local = LocalMetrics::default();
                    local.record_outcome(&result);
                    self.metrics.absorb(&local);
                    result
                })
            })
            .collect()
    }

    /// One batch worker: drain the own run queue, steal-half when idle,
    /// coalesce identical requests, flush local metrics once at the end.
    fn worker_loop(
        &self,
        worker_index: usize,
        requests: &[QueryRequest],
        deadlines: &[Option<u64>],
        queues: &[TrackedMutex<VecDeque<usize>>],
        coalesce: &CoalesceMap,
    ) -> Vec<(usize, Result<QueryResponse, Error>)> {
        let mut worker = WorkerState {
            index: Some(worker_index),
            ..WorkerState::default()
        };
        let mut local = LocalMetrics::default();
        let mut done = Vec::new();
        while let Some(i) = Self::next_index(worker_index, queues, &mut local) {
            let request = &requests[i];
            // Queue-pop deadline check: work that waited past its budget
            // is answered WS107 without paying for an evaluation.
            if let Some(deadline) = deadlines[i] {
                let now = self.clock.load(Ordering::Relaxed);
                if now > deadline {
                    let result = Err(Error::DeadlineExceeded(format!(
                        "deadline passed while queued (logical clock {now} past deadline \
                         {deadline})"
                    )));
                    local.record_outcome(&result);
                    done.push((i, result));
                    continue;
                }
            }
            let key = match request.coalesce_key() {
                Some(material) => worker
                    .snapshot(self)
                    .ok()
                    .map(|(_, token)| (material, token)),
                None => None,
            };
            let Some(key) = key else {
                // Malformed (pathless) requests fail cheaply, snapshot
                // failures must report per-request errors, and deadline
                // requests must not inherit a leader's timing: none share.
                let result = self.serve_caught(request, &mut worker, &mut local, deadlines[i]);
                local.record_outcome(&result);
                done.push((i, result));
                continue;
            };
            match coalesce.claim(&key, i) {
                Claim::Done(result) => {
                    let result = coalesced(result);
                    local.record_outcome(&result);
                    done.push((i, result));
                }
                Claim::Queued => {} // the evaluating worker will answer `i`
                Claim::Mine => {
                    let result = self.serve_caught(request, &mut worker, &mut local, deadlines[i]);
                    local.record_outcome(&result);
                    for waiter in coalesce.complete(&key, &result) {
                        let shared = coalesced(result.clone());
                        local.record_outcome(&shared);
                        done.push((waiter, shared));
                    }
                    done.push((i, result));
                }
            }
        }
        self.metrics.absorb(&local);
        done
    }

    /// Pops from the worker's own queue, or steals the back half of the
    /// first non-empty victim queue. Returns `None` when every queue is
    /// drained (or the own queue is poisoned).
    fn next_index(
        worker_index: usize,
        queues: &[TrackedMutex<VecDeque<usize>>],
        local: &mut LocalMetrics,
    ) -> Option<usize> {
        match queues[worker_index].lock() {
            Ok(mut queue) => {
                if let Some(i) = queue.pop_front() {
                    return Some(i);
                }
            }
            Err(_) => return None,
        }
        for offset in 1..queues.len() {
            let victim = (worker_index + offset) % queues.len();
            let mut stolen = {
                let Ok(mut queue) = queues[victim].lock() else {
                    continue;
                };
                let len = queue.len();
                if len == 0 {
                    continue;
                }
                queue.split_off(len - (len + 1) / 2)
            };
            local.steals += 1;
            local.stolen_requests += stolen.len() as u64;
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                if let Ok(mut own) = queues[worker_index].lock() {
                    own.extend(stolen);
                }
            }
            if first.is_some() {
                return first;
            }
        }
        None
    }

    /// A consistent snapshot of the cumulative serving statistics,
    /// including the per-shard contention breakdown.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut stats = vec![ShardStats::default(); self.sessions.len()];
        self.sessions.fill_stats(&mut stats);
        self.cache.fill_stats(&mut stats);
        let mut snap = self.metrics.snapshot(stats);
        snap.analysis_passes_run = self.analysis_passes_run.load(Ordering::Relaxed);
        snap.analysis_passes_reused = self.analysis_passes_reused.load(Ordering::Relaxed);
        snap.gate_denials = self.gate_denials.load(Ordering::Relaxed);
        let (errors, warnings) = self.analysis_gauges();
        snap.analysis_errors = errors;
        snap.analysis_warnings = warnings;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::mls::{Clearance, ContextLabel, Level};
    use websec_policy::{Authorization, ObjectSpec, Privilege, SubjectProfile, SubjectSpec};
    use websec_xml::Path;

    fn stack() -> SecureWebStack {
        let mut s = SecureWebStack::new([8u8; 32]);
        s.add_document(
            "h.xml",
            Document::parse(
                "<hospital><patient id=\"p1\"><name>Alice</name></patient><admin><budget>9</budget></admin></hospital>",
            )
            .unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        s.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity("doctor".into()),
            ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            },
            Privilege::Read,
        ));
        s
    }

    fn doctor_request() -> QueryRequest {
        QueryRequest::for_doc("h.xml")
            .path(Path::parse("//patient").unwrap())
            .subject(&SubjectProfile::new("doctor"))
            .clearance(Clearance(Level::Unclassified))
    }

    #[test]
    fn serve_reuses_session_and_cache() {
        let server = StackServer::new(stack());
        let first = server.serve(&doctor_request()).unwrap();
        assert_eq!(first.cache, CacheStatus::Miss);
        for _ in 0..9 {
            let again = server.serve(&doctor_request()).unwrap();
            assert_eq!(again.cache, CacheStatus::Hit);
            assert_eq!(again.xml, first.xml);
        }
        let m = server.metrics();
        assert_eq!(m.requests, 10);
        assert_eq!(m.sessions_established, 1);
        assert_eq!(m.session_reuses, 9);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 9);
        assert!(m.cache_hit_rate() > 0.89);
        assert_eq!(m.sessions_open, 1);
        assert_eq!(m.cached_views, 1);
        // Single-request serves use a fresh worker state: all hits are L2.
        assert_eq!(m.l1_hits, 0);
        assert_eq!(m.l2_hits, 9);
        assert_eq!(m.latency.count, 10);
        assert!(m.latency.mean_ns() > 0.0);
        assert!(m.latency.quantile_upper_ns(0.5) > 0);
    }

    #[test]
    fn update_invalidates_views_and_epoch_keys_cache() {
        let server = StackServer::new(stack());
        let before = server.serve(&doctor_request()).unwrap();
        assert!(before.xml.contains("Alice"));
        assert_eq!(server.metrics().cached_views, 1);
        let epoch_before = server.snapshot().policies.epoch();
        server.update(|s| {
            s.policies.add(Authorization::deny(
                0,
                SubjectSpec::Identity("doctor".into()),
                ObjectSpec::Document("h.xml".into()),
                Privilege::Read,
            ));
        });
        assert!(server.snapshot().policies.epoch() > epoch_before);
        assert_eq!(server.metrics().cached_views, 0, "stale views evicted");
        let after = server.serve(&doctor_request()).unwrap();
        assert_eq!(after.cache, CacheStatus::Miss, "view recomputed");
        assert!(!after.xml.contains("Alice"), "{}", after.xml);
    }

    #[test]
    fn batch_results_are_positional() {
        let server = StackServer::new(stack());
        let requests: Vec<QueryRequest> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    doctor_request()
                } else {
                    QueryRequest::for_doc("nope.xml")
                        .path(Path::parse("//x").unwrap())
                        .subject(&SubjectProfile::new("doctor"))
                }
            })
            .collect();
        let results = server.serve_batch(&requests, 8);
        assert_eq!(results.len(), 64);
        for (i, result) in results.iter().enumerate() {
            if i % 2 == 0 {
                assert!(result.as_ref().unwrap().xml.contains("Alice"));
            } else {
                assert_eq!(result.as_ref().unwrap_err().code(), "WS101");
            }
        }
        let m = server.metrics();
        assert_eq!(m.requests, 64);
        assert_eq!(m.allowed, 32);
        assert_eq!(m.errors, 32);
    }

    #[test]
    fn identical_batch_requests_coalesce_onto_one_evaluation() {
        let server = StackServer::new(stack());
        let requests = vec![doctor_request(); 256];
        let results = server.serve_batch(&requests, 4);
        let baseline = server.serve(&doctor_request()).unwrap();
        for result in &results {
            assert_eq!(result.as_ref().unwrap().xml, baseline.xml);
        }
        let m = server.metrics();
        assert!(
            m.coalesced > 200,
            "coalesced only {} of 256 identical requests",
            m.coalesced
        );
        // Evaluations actually run: misses + real hits + coalesced = allowed.
        assert_eq!(m.cache_hits + m.cache_misses + m.coalesced, m.allowed);
    }

    #[test]
    fn steal_half_rebalances_skewed_queues() {
        let server = StackServer::new(stack());
        // Many distinct paths so little coalescing is possible, forcing
        // real per-request work onto the queues.
        let requests: Vec<QueryRequest> = (0..128)
            .map(|i| {
                QueryRequest::for_doc("h.xml")
                    .path(Path::parse(&format!("//patient[@id='p{}']", i % 64)).unwrap())
                    .subject(&SubjectProfile::new("doctor"))
                    .clearance(Clearance(Level::Unclassified))
            })
            .collect();
        let results = server.serve_batch(&requests, 4);
        assert_eq!(results.len(), 128);
        assert!(results.iter().all(Result::is_ok));
        // On a single-core box workers may drain their own queues without
        // ever idling, so steals are opportunistic — the counter merely
        // must be consistent.
        let m = server.metrics();
        assert!(m.stolen_requests >= m.steals);
    }

    #[test]
    fn poisoned_session_degrades_to_ws106_and_recovers() {
        let server = StackServer::new(stack());
        server.serve(&doctor_request()).unwrap();
        // Poison the doctor's session mutex by panicking while holding it.
        let session = {
            let mut local = LocalMetrics::default();
            let (stack, _) = server.snapshot_with_token().unwrap();
            server
                .sessions
                .get_or_establish(
                    "doctor",
                    &stack.session_key,
                    stack.channel_protected,
                    &mut local,
                    None,
                )
                .unwrap()
        };
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = session.lock().unwrap();
                    panic!("poison the session");
                })
                .join()
        });
        let err = server.serve(&doctor_request()).unwrap_err();
        assert_eq!(err.code(), "WS106");
        assert!(err.to_string().contains("WS106"));
        // The poisoned session was evicted: the next request re-establishes
        // a clean one and succeeds.
        let recovered = server.serve(&doctor_request()).unwrap();
        assert!(recovered.xml.contains("Alice"));
        let m = server.metrics();
        assert_eq!(m.errors, 1);
        assert!(m.sessions_established >= 2);
    }

    #[test]
    fn per_shard_stats_cover_all_shards() {
        let server = StackServer::with_shards(stack(), 8);
        assert_eq!(server.shard_count(), 8);
        for i in 0..32 {
            let request = QueryRequest::for_doc("h.xml")
                .path(Path::parse("//patient").unwrap())
                .subject(&SubjectProfile::new(&format!("subject-{i}")))
                .clearance(Clearance(Level::Unclassified));
            let _ = server.serve(&request);
        }
        let m = server.metrics();
        assert_eq!(m.per_shard.len(), 8);
        assert_eq!(m.per_shard.iter().map(|s| s.sessions_open).sum::<u64>(), 32);
        let used = m.per_shard.iter().filter(|s| s.sessions_open > 0).count();
        assert!(used > 2, "identities clumped into {used} shards");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(StackServer::with_shards(stack(), 3).shard_count(), 4);
        assert_eq!(StackServer::with_shards(stack(), 0).shard_count(), 1);
        assert_eq!(StackServer::with_shards(stack(), 16).shard_count(), 16);
    }
}
