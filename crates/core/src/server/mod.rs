//! Sharded, contention-free serving over an immutable stack snapshot.
//!
//! The ROADMAP's north star is a system that "serves heavy traffic from
//! millions of users". PR 2's serving layer delivered session reuse and a
//! policy-view cache but serialized every request on one session map and
//! one cache lock — its own benchmark showed four workers running *slower*
//! than one. This module restructures the engine so parallel actually
//! beats serial:
//!
//! * **Identity sharding** — the session table and the shared (L2) view
//!   cache are split into a power-of-two number of shards by
//!   subject-identity hash. Two requests contend only when their subjects
//!   collide on a shard ([`shard`], [`cache`]).
//! * **Worker-local L1** — each batch worker carries a thread-local view
//!   cache and session-handle table; steady-state requests touch no shared
//!   lock at all. Every L1 entry is revalidated against a [`cache::Token`]
//!   (snapshot generation + policy epoch) on read, so a
//!   [`StackServer::update`] or [`websec_policy::PolicyStore`] mutation
//!   invalidates worker-local state globally and immediately.
//! * **Lock-free batch scheduler** — a batch is placed round-robin across
//!   one Chase-Lev-style deque per worker (owner pops LIFO, thieves steal
//!   FIFO) with a global MPMC injector absorbing the overflow; claiming
//!   work is a handful of `SeqCst` cursor operations, never a mutex
//!   ([`scheduler`]). Placement is uniform by construction, so a tiny
//!   batch never strands all its work on worker 0.
//! * **Request coalescing (singleflight), off the hot path** — identical
//!   requests inside one batch (same identity, document, path, clearance)
//!   are grouped *once, serially, at batch entry*: the first occurrence
//!   leads and is scheduled; followers are never scheduled at all and
//!   receive a clone of the leader's evaluation marked
//!   [`CacheStatus::Coalesced`]. Workers therefore take no shared
//!   coalescing lock while requests are in flight. Deadline-carrying
//!   requests never coalesce (a follower must not inherit a leader's
//!   timing).
//! * **Wait-free snapshot reads** — the immutable stack snapshot is
//!   published through two generation-selected slots: readers take the
//!   current slot (revalidating the generation), writers clone, mutate,
//!   and publish into the *spare* slot under a dedicated update mutex
//!   before flipping the generation. Readers never contend with a
//!   writer's mutation work, and a panicked update closure can no longer
//!   poison the read path.
//! * **Graceful degradation** — a panicking request evaluation, a poisoned
//!   shard, or a dead worker degrades to `WS106`
//!   ([`Error::ShardPoisoned`]) answers for the affected requests; every
//!   other shard and worker keeps serving.
//! * **Deterministic fault injection & resilience policies** — a seeded
//!   [`FaultPlan`] armed via [`StackServer::install_faults`] fires at the
//!   four failure-capable layers (channel transit, shard lock acquisition,
//!   cache lookup, worker evaluation) on replayable schedules; the no-plan
//!   default costs one atomic load per request. On top: per-request
//!   deadline budgets over a **logical clock** (`WS107`), admission-control
//!   load shedding in [`StackServer::serve_batch`] (`WS108`), and
//!   [`StackServer::serve_with_retry`] with decorrelated backoff
//!   ([`RetryPolicy`]). See [`crate::faults`].
//!
//! Everything is observable through [`MetricsSnapshot`]: per-layer timing
//! totals, the L1/L2 cache-hit split, steal and coalescing counters, and
//! per-shard contention statistics ([`ShardStats`]).
//!
//! The cache and coalescing keys deliberately use the subject *identity*
//! (not the full profile): a server maps each authenticated identity to
//! one profile, the same assumption the per-identity session table makes.
//! Callers that attach different role/credential sets to one identity must
//! invalidate between them.

mod analysis;
mod cache;
mod config;
mod metrics;
mod scheduler;
mod shard;

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError, TryLockError};
use std::time::Instant;

use crate::error::Error;
use crate::faults::{FaultContext, FaultInjector, FaultKind, FaultLayer, FaultPlan, RetryPolicy};
use crate::request::{BatchRequest, CacheStatus, QueryRequest, QueryResponse};
use crate::stack::{ResolvedView, SecureWebStack, ViewResolver};
use crate::sync::{
    TrackedAtomicBool, TrackedAtomicU8, TrackedAtomicU64, TrackedAtomicUsize, TrackedMutex,
    TrackedRwLock,
};
use cache::{L1ViewCache, L2ViewCache, Token, ViewKey};
use metrics::{LocalMetrics, MetricsInner};
use scheduler::Scheduler;
use shard::SessionShards;
use websec_policy::{CompiledPolicies, PolicySnapshot, SubjectProfile};
use websec_services::ChannelSession;
use websec_xml::Document;

pub use analysis::AnalysisGate;
pub use config::{DecisionMode, ServerConfig};
pub use metrics::{BatchResponse, BatchStats, LatencyHistogram, MetricsSnapshot, ShardStats};
#[allow(deprecated)]
pub use metrics::ServerMetrics;

/// Default shard count for the session table and L2 view cache. Sixteen
/// shards keep the expected collision rate low for up to ~8 workers while
/// staying cheap to snapshot; tune with [`StackServer::with_shards`].
const DEFAULT_SHARDS: usize = 16;

/// What a snapshot slot holds: the immutable stack plus the decision
/// tables compiled from it at publication time. The pair is published and
/// invalidated atomically — a reader can never observe a stack with
/// another snapshot's compiled artifact.
type SnapshotPair = (Arc<SecureWebStack>, Arc<CompiledPolicies>);

/// Compiles a stack's policy base into decision tables. Runs once per
/// snapshot publication (under the update lock), never on a request path.
fn compile_stack(stack: &SecureWebStack) -> Arc<CompiledPolicies> {
    PolicySnapshot::new(&stack.policies, stack.engine.strategy, &stack.documents).compile()
}

/// A concurrent server over an immutable [`SecureWebStack`] snapshot.
///
/// `serve`, `serve_batch`, `update`, and `invalidate_views` all take
/// `&self`: the stack snapshot lives behind a copy-on-write swap, so
/// configuration can mutate *while a batch is in flight* — in-flight
/// requests finish against the snapshot they started with, and every
/// request that starts after [`StackServer::update`] returns observes the
/// new configuration (cached views are token-checked, so no worker can
/// serve a stale view past the epoch bump).
pub struct StackServer {
    /// Two generation-selected snapshot slots (`generation & 1` indexes
    /// the current one). Readers take only the current slot; writers
    /// prepare the new stack *outside* any slot lock, install it into the
    /// spare slot, then flip the generation — so a reader never waits on
    /// a writer's clone/mutate/analyze work, only (rarely) on the final
    /// pointer swap.
    snapshot: [TrackedRwLock<SnapshotPair>; 2],
    /// Serializes snapshot writers ([`StackServer::update`],
    /// [`StackServer::try_update`], [`StackServer::invalidate_views`]).
    /// Outermost lock of the server: taken before any snapshot slot,
    /// never the reverse. Readers never touch it.
    update_lock: TrackedMutex<()>,
    /// Bumped after every snapshot publication; selects the current slot
    /// and pairs with the policy epoch to form the validity [`Token`] of
    /// cached views. A synchronizing atomic: its Release/Acquire pairs
    /// publish the slot flip.
    generation: TrackedAtomicU64,
    sessions: SessionShards,
    cache: L2ViewCache,
    metrics: MetricsInner,
    /// The armed fault injector, if a chaos plan is installed. Guarded by
    /// `faults_enabled` so the no-plan serving path pays one atomic load.
    faults: TrackedMutex<Option<Arc<FaultInjector>>>,
    faults_enabled: TrackedAtomicBool,
    /// The logical clock (ticks, not wall time): advanced only by injected
    /// `SlowEval` faults, retry backoffs, and explicit
    /// [`StackServer::advance_clock`] calls, so every deadline decision is
    /// deterministic and replayable.
    clock: TrackedAtomicU64,
    /// Admission-control capacity per batch worker (0 = unlimited): a
    /// batch larger than `limit × workers` has its tail shed with `WS108`.
    queue_limit: TrackedAtomicUsize,
    /// The cached incremental analysis, keyed by the token it ran at.
    /// Lock order: the snapshot lock is always taken before this mutex.
    analysis: TrackedMutex<Option<analysis::AnalysisState>>,
    /// The configured [`AnalysisGate`] (stored as its discriminant).
    analysis_gate: TrackedAtomicU8,
    /// Analyzer passes actually executed across all [`StackServer::analyze`]
    /// calls (the incremental machinery's "work done" counter).
    analysis_passes_run: TrackedAtomicU64,
    /// Analyzer passes answered from the cache (unchanged token or
    /// unchanged input sections).
    analysis_passes_reused: TrackedAtomicU64,
    /// Updates rejected by [`AnalysisGate::Deny`] with `WS109`.
    gate_denials: TrackedAtomicU64,
    /// Codes of the passes the most recent analyze executed.
    last_passes_run: TrackedMutex<Vec<&'static str>>,
    /// The cached policy-verifier run (WS013–WS018), keyed by the token it
    /// ran at. Lock order: taken after the analysis mutex, never before.
    policy_analysis: TrackedMutex<Option<analysis::PolicyAnalysisState>>,
    /// Policy-verifier passes actually executed across all
    /// [`StackServer::verify_policies`] calls.
    policy_passes_run: TrackedAtomicU64,
    /// Policy-verifier passes answered from the incremental cache.
    policy_passes_reused: TrackedAtomicU64,
    /// The configured [`DecisionMode`] (stored as its discriminant).
    decision_mode: TrackedAtomicU8,
    /// Policy compilations performed (construction plus one per
    /// [`StackServer::update`]; [`StackServer::invalidate_views`] reuses
    /// the current artifact and does *not* recompile).
    snapshot_compiles: TrackedAtomicU64,
    /// Total nanoseconds spent compiling snapshots (saturated to u64).
    snapshot_compile_ns: TrackedAtomicU64,
}

/// Worker-local serving state: the L1 view cache, a session-handle table,
/// and the last snapshot resolved (revalidated by generation on reuse).
#[derive(Default)]
struct WorkerState {
    l1: L1ViewCache,
    sessions: HashMap<String, Arc<TrackedMutex<ChannelSession>>>,
    snapshot: Option<(u64, Arc<SecureWebStack>, Arc<CompiledPolicies>, Token)>,
    /// Batch worker index (`None` on the single-request serve path);
    /// worker-scoped fault rules match against it.
    index: Option<usize>,
}

impl WorkerState {
    /// The current `(stack, compiled, token)` triple, reusing the cached
    /// `Arc`s while the server's generation is unchanged (one relaxed-ish
    /// atomic load on the hot path instead of a lock).
    fn snapshot(
        &mut self,
        server: &StackServer,
    ) -> Result<(Arc<SecureWebStack>, Arc<CompiledPolicies>, Token), Error> {
        if let Some((generation, stack, compiled, token)) = &self.snapshot {
            if *generation == server.generation.load(Ordering::Acquire) {
                return Ok((Arc::clone(stack), Arc::clone(compiled), *token));
            }
        }
        let (stack, compiled, token) = server.snapshot_with_token()?;
        self.snapshot = Some((
            token.generation,
            Arc::clone(&stack),
            Arc::clone(&compiled),
            token,
        ));
        Ok((stack, compiled, token))
    }
}

/// The server's view resolver: L1 (lock-free) over L2 (one shard lock)
/// over a fresh computation, all token-checked.
struct CachedViews<'a> {
    l2: &'a L2ViewCache,
    l1: &'a mut L1ViewCache,
    token: Token,
    local: &'a mut LocalMetrics,
    /// Cache-layer injection hook (`None` on every non-chaos path).
    faults: Option<&'a FaultContext<'a>>,
    /// The snapshot's compiled decision tables, consulted on an L2 miss;
    /// `None` under [`DecisionMode::Interpreted`].
    compiled: Option<&'a CompiledPolicies>,
}

impl ViewResolver for CachedViews<'_> {
    fn resolve(
        &mut self,
        stack: &SecureWebStack,
        profile: &SubjectProfile,
        doc_name: &str,
        doc: &Document,
    ) -> ResolvedView {
        let key: ViewKey = (profile.identity.clone(), doc_name.to_string());
        if let Some(ctx) = self.faults {
            for kind in ctx.check(FaultLayer::Cache) {
                if kind == FaultKind::CacheEvict {
                    // Evict before lookup: the request recomputes its view
                    // (correctness is unaffected — only hit counters move).
                    self.local.faults_injected += 1;
                    self.l1.remove(&key);
                    self.l2.remove(&key);
                }
            }
        }
        if let Some(view) = self.l1.lookup(&key, self.token) {
            self.local.l1_hits += 1;
            return ResolvedView {
                view,
                cache: CacheStatus::Hit,
                compiled: false,
                compile_ns: 0,
            };
        }
        // L2 hit/miss attribution is tallied locally per shard and flushed
        // once per worker (`StackServer::absorb_local`) — the lookup path
        // itself performs no shared-counter RMW.
        let shard = self.l2.shard_index(&key.0);
        if let Some(view) = self.l2.lookup(&key, self.token) {
            self.local.bump_l2_shard_hit(shard);
            self.l1.insert(key, self.token, Arc::clone(&view));
            return ResolvedView {
                view,
                cache: CacheStatus::Hit,
                compiled: false,
                compile_ns: 0,
            };
        }
        self.local.bump_l2_shard_miss(shard);
        // Compute outside any lock; a racing worker may duplicate the work
        // but both produce the same view. The compiled tables answer when
        // armed and the document was part of the compiled snapshot; the
        // interpreter covers the rest (and the Interpreted mode).
        let (view, compiled, compile_ns) = match self
            .compiled
            .map(|tables| {
                let t = Instant::now();
                (tables.compute_view(profile, doc_name, doc), t.elapsed().as_nanos())
            }) {
            Some((Some(view), elapsed)) => (Arc::new(view), true, elapsed),
            _ => (
                Arc::new(
                    stack
                        .engine
                        .compute_view(&stack.policies, profile, doc_name, doc),
                ),
                false,
                0,
            ),
        };
        self.l2.insert(key.clone(), self.token, Arc::clone(&view));
        self.l1.insert(key, self.token, Arc::clone(&view));
        ResolvedView {
            view,
            cache: CacheStatus::Miss,
            compiled,
            compile_ns,
        }
    }
}

/// The batch's singleflight plan, computed serially at batch entry so no
/// worker ever takes a coalescing lock: `schedule` lists the request
/// indices that actually run (coalesce-group leaders plus every
/// non-coalescable request, in submission order), and `followers[i]` lists
/// the duplicate positions answered by cloning leader `i`'s evaluation.
struct CoalescePlan {
    schedule: Vec<usize>,
    followers: Vec<Vec<usize>>,
}

impl CoalescePlan {
    /// Groups the first `admitted` requests by [`QueryRequest::coalesce_key`]
    /// in one serial O(n) pass. The first occurrence of a key leads (the
    /// same position the old claim-racing scheme deterministically favored
    /// in serial replay); later occurrences become its followers.
    fn new(requests: &[QueryRequest], admitted: usize) -> Self {
        let mut leader_of: HashMap<String, usize> = HashMap::new();
        let mut followers: Vec<Vec<usize>> = vec![Vec::new(); admitted];
        let mut schedule: Vec<usize> = Vec::with_capacity(admitted);
        for (i, request) in requests.iter().enumerate().take(admitted) {
            match request.coalesce_key() {
                Some(key) => match leader_of.entry(key) {
                    Entry::Vacant(slot) => {
                        slot.insert(i);
                        schedule.push(i);
                    }
                    Entry::Occupied(slot) => followers[*slot.get()].push(i),
                },
                // Pathless and deadline-carrying requests never share an
                // evaluation; they are scheduled individually.
                None => schedule.push(i),
            }
        }
        CoalescePlan {
            schedule,
            followers,
        }
    }
}

/// Re-marks a shared evaluation as coalesced for a duplicate position.
fn coalesced(result: Result<QueryResponse, Error>) -> Result<QueryResponse, Error> {
    result.map(|response| QueryResponse {
        cache: CacheStatus::Coalesced,
        ..response
    })
}

impl StackServer {
    /// Wraps a configured stack into a serving snapshot with the default
    /// shard count.
    #[must_use]
    pub fn new(stack: SecureWebStack) -> Self {
        Self::with_shards(stack, DEFAULT_SHARDS)
    }

    /// Like [`StackServer::new`] with an explicit shard count for the
    /// session table and L2 view cache (rounded up to a power of two,
    /// clamped to `1..=4096`).
    #[must_use]
    pub fn with_shards(stack: SecureWebStack, shards: usize) -> Self {
        let shards = shards.clamp(1, 4096).next_power_of_two();
        let stack = Arc::new(stack);
        // One compilation serves both slots: the artifact is immutable
        // and slot contents are whole-pair swaps.
        let t = Instant::now();
        let compiled = compile_stack(&stack);
        let initial_compile_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        StackServer {
            // Both slots start at the initial snapshot so a reader racing
            // the very first update can never observe an empty slot.
            snapshot: [
                TrackedRwLock::new(
                    "server.snapshot",
                    (Arc::clone(&stack), Arc::clone(&compiled)),
                ),
                TrackedRwLock::new("server.snapshot", (stack, compiled)),
            ],
            update_lock: TrackedMutex::new("server.update", ()),
            generation: TrackedAtomicU64::synchronizing("server.generation", 0),
            sessions: SessionShards::new(shards),
            cache: L2ViewCache::new(shards),
            metrics: MetricsInner::default(),
            faults: TrackedMutex::new("server.faults", None),
            faults_enabled: TrackedAtomicBool::synchronizing("server.faults_enabled", false),
            clock: TrackedAtomicU64::counter("server.clock", 0),
            queue_limit: TrackedAtomicUsize::counter("server.queue_limit", 0),
            analysis: TrackedMutex::new("server.analysis", None),
            analysis_gate: TrackedAtomicU8::counter("server.analysis_gate", 0),
            analysis_passes_run: TrackedAtomicU64::counter("server.analysis_passes_run", 0),
            analysis_passes_reused: TrackedAtomicU64::counter("server.analysis_passes_reused", 0),
            gate_denials: TrackedAtomicU64::counter("server.gate_denials", 0),
            last_passes_run: TrackedMutex::new("server.analysis_trace", Vec::new()),
            policy_analysis: TrackedMutex::new("server.policy_analysis", None),
            policy_passes_run: TrackedAtomicU64::counter("server.policy_passes_run", 0),
            policy_passes_reused: TrackedAtomicU64::counter("server.policy_passes_reused", 0),
            decision_mode: TrackedAtomicU8::counter(
                "server.decision_mode",
                DecisionMode::Compiled as u8,
            ),
            snapshot_compiles: TrackedAtomicU64::counter("server.snapshot_compiles", 1),
            snapshot_compile_ns: TrackedAtomicU64::counter(
                "server.snapshot_compile_ns",
                initial_compile_ns,
            ),
        }
    }

    /// Selects which decision machinery resolves views on a cache miss.
    /// Takes effect for every request that starts after the store; cached
    /// views computed under the previous mode stay valid (the two modes
    /// are equivalence-checked, so the bytes are the same).
    pub fn set_decision_mode(&self, mode: DecisionMode) {
        self.decision_mode.store(mode as u8, Ordering::Relaxed);
    }

    /// The configured [`DecisionMode`].
    #[must_use]
    pub fn decision_mode(&self) -> DecisionMode {
        if self.decision_mode.load(Ordering::Relaxed) == DecisionMode::Interpreted as u8 {
            DecisionMode::Interpreted
        } else {
            DecisionMode::Compiled
        }
    }

    /// The decision tables compiled from the current snapshot (published
    /// atomically with it; see [`websec_policy::CompiledPolicies`]).
    #[must_use]
    pub fn compiled_policies(&self) -> Arc<CompiledPolicies> {
        self.current_pair().1
    }

    /// Policy compilations performed so far: one at construction plus one
    /// per [`StackServer::update`] / [`StackServer::try_update`]
    /// publication. [`StackServer::invalidate_views`] republishes the
    /// existing artifact without recompiling, so the counter lets tests
    /// pin the compile-exactly-once-per-mutation invariant.
    #[must_use]
    pub fn snapshot_compiles(&self) -> u64 {
        self.snapshot_compiles.load(Ordering::Relaxed)
    }

    /// Arms a deterministic [`FaultPlan`] on this server and returns the
    /// live [`FaultInjector`] so callers can assert the injected schedule
    /// (per-rule fired counts) exactly. Replaces any previously installed
    /// plan. While a plan is armed, the worker-local session-handle cache
    /// is bypassed so every request deterministically traverses the
    /// shard-layer hook; with no plan the serving path pays exactly one
    /// atomic load.
    pub fn install_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let injector = Arc::new(FaultInjector::new(plan));
        *self.faults.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&injector));
        self.faults_enabled.store(true, Ordering::Release);
        injector
    }

    /// Disarms fault injection: subsequent requests serve normally (the
    /// self-heal contract — evicted sessions re-establish, evicted views
    /// recompute — is asserted by the chaos suite).
    pub fn clear_faults(&self) {
        self.faults_enabled.store(false, Ordering::Release);
        *self.faults.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// The armed injector, if any (one atomic load when faults are off).
    fn injector(&self) -> Option<Arc<FaultInjector>> {
        if !self.faults_enabled.load(Ordering::Acquire) {
            return None;
        }
        self.faults.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The logical clock, in ticks. It advances only on injected
    /// `SlowEval` faults, retry backoffs, and [`StackServer::advance_clock`]
    /// — never on wall time — so deadline behavior replays exactly.
    #[must_use]
    pub fn logical_now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the logical clock by `ticks`, returning the new value
    /// (models elapsed work in tests and simulations).
    pub fn advance_clock(&self, ticks: u64) -> u64 {
        self.clock.fetch_add(ticks, Ordering::Relaxed) + ticks
    }

    /// Caps each batch worker's run-queue depth for admission control: a
    /// [`StackServer::serve_batch`] call with more than
    /// `depth × workers` requests sheds the tail with `WS108`
    /// ([`Error::Overloaded`]) before any work starts. `0` (the default)
    /// disables shedding.
    pub fn set_queue_limit(&self, per_worker_depth: usize) {
        self.queue_limit.store(per_worker_depth, Ordering::Relaxed);
    }

    /// The configured per-worker admission depth (0 = unlimited).
    #[must_use]
    pub fn queue_limit(&self) -> usize {
        self.queue_limit.load(Ordering::Relaxed)
    }

    /// Number of shards in the session table and L2 view cache.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.sessions.len()
    }

    /// The current immutable snapshot.
    ///
    /// Never blocks on an in-progress [`StackServer::update`]'s mutation
    /// work and never panics: writers prepare the new stack privately and
    /// only swap an `Arc` into the spare slot, so the read path survives
    /// a panicked update closure untouched.
    #[must_use]
    pub fn snapshot(&self) -> Arc<SecureWebStack> {
        self.current_snapshot()
    }

    /// The current slot's snapshot. A poisoned slot heals itself: slot
    /// contents are whole-pair swaps, so the value under a poisoned lock
    /// is always a complete, valid snapshot.
    fn current_snapshot(&self) -> Arc<SecureWebStack> {
        self.current_pair().0
    }

    /// The current slot's `(stack, compiled)` pair.
    fn current_pair(&self) -> SnapshotPair {
        let generation = self.generation.load(Ordering::Acquire);
        let guard = self.snapshot[(generation & 1) as usize]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        (Arc::clone(&guard.0), Arc::clone(&guard.1))
    }

    /// The snapshot plus its validity token. Readers are wait-free in the
    /// uncontended (and every read-read) case: one generation load, one
    /// uncontended `try_read` of the current slot, one re-check. The only
    /// retry happens when a writer flips the generation concurrently — the
    /// re-check guarantees the token can never pair with the wrong
    /// snapshot.
    ///
    /// Infallible in practice; the `Result` is kept so serving paths stay
    /// future-proof against read-side failure modes.
    fn snapshot_with_token(
        &self,
    ) -> Result<(Arc<SecureWebStack>, Arc<CompiledPolicies>, Token), Error> {
        loop {
            let generation = self.generation.load(Ordering::Acquire);
            let slot = &self.snapshot[(generation & 1) as usize];
            let (stack, compiled) = match slot.try_read() {
                Ok(guard) => (Arc::clone(&guard.0), Arc::clone(&guard.1)),
                Err(TryLockError::Poisoned(poisoned)) => {
                    let guard = poisoned.into_inner();
                    (Arc::clone(&guard.0), Arc::clone(&guard.1))
                }
                Err(TryLockError::WouldBlock) => {
                    // A writer is republishing this slot, which means the
                    // generation just moved (or is about to): reload it and
                    // take the new current slot.
                    std::hint::spin_loop();
                    continue;
                }
            };
            if self.generation.load(Ordering::Acquire) == generation {
                let epoch = stack.policies.epoch();
                return Ok((
                    stack,
                    compiled,
                    Token {
                        generation,
                        epoch,
                    },
                ));
            }
            // An update flipped the slot between the generation read and
            // the slot read; retry so the token matches the snapshot.
        }
    }

    /// Installs `stack` (with the decision tables compiled from it) as the
    /// new current snapshot: writes the pair into the spare slot, flips
    /// the generation (Release — the publication edge readers acquire),
    /// and drops every cached view.
    ///
    /// Must be called with `update_lock` held — the spare slot is only
    /// "spare" while no other writer can flip the generation underneath.
    fn publish(&self, stack: Arc<SecureWebStack>, compiled: Arc<CompiledPolicies>) {
        let generation = self.generation.load(Ordering::Acquire);
        let spare = ((generation + 1) & 1) as usize;
        {
            let mut guard = self.snapshot[spare]
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *guard = (stack, compiled);
        }
        self.generation.fetch_add(1, Ordering::Release);
        self.cache.clear();
    }

    /// Compiles `stack` under the update lock, attributing the elapsed
    /// time and bumping the compile counter.
    fn compile_for_publication(&self, stack: &SecureWebStack) -> Arc<CompiledPolicies> {
        let t = Instant::now();
        let compiled = compile_stack(stack);
        self.snapshot_compile_ns.fetch_add(
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.snapshot_compiles.fetch_add(1, Ordering::Relaxed);
        compiled
    }

    /// Mutates the stack configuration (documents, policies, labels,
    /// context, gate) on a private clone of the snapshot, then publishes
    /// the clone into the spare slot and drops every cached view.
    ///
    /// Takes `&self`: mutation is safe *during* concurrent serving.
    /// In-flight requests complete against the snapshot they started with;
    /// any request that starts after `update` returns observes the new
    /// configuration (L1/L2 entries and coalesced results are
    /// token-checked, so none can survive the bump). Readers never wait on
    /// the mutation: `mutate` runs on the private clone, outside every
    /// slot lock — and if it panics, the current snapshot is untouched and
    /// serving continues unaffected.
    pub fn update<R>(&self, mutate: impl FnOnce(&mut SecureWebStack) -> R) -> R {
        let _writer = self
            .update_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut candidate = (*self.current_snapshot()).clone();
        let result = mutate(&mut candidate);
        let compiled = self.compile_for_publication(&candidate);
        self.publish(Arc::new(candidate), compiled);
        result
    }

    /// Explicitly invalidates every cached view (e.g. after out-of-band
    /// mutation of state neither the policy epoch nor the snapshot
    /// generation can observe). Republishes the *current* snapshot `Arc`
    /// (no deep clone, and no recompilation — the stack is unchanged, so
    /// the existing compiled artifact stays exact) so the generation bump
    /// moves readers to the other slot without changing what they see.
    pub fn invalidate_views(&self) {
        let _writer = self
            .update_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (stack, compiled) = self.current_pair();
        self.publish(stack, compiled);
    }

    /// Number of views currently cached in the shared L2 cache.
    #[deprecated(since = "0.2.0", note = "read metrics().cached_views instead")]
    #[must_use]
    pub fn cached_views(&self) -> usize {
        self.cache.len()
    }

    /// Number of established subject sessions.
    #[deprecated(since = "0.2.0", note = "read metrics().sessions_open instead")]
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.total_sessions() as usize
    }

    /// The full evaluation of one request against the current snapshot,
    /// using (and populating) the worker's local caches.
    ///
    /// `deadline` is an absolute logical-clock tick (computed from the
    /// request's budget when the server admitted it); the budget is
    /// re-checked here immediately before evaluation so a slow (injected)
    /// wait between queue-pop and eval still surfaces as `WS107`.
    fn serve_one(
        &self,
        request: &QueryRequest,
        worker: &mut WorkerState,
        local: &mut LocalMetrics,
        deadline: Option<u64>,
    ) -> Result<QueryResponse, Error> {
        let (stack, compiled, token) = worker.snapshot(self)?;
        let identity = &request.subject_profile().identity;
        let injector = self.injector();
        let ctx = injector.as_ref().map(|inj| FaultContext {
            injector: inj,
            subject: identity,
            doc: request.doc_name(),
            worker: worker.index,
        });
        let session = if let Some(ctx) = &ctx {
            // Chaos mode: bypass the worker-local session-handle cache so
            // every request deterministically traverses the shard-layer
            // hook (the L0 handle cache would otherwise hide the shard
            // from all but the first request per worker).
            self.sessions.get_or_establish(
                identity,
                &stack.session_key,
                stack.channel_protected,
                local,
                Some(ctx),
            )?
        } else {
            match worker.sessions.get(identity) {
                Some(session) => Arc::clone(session),
                None => {
                    let session = self.sessions.get_or_establish(
                        identity,
                        &stack.session_key,
                        stack.channel_protected,
                        local,
                        None,
                    )?;
                    worker
                        .sessions
                        .insert(identity.clone(), Arc::clone(&session));
                    session
                }
            }
        };
        let mut guard = match self.sessions.lock_session(identity, &session) {
            Some(guard) => guard,
            None => {
                // The session's holder panicked mid-transit: its sequence
                // state is suspect. Evict so the next request performs a
                // clean handshake; this request degrades to WS106.
                worker.sessions.remove(identity);
                self.sessions.evict(identity);
                return Err(Error::ShardPoisoned(format!(
                    "session '{identity}' poisoned mid-request; evicted for re-establishment"
                )));
            }
        };
        if let Some(ctx) = &ctx {
            for kind in ctx.check(FaultLayer::Channel) {
                match kind {
                    FaultKind::ChannelDrop => {
                        local.faults_injected += 1;
                        return Err(Error::Channel(
                            "injected fault: request record dropped in transit".into(),
                        ));
                    }
                    FaultKind::ChannelTamper => {
                        // Run the channel's *real* MAC rejection: seal the
                        // query, flip a wire byte, open at the server end.
                        local.faults_injected += 1;
                        let payload = request
                            .query_path()
                            .map_or(String::new(), |p| p.source().to_string());
                        return match guard.transit_to_server_tampered(payload.as_bytes()) {
                            Err(e) => Err(Error::Channel(format!("injected tamper: {e}"))),
                            // An unprotected channel has no MAC to refuse
                            // corrupted bytes; the serving layer must not
                            // evaluate a tampered query.
                            Ok(_) => Err(Error::Channel(
                                "injected tamper: unprotected channel delivered a corrupted \
                                 record"
                                    .into(),
                            )),
                        };
                    }
                    _ => {}
                }
            }
            for kind in ctx.check(FaultLayer::Eval) {
                match kind {
                    FaultKind::SlowEval { ticks } => {
                        local.faults_injected += 1;
                        self.clock.fetch_add(ticks, Ordering::Relaxed);
                    }
                    FaultKind::WorkerPanic => {
                        local.faults_injected += 1;
                        // Unwinds through serve_caught's boundary into a
                        // WS106 answer; the held session guard poisons its
                        // mutex, exercising the eviction/self-heal path —
                        // the panic IS the injected fault.
                        panic!("injected fault: worker panic for '{identity}'"); // lint:allow(panic)
                    }
                    _ => {}
                }
            }
        }
        if let Some(deadline) = deadline {
            let now = self.clock.load(Ordering::Relaxed);
            if now > deadline {
                return Err(Error::DeadlineExceeded(format!(
                    "budget exhausted before evaluation (logical clock {now} past deadline \
                     {deadline})"
                )));
            }
        }
        let mut resolver = CachedViews {
            l2: &self.cache,
            l1: &mut worker.l1,
            token,
            local,
            faults: ctx.as_ref(),
            compiled: match self.decision_mode() {
                DecisionMode::Compiled => Some(&*compiled),
                DecisionMode::Interpreted => None,
            },
        };
        stack.execute_in_session(request, &mut guard, &mut resolver)
    }

    /// [`StackServer::serve_one`] behind a panic boundary: a panicking
    /// evaluation answers `WS106` instead of killing the worker.
    fn serve_caught(
        &self,
        request: &QueryRequest,
        worker: &mut WorkerState,
        local: &mut LocalMetrics,
        deadline: Option<u64>,
    ) -> Result<QueryResponse, Error> {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.serve_one(request, worker, local, deadline)
        }));
        caught.unwrap_or_else(|_| {
            local.worker_panics += 1;
            Err(Error::ShardPoisoned(
                "request evaluation panicked; the batch degraded this request and continued"
                    .into(),
            ))
        })
    }

    /// Serves one request: session lookup (handshake only on first
    /// contact), the four-layer evaluation with the token-checked view
    /// caches plugged in, and metrics accounting. Runs behind the same
    /// panic boundary as batch workers, so an injected (or real) panic
    /// degrades to `WS106` instead of unwinding into the caller.
    pub fn serve(&self, request: &QueryRequest) -> Result<QueryResponse, Error> {
        let mut worker = WorkerState::default();
        let mut local = LocalMetrics::default();
        let deadline = request
            .deadline_budget()
            .map(|budget| self.clock.load(Ordering::Relaxed).saturating_add(budget));
        let result = self.serve_caught(request, &mut worker, &mut local, deadline);
        local.record_outcome(&result);
        self.absorb_local(&local);
        result
    }

    /// Flushes a worker's local accumulator: the cumulative counters in
    /// one pass, then the per-shard L2 hit/miss tallies (at most one RMW
    /// per touched shard). The single flush point that replaces the old
    /// per-request counter traffic.
    fn absorb_local(&self, local: &LocalMetrics) {
        self.metrics.absorb(local);
        self.cache
            .absorb_shard_tallies(&local.l2_shard_hits, &local.l2_shard_misses);
    }

    /// [`StackServer::serve`] wrapped in the bounded-retry loop of a
    /// [`RetryPolicy`]: transient failures ([`Error::is_transient`] —
    /// channel faults, poisoned shards, overload) are retried up to
    /// `policy.max_attempts` total attempts. Each retry first advances the
    /// logical clock by a decorrelated-jitter backoff (salted by the
    /// request's subject and document so distinct requests desynchronize),
    /// and a request-level deadline budget bounds the whole sequence:
    /// once the clock passes it, the loop stops with `WS107` without
    /// issuing another attempt.
    pub fn serve_with_retry(
        &self,
        request: &QueryRequest,
        policy: &RetryPolicy,
    ) -> Result<QueryResponse, Error> {
        let overall = request
            .deadline_budget()
            .map(|budget| self.clock.load(Ordering::Relaxed).saturating_add(budget));
        let salt = shard::identity_hash(&format!(
            "{}\u{1f}{}",
            request.subject_profile().identity,
            request.doc_name()
        ));
        let attempts = policy.max_attempts.max(1);
        let mut prev = policy.base_ticks.max(1);
        let mut last_transient = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = policy.backoff_ticks(attempt, prev, salt);
                prev = backoff;
                self.clock.fetch_add(backoff, Ordering::Relaxed);
                let mut local = LocalMetrics::default();
                local.retries = 1;
                self.absorb_local(&local);
            }
            if let Some(deadline) = overall {
                let now = self.clock.load(Ordering::Relaxed);
                if now > deadline {
                    let result = Err(Error::DeadlineExceeded(format!(
                        "retry budget exhausted after {attempt} attempt(s) (logical clock \
                         {now} past deadline {deadline})"
                    )));
                    let mut local = LocalMetrics::default();
                    local.record_outcome(&result);
                    self.absorb_local(&local);
                    return result;
                }
            }
            match self.serve(request) {
                Ok(response) => return Ok(response),
                Err(e) if e.is_transient() => last_transient = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_transient.unwrap_or_else(|| {
            Error::InvalidRequest("retry policy allowed zero attempts".into())
        }))
    }

    /// Serves a [`BatchRequest`] across its configured workers on the
    /// lock-free deque/injector scheduler ([`scheduler`]).
    ///
    /// Results are positional: `results[i]` answers `requests()[i]`, and
    /// every response payload is byte-identical to what a serial
    /// [`StackServer::serve`] loop would produce (cache/coalescing status
    /// and timings legitimately differ). Identical requests are grouped
    /// serially at batch entry and coalesced onto one evaluation; only
    /// group leaders are scheduled.
    ///
    /// A panicking evaluation or poisoned shard answers the affected
    /// requests with `WS106` ([`Error::ShardPoisoned`]); the rest of the
    /// batch completes normally.
    ///
    /// **Admission control**: when a queue limit is configured
    /// ([`StackServer::set_queue_limit`]), at most `limit × workers`
    /// requests are admitted; the tail of the batch is shed with `WS108`
    /// ([`Error::Overloaded`]) before any evaluation starts — shedding is
    /// positional and deterministic, so the same batch against the same
    /// limit always sheds the same requests. **Deadlines**: each admitted
    /// request's budget — the tighter of its own and the batch-level
    /// [`BatchRequest::deadline_ticks`] — is converted to an absolute
    /// logical-clock deadline at batch entry and checked when a worker
    /// claims the request (and again pre-eval); an exhausted budget
    /// answers `WS107` without evaluating.
    pub fn serve_batch(&self, batch: &BatchRequest) -> BatchResponse {
        let requests = batch.requests();
        let mut stats = BatchStats::default();
        if requests.is_empty() {
            return BatchResponse {
                results: Vec::new(),
                stats,
            };
        }
        let requested_workers = batch.worker_count();
        let limit = self.queue_limit.load(Ordering::Relaxed);
        let admitted = if limit == 0 {
            requests.len()
        } else {
            requests.len().min(limit.saturating_mul(requested_workers))
        };
        let workers = requested_workers.min(admitted);
        stats.workers = workers;
        stats.admitted = admitted;
        stats.shed = requests.len() - admitted;
        let entry_tick = self.clock.load(Ordering::Relaxed);
        let batch_deadline = batch
            .deadline_budget()
            .map(|budget| entry_tick.saturating_add(budget));
        let deadlines: Vec<Option<u64>> = requests[..admitted]
            .iter()
            .map(|r| {
                let own = r
                    .deadline_budget()
                    .map(|budget| entry_tick.saturating_add(budget));
                match (own, batch_deadline) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .collect();
        // Singleflight off the hot path: group duplicates serially now, so
        // workers never touch a coalescing lock while requests are in
        // flight — followers are answered by cloning their leader.
        let plan = CoalescePlan::new(requests, admitted);
        let sched = Scheduler::new(&plan.schedule, workers);

        let mut out: Vec<Option<Result<QueryResponse, Error>>> = Vec::new();
        out.resize_with(requests.len(), || None);
        if admitted < requests.len() {
            let mut local = LocalMetrics::default();
            for slot in out.iter_mut().skip(admitted) {
                let result = Err(Error::Overloaded(format!(
                    "admission control shed this request: batch of {} exceeds queue capacity \
                     {admitted} ({workers} worker(s) x depth {limit})",
                    requests.len()
                )));
                local.record_outcome(&result);
                *slot = Some(result);
            }
            self.absorb_local(&local);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let sched = &sched;
                    let plan = &plan;
                    let deadlines = &deadlines;
                    scope.spawn(move || self.worker_loop(w, requests, deadlines, sched, plan))
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok((done, local)) => {
                        stats.coalesced += local.coalesced;
                        stats.steals += local.steals;
                        stats.stolen_requests += local.stolen_requests;
                        stats.injector_pops += local.injector_pops;
                        self.absorb_local(&local);
                        for (i, result) in done {
                            out[i] = Some(result);
                        }
                    }
                    Err(_) => {
                        // The worker died outside the per-request panic
                        // boundary. Its unfinished slots fall through to
                        // WS106 below; its claimed-but-unanswered deque
                        // items are already past the cursors, so no other
                        // worker double-answers them.
                        let mut local = LocalMetrics::default();
                        local.worker_panics += 1;
                        self.absorb_local(&local);
                    }
                }
            }
        });
        let results = out
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    let result = Err(Error::ShardPoisoned(
                        "worker abandoned this request (panicked outside evaluation)".into(),
                    ));
                    let mut local = LocalMetrics::default();
                    local.record_outcome(&result);
                    self.absorb_local(&local);
                    result
                })
            })
            .collect();
        BatchResponse { results, stats }
    }

    /// Positional predecessor of [`StackServer::serve_batch`], answering
    /// with the bare result vector.
    #[deprecated(
        since = "0.2.0",
        note = "build a BatchRequest (BatchRequest::new(requests).workers(n)) and call \
                serve_batch(&batch); the BatchResponse carries the same positional results \
                plus per-batch scheduler stats"
    )]
    pub fn serve_batch_positional(
        &self,
        requests: &[QueryRequest],
        workers: usize,
    ) -> Vec<Result<QueryResponse, Error>> {
        self.serve_batch(&BatchRequest::new(requests.to_vec()).workers(workers))
            .results
    }

    /// One batch worker: claim indices from the scheduler (own deque, then
    /// the injector, then stealing), answer each leader and clone its
    /// result to any coalesced followers, and return the local metrics for
    /// a single flush at scope exit.
    fn worker_loop(
        &self,
        worker_index: usize,
        requests: &[QueryRequest],
        deadlines: &[Option<u64>],
        sched: &Scheduler,
        plan: &CoalescePlan,
    ) -> (
        Vec<(usize, Result<QueryResponse, Error>)>,
        Box<LocalMetrics>,
    ) {
        let mut worker = WorkerState {
            index: Some(worker_index),
            ..WorkerState::default()
        };
        let mut local = Box::new(LocalMetrics::default());
        let mut done = Vec::new();
        while let Some(i) = sched.next(worker_index, &mut local) {
            let request = &requests[i];
            // Claim-time deadline check: work that waited past its budget
            // is answered WS107 without paying for an evaluation.
            let expired = deadlines[i].and_then(|deadline| {
                let now = self.clock.load(Ordering::Relaxed);
                (now > deadline).then(|| (now, deadline))
            });
            let result = match expired {
                Some((now, deadline)) => Err(Error::DeadlineExceeded(format!(
                    "deadline passed while queued (logical clock {now} past deadline \
                     {deadline})"
                ))),
                None => self.serve_caught(request, &mut worker, &mut local, deadlines[i]),
            };
            local.record_outcome(&result);
            for &follower in &plan.followers[i] {
                let shared = coalesced(result.clone());
                local.record_outcome(&shared);
                done.push((follower, shared));
            }
            done.push((i, result));
        }
        (done, local)
    }

    /// A consistent snapshot of the cumulative serving statistics,
    /// including the per-shard contention breakdown.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut stats = vec![ShardStats::default(); self.sessions.len()];
        self.sessions.fill_stats(&mut stats);
        self.cache.fill_stats(&mut stats);
        let mut snap = self.metrics.snapshot(stats);
        snap.analysis_passes_run = self.analysis_passes_run.load(Ordering::Relaxed);
        snap.analysis_passes_reused = self.analysis_passes_reused.load(Ordering::Relaxed);
        snap.gate_denials = self.gate_denials.load(Ordering::Relaxed);
        snap.snapshot_compiles = self.snapshot_compiles.load(Ordering::Relaxed);
        snap.snapshot_compile_ns = self.snapshot_compile_ns.load(Ordering::Relaxed);
        let (errors, warnings) = self.analysis_gauges();
        snap.analysis_errors = errors;
        snap.analysis_warnings = warnings;
        snap.policy_passes_run = self.policy_passes_run.load(Ordering::Relaxed);
        snap.policy_passes_reused = self.policy_passes_reused.load(Ordering::Relaxed);
        let (errors, warnings) = self.policy_gauges();
        snap.policy_errors = errors;
        snap.policy_warnings = warnings;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::mls::{Clearance, ContextLabel, Level};
    use websec_policy::{Authorization, ObjectSpec, Privilege, SubjectProfile, SubjectSpec};
    use websec_xml::Path;

    fn stack() -> SecureWebStack {
        let mut s = SecureWebStack::new([8u8; 32]);
        s.add_document(
            "h.xml",
            Document::parse(
                "<hospital><patient id=\"p1\"><name>Alice</name></patient><admin><budget>9</budget></admin></hospital>",
            )
            .unwrap(),
            ContextLabel::fixed(Level::Unclassified),
        );
        s.policies.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Portion {
                document: "h.xml".into(),
                path: Path::parse("//patient").unwrap(),
            }).privilege(Privilege::Read).grant());
        s
    }

    fn doctor_request() -> QueryRequest {
        QueryRequest::for_doc("h.xml")
            .path(Path::parse("//patient").unwrap())
            .subject(&SubjectProfile::new("doctor"))
            .clearance(Clearance(Level::Unclassified))
    }

    #[test]
    fn serve_reuses_session_and_cache() {
        let server = StackServer::new(stack());
        let first = server.serve(&doctor_request()).unwrap();
        assert_eq!(first.cache, CacheStatus::Miss);
        for _ in 0..9 {
            let again = server.serve(&doctor_request()).unwrap();
            assert_eq!(again.cache, CacheStatus::Hit);
            assert_eq!(again.xml, first.xml);
        }
        let m = server.metrics();
        assert_eq!(m.requests, 10);
        assert_eq!(m.sessions_established, 1);
        assert_eq!(m.session_reuses, 9);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 9);
        assert!(m.cache_hit_rate() > 0.89);
        assert_eq!(m.sessions_open, 1);
        assert_eq!(m.cached_views, 1);
        // Single-request serves use a fresh worker state: all hits are L2.
        assert_eq!(m.l1_hits, 0);
        assert_eq!(m.l2_hits, 9);
        assert_eq!(m.latency.count, 10);
        assert!(m.latency.mean_ns() > 0.0);
        assert!(m.latency.quantile_upper_ns(0.5) > 0);
    }

    #[test]
    fn update_invalidates_views_and_epoch_keys_cache() {
        let server = StackServer::new(stack());
        let before = server.serve(&doctor_request()).unwrap();
        assert!(before.xml.contains("Alice"));
        assert_eq!(server.metrics().cached_views, 1);
        let epoch_before = server.snapshot().policies.epoch();
        server.update(|s| {
            s.policies.add(Authorization::for_subject(SubjectSpec::Identity("doctor".into())).on(ObjectSpec::Document("h.xml".into())).privilege(Privilege::Read).deny());
        });
        assert!(server.snapshot().policies.epoch() > epoch_before);
        assert_eq!(server.metrics().cached_views, 0, "stale views evicted");
        let after = server.serve(&doctor_request()).unwrap();
        assert_eq!(after.cache, CacheStatus::Miss, "view recomputed");
        assert!(!after.xml.contains("Alice"), "{}", after.xml);
    }

    #[test]
    fn batch_results_are_positional() {
        let server = StackServer::new(stack());
        let requests: Vec<QueryRequest> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    doctor_request()
                } else {
                    QueryRequest::for_doc("nope.xml")
                        .path(Path::parse("//x").unwrap())
                        .subject(&SubjectProfile::new("doctor"))
                }
            })
            .collect();
        let response = server.serve_batch(&BatchRequest::new(requests).workers(8));
        assert_eq!(response.results.len(), 64);
        for (i, result) in response.results.iter().enumerate() {
            if i % 2 == 0 {
                assert!(result.as_ref().unwrap().xml.contains("Alice"));
            } else {
                assert_eq!(result.as_ref().unwrap_err().code(), "WS101");
            }
        }
        assert_eq!(response.stats.admitted, 64);
        assert_eq!(response.stats.shed, 0);
        assert!(response.stats.workers <= 8);
        let m = server.metrics();
        assert_eq!(m.requests, 64);
        assert_eq!(m.allowed, 32);
        assert_eq!(m.errors, 32);
    }

    #[test]
    fn identical_batch_requests_coalesce_onto_one_evaluation() {
        let server = StackServer::new(stack());
        let requests = vec![doctor_request(); 256];
        let response = server.serve_batch(&BatchRequest::new(requests).workers(4));
        let baseline = server.serve(&doctor_request()).unwrap();
        for result in &response.results {
            assert_eq!(result.as_ref().unwrap().xml, baseline.xml);
        }
        // The serial precompute groups all 256 identical requests under one
        // leader: exactly one evaluation, 255 coalesced clones.
        assert_eq!(response.stats.coalesced, 255);
        let m = server.metrics();
        assert_eq!(m.coalesced, 255);
        // Evaluations actually run: misses + real hits + coalesced = allowed.
        assert_eq!(m.cache_hits + m.cache_misses + m.coalesced, m.allowed);
    }

    #[test]
    fn scheduler_completes_skewed_batches_and_counts_consistently() {
        let server = StackServer::new(stack());
        // Many distinct paths so little coalescing is possible, forcing
        // real per-request work onto the deques.
        let requests: Vec<QueryRequest> = (0..128)
            .map(|i| {
                QueryRequest::for_doc("h.xml")
                    .path(Path::parse(&format!("//patient[@id='p{}']", i % 64)).unwrap())
                    .subject(&SubjectProfile::new("doctor"))
                    .clearance(Clearance(Level::Unclassified))
            })
            .collect();
        let response = server.serve_batch(&BatchRequest::new(requests).workers(4));
        assert_eq!(response.results.len(), 128);
        assert!(response.results.iter().all(Result::is_ok));
        // On a single-core box workers may drain their own deques without
        // ever idling, so steals are opportunistic — the counters merely
        // must be consistent (each deque steal moves exactly one request).
        let m = server.metrics();
        assert!(m.stolen_requests >= m.steals);
        assert_eq!(response.stats.steals, response.stats.stolen_requests);
    }

    #[test]
    fn batch_deadline_caps_every_member_request() {
        use crate::faults::{FaultKind, FaultRule};
        // Every evaluation injects a 10-tick slowdown. With a batch budget
        // of 0 ticks the first evaluation pushes the logical clock past
        // the batch deadline, so every request — even those carrying a
        // generous 100-tick budget of their own (the batch's bound is the
        // tighter one) — answers WS107.
        let server = StackServer::new(stack());
        let _ = server.install_faults(
            FaultPlan::seeded(3).rule(FaultRule::new(FaultKind::SlowEval { ticks: 10 })),
        );
        let requests: Vec<QueryRequest> = (0..6)
            .map(|i| {
                QueryRequest::for_doc("h.xml")
                    .path(Path::parse("//patient").unwrap())
                    .subject(&SubjectProfile::new(&format!("subject-{i}")))
                    .deadline_ticks(100)
            })
            .collect();
        let batch = BatchRequest::new(requests.clone())
            .workers(1)
            .deadline_ticks(0);
        let response = server.serve_batch(&batch);
        for result in &response.results {
            assert_eq!(result.as_ref().unwrap_err().code(), "WS107");
        }
        // Without the batch cap the per-request 100-tick budgets absorb
        // the same slowdowns comfortably.
        server.clear_faults();
        let _ = server.install_faults(
            FaultPlan::seeded(3).rule(FaultRule::new(FaultKind::SlowEval { ticks: 10 })),
        );
        let response = server.serve_batch(&BatchRequest::new(requests).workers(1));
        assert!(response.results.iter().all(Result::is_ok));
    }

    #[test]
    fn poisoned_session_degrades_to_ws106_and_recovers() {
        let server = StackServer::new(stack());
        server.serve(&doctor_request()).unwrap();
        // Poison the doctor's session mutex by panicking while holding it.
        let session = {
            let mut local = LocalMetrics::default();
            let (stack, _, _) = server.snapshot_with_token().unwrap();
            server
                .sessions
                .get_or_establish(
                    "doctor",
                    &stack.session_key,
                    stack.channel_protected,
                    &mut local,
                    None,
                )
                .unwrap()
        };
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = session.lock().unwrap();
                    panic!("poison the session");
                })
                .join()
        });
        let err = server.serve(&doctor_request()).unwrap_err();
        assert_eq!(err.code(), "WS106");
        assert!(err.to_string().contains("WS106"));
        // The poisoned session was evicted: the next request re-establishes
        // a clean one and succeeds.
        let recovered = server.serve(&doctor_request()).unwrap();
        assert!(recovered.xml.contains("Alice"));
        let m = server.metrics();
        assert_eq!(m.errors, 1);
        assert!(m.sessions_established >= 2);
    }

    #[test]
    fn per_shard_stats_cover_all_shards() {
        let server = StackServer::with_shards(stack(), 8);
        assert_eq!(server.shard_count(), 8);
        for i in 0..32 {
            let request = QueryRequest::for_doc("h.xml")
                .path(Path::parse("//patient").unwrap())
                .subject(&SubjectProfile::new(&format!("subject-{i}")))
                .clearance(Clearance(Level::Unclassified));
            let _ = server.serve(&request);
        }
        let m = server.metrics();
        assert_eq!(m.per_shard.len(), 8);
        assert_eq!(m.per_shard.iter().map(|s| s.sessions_open).sum::<u64>(), 32);
        let used = m.per_shard.iter().filter(|s| s.sessions_open > 0).count();
        assert!(used > 2, "identities clumped into {used} shards");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(StackServer::with_shards(stack(), 3).shard_count(), 4);
        assert_eq!(StackServer::with_shards(stack(), 0).shard_count(), 1);
        assert_eq!(StackServer::with_shards(stack(), 16).shard_count(), 16);
    }
}
