//! Incremental, token-keyed re-analysis and the update gate.
//!
//! The serving layer caches the most recent analyzer run keyed by the same
//! `{generation, epoch}` [`Token`] that guards the policy-view caches. On
//! [`StackServer::analyze`]:
//!
//! * an unchanged token returns the cached [`Report`] wholesale (zero
//!   passes executed);
//! * a changed token fingerprints every input [`Section`] (FNV-1a over the
//!   section's deterministic rendering) and re-runs only the passes whose
//!   declared sections ([`websec_analyzer::PassId::sections`]) actually
//!   changed, splicing cached diagnostics in for the rest.
//!
//! The [`AnalysisGate`] decides what updates do with findings:
//! [`AnalysisGate::Off`] skips analysis entirely, [`AnalysisGate::Warn`]
//! analyzes after committing (findings surface through
//! [`super::MetricsSnapshot`]), and [`AnalysisGate::Deny`] pre-validates the
//! mutation on a copy of the stack and refuses to commit — with a stable
//! `WS109` error — when it would introduce *new* error-severity findings.
//!
//! Lock order: the update mutex is the server's outermost lock, taken
//! before any snapshot slot; the snapshot locks are in turn always taken
//! before the analysis mutex, never the reverse
//! ([`StackServer::try_update`] holds the update lock across validation —
//! so no concurrent writer can interleave between validation and commit —
//! but only touches the analysis cache after publishing and releasing).

use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::time::Instant;

use super::cache::Token;
use super::StackServer;
use crate::error::Error;
use crate::stack::SecureWebStack;
use websec_analyzer::policy_verify::{self, PolicyPassId, PolicyVerifyInput};
use websec_analyzer::{run_pass, AnalyzerInput, Diagnostic, PassId, Report, Section, Severity};
use websec_policy::{CompiledPolicies, PolicyEngine, PolicyStore, Privilege};

/// What [`StackServer::try_update`] does with analyzer findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisGate {
    /// No analysis on update (the default — updates are infallible).
    #[default]
    Off = 0,
    /// Analyze after committing: findings never block the update but are
    /// cached and surfaced through [`super::MetricsSnapshot`].
    Warn = 1,
    /// Pre-validate on a copy of the stack: an update introducing *new*
    /// error-severity findings is rejected with `WS109`
    /// ([`Error::AnalysisRejected`]) and the snapshot stays unchanged.
    Deny = 2,
}

/// Number of fingerprinted input sections.
pub(super) const SECTION_COUNT: usize = Section::ALL.len();
/// Number of analyzer passes.
pub(super) const PASS_COUNT: usize = PassId::ALL.len();

/// The cached result of one analyzer run, keyed by its validity token.
pub(super) struct AnalysisState {
    /// The `{generation, epoch}` token the run was computed at.
    token: Token,
    /// Per-[`Section`] fingerprints (indexed like [`Section::ALL`]).
    fingerprints: [u64; SECTION_COUNT],
    /// Per-pass diagnostics (indexed like [`PassId::ALL`]).
    results: Vec<Vec<Diagnostic>>,
    /// The assembled, normalized report.
    report: Report,
}

/// Number of policy-verifier passes (WS013–WS018).
pub(super) const POLICY_PASS_COUNT: usize = PolicyPassId::ALL.len();

/// The input sections the policy verifier reads. Every WS013–WS018 pass
/// declares exactly these two ([`PolicyPassId::sections`]), so the suite
/// caches all-or-nothing: if neither fingerprint moved, the whole run is
/// reused; if either did, all six passes re-run (they share the compiled
/// artifact, which any policy or document change invalidates wholesale).
const POLICY_SECTIONS: [Section; 2] = [Section::Policy, Section::Documents];

/// The cached result of one policy-verifier run.
pub(super) struct PolicyAnalysisState {
    /// The `{generation, epoch}` token the run was computed at.
    token: Token,
    /// Fingerprints of [`POLICY_SECTIONS`], in that order.
    fingerprints: [u64; POLICY_SECTIONS.len()],
    /// The normalized WS013–WS018 report.
    report: Report,
}

/// FNV-1a over a section's deterministic rendering: cheap, dependency-free,
/// and stable within a process — exactly what a change detector needs.
fn fnv1a(data: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in data.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deterministic rendering of one analyzer input section of `stack`.
/// Renderings use `Debug` over BTree-backed (deterministically ordered)
/// structures; the one `HashMap` (document labels) is sorted by name
/// first.
fn render_section(stack: &SecureWebStack, section: Section) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    match section {
        Section::Policy => {
            let _ = write!(
                s,
                "{};{:?};{:?}",
                stack.policies.epoch(),
                stack.policies.authorizations(),
                stack.policies.hierarchy.seniority_pairs()
            );
        }
        Section::Documents => {
            for name in stack.documents.names() {
                if let Some(doc) = stack.documents.get(name) {
                    let _ = write!(s, "{name}\u{1f}{}\u{1e}", doc.to_xml_string());
                }
            }
        }
        Section::Labels => {
            let mut labels: Vec<(String, String)> = stack
                .documents
                .names()
                .iter()
                .filter_map(|n| {
                    stack.label_of(n).map(|l| (n.to_string(), format!("{l:?}")))
                })
                .collect();
            labels.sort();
            let _ = write!(s, "{labels:?}");
        }
        Section::Catalog => {
            for triple in stack.catalog.all() {
                let _ = writeln!(s, "{triple}");
            }
        }
        Section::Privacy => {
            let _ = write!(
                s,
                "{:?};{:?};{:?}",
                stack.privacy_constraints, stack.table_schemas, stack.sanitized_documents
            );
        }
        Section::Rdf => {
            let _ = write!(s, "{:?};{:?}", stack.context, stack.semantic_stores);
        }
        Section::Dissem => {
            let _ = write!(s, "{:?}", stack.dissemination_audits);
        }
        Section::Uddi => {
            let _ = write!(s, "{:?}", stack.uddi);
        }
        Section::Subjects => {
            let _ = write!(s, "{:?}", stack.registered_profiles);
        }
    }
    s
}

/// Fingerprints every analyzer input section of `stack`.
pub(super) fn section_fingerprints(stack: &SecureWebStack) -> [u64; SECTION_COUNT] {
    let mut out = [0u64; SECTION_COUNT];
    for (i, section) in Section::ALL.iter().enumerate() {
        out[i] = fnv1a(&render_section(stack, *section));
    }
    out
}

/// Fingerprints only the sections the policy verifier reads.
fn policy_fingerprints(stack: &SecureWebStack) -> [u64; POLICY_SECTIONS.len()] {
    let mut out = [0u64; POLICY_SECTIONS.len()];
    for (i, section) in POLICY_SECTIONS.iter().enumerate() {
        out[i] = fnv1a(&render_section(stack, *section));
    }
    out
}

/// Runs the full WS013–WS018 suite over `stack`'s documents and the
/// decision plane compiled from it.
pub(super) fn run_policy_verifier(stack: &SecureWebStack, compiled: &CompiledPolicies) -> Report {
    let mut input = PolicyVerifyInput::new(compiled);
    for name in stack.documents.names() {
        if let Some(doc) = stack.documents.get(name) {
            input.documents.push((name, doc));
        }
    }
    policy_verify::verify_policies(&input)
}

/// Machine lines of the error-severity findings in `report`.
fn error_lines(report: &Report) -> BTreeSet<String> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(Diagnostic::machine_line)
        .collect()
}

impl StackServer {
    /// Sets the [`AnalysisGate`] governing subsequent
    /// [`StackServer::try_update`] calls.
    pub fn set_analysis_gate(&self, gate: AnalysisGate) {
        self.analysis_gate.store(gate as u8, Ordering::Relaxed);
    }

    /// The currently configured analysis gate.
    #[must_use]
    pub fn analysis_gate(&self) -> AnalysisGate {
        match self.analysis_gate.load(Ordering::Relaxed) {
            1 => AnalysisGate::Warn,
            2 => AnalysisGate::Deny,
            _ => AnalysisGate::Off,
        }
    }

    /// Analyzes the current snapshot **incrementally**: results are cached
    /// keyed by the snapshot's `{generation, epoch}` token, and when the
    /// token moved, only the passes whose input sections' fingerprints
    /// changed re-run — cached diagnostics are spliced in for the rest.
    /// The pass-run/reuse split is observable through
    /// [`super::MetricsSnapshot`] and [`StackServer::last_passes_run`].
    #[must_use]
    pub fn analyze(&self) -> Report {
        let Ok((stack, _, token)) = self.snapshot_with_token() else {
            return Report::default();
        };
        self.analyze_snapshot(&stack, token)
    }

    /// Diagnostic codes of the passes the most recent
    /// [`StackServer::analyze`] call actually executed, in pass order
    /// (empty when the cached report was reused wholesale).
    #[must_use]
    pub fn last_passes_run(&self) -> Vec<&'static str> {
        self.last_passes_run.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    fn analyze_snapshot(&self, stack: &SecureWebStack, token: Token) -> Report {
        let mut slot = self.analysis.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(state) = slot.as_ref() {
            if state.token == token {
                self.analysis_passes_reused
                    .fetch_add(PASS_COUNT as u64, Ordering::Relaxed);
                *self.last_passes_run.lock().unwrap_or_else(PoisonError::into_inner) = Vec::new();
                return state.report.clone();
            }
        }
        let fingerprints = section_fingerprints(stack);
        let prev = slot.take();
        let mut results: Vec<Vec<Diagnostic>> = Vec::with_capacity(PASS_COUNT);
        let mut ran: Vec<&'static str> = Vec::new();
        stack.with_analyzer_input(|input| {
            for (i, pass) in PassId::ALL.iter().enumerate() {
                let unchanged = prev.as_ref().is_some_and(|p| {
                    pass.sections().iter().all(|section| {
                        Section::ALL
                            .iter()
                            .position(|s| s == section)
                            .is_some_and(|idx| p.fingerprints[idx] == fingerprints[idx])
                    })
                });
                if unchanged {
                    // `unchanged` implies `prev` is Some; the fallback arm
                    // is unreachable but keeps the path panic-free.
                    results.push(
                        prev.as_ref()
                            .map(|p| p.results[i].clone())
                            .unwrap_or_default(),
                    );
                } else {
                    ran.push(pass.code());
                    results.push(run_pass(input, *pass));
                }
            }
        });
        let mut report = Report::default();
        for r in &results {
            report.diagnostics.extend(r.iter().cloned());
        }
        report.normalize();
        self.analysis_passes_run
            .fetch_add(ran.len() as u64, Ordering::Relaxed);
        self.analysis_passes_reused
            .fetch_add((PASS_COUNT - ran.len()) as u64, Ordering::Relaxed);
        *self.last_passes_run.lock().unwrap_or_else(PoisonError::into_inner) = ran;
        *slot = Some(AnalysisState {
            token,
            fingerprints,
            results,
            report: report.clone(),
        });
        report
    }

    /// The cached report's error/warning counts, for the metrics snapshot
    /// (zeros until the first analyze).
    pub(super) fn analysis_gauges(&self) -> (u64, u64) {
        let slot = self.analysis.lock().unwrap_or_else(PoisonError::into_inner);
        match slot.as_ref() {
            Some(state) => {
                let errors = state.report.count_at_least(Severity::Error) as u64;
                let at_least_warning = state.report.count_at_least(Severity::Warning) as u64;
                (errors, at_least_warning - errors)
            }
            None => (0, 0),
        }
    }

    /// Runs the static policy verifier (WS013–WS018,
    /// [`websec_analyzer::policy_verify`]) over the current snapshot's
    /// compiled decision plane, **incrementally**: the run is cached
    /// keyed by the snapshot's `{generation, epoch}` token, and when the
    /// token moved without the policy base or the documents changing
    /// (fingerprint-checked — e.g. after
    /// [`StackServer::invalidate_views`]), the cached report is reused
    /// wholesale. The run/reuse split is observable through
    /// [`super::MetricsSnapshot::policy_passes_run`] and
    /// [`super::MetricsSnapshot::policy_passes_reused`].
    #[must_use]
    pub fn verify_policies(&self) -> Report {
        let Ok((stack, compiled, token)) = self.snapshot_with_token() else {
            return Report::default();
        };
        self.verify_policies_snapshot(&stack, &compiled, token)
    }

    fn verify_policies_snapshot(
        &self,
        stack: &SecureWebStack,
        compiled: &CompiledPolicies,
        token: Token,
    ) -> Report {
        let mut slot = self
            .policy_analysis
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(state) = slot.as_ref() {
            if state.token == token {
                self.policy_passes_reused
                    .fetch_add(POLICY_PASS_COUNT as u64, Ordering::Relaxed);
                return state.report.clone();
            }
        }
        let fingerprints = policy_fingerprints(stack);
        if let Some(state) = slot.as_mut() {
            if state.fingerprints == fingerprints {
                // The token moved (generation bump, unrelated epoch churn)
                // but neither input section did: refresh the key, reuse
                // the whole run.
                state.token = token;
                self.policy_passes_reused
                    .fetch_add(POLICY_PASS_COUNT as u64, Ordering::Relaxed);
                return state.report.clone();
            }
        }
        let report = run_policy_verifier(stack, compiled);
        self.policy_passes_run
            .fetch_add(POLICY_PASS_COUNT as u64, Ordering::Relaxed);
        *slot = Some(PolicyAnalysisState {
            token,
            fingerprints,
            report: report.clone(),
        });
        report
    }

    /// The cached policy-verifier report's error/warning counts, for the
    /// metrics snapshot (zeros until the first verify).
    pub(super) fn policy_gauges(&self) -> (u64, u64) {
        let slot = self
            .policy_analysis
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match slot.as_ref() {
            Some(state) => {
                let errors = state.report.count_at_least(Severity::Error) as u64;
                let at_least_warning = state.report.count_at_least(Severity::Warning) as u64;
                (errors, at_least_warning - errors)
            }
            None => (0, 0),
        }
    }

    /// Proves the current snapshot's compiled decision tables equivalent
    /// to the live policy base, at the level static analysis can see:
    ///
    /// 1. the policy passes — WS001 (conflict detection) and WS002
    ///    (shadowed/unreachable rules) — are re-run over a
    ///    [`websec_policy::CompiledPolicies::reconstruct_store`]
    ///    reconstruction and must produce **byte-identical** machine
    ///    lines (diagnostics name authorization ids, so identity — not
    ///    just cardinality — is checked);
    /// 2. the per-document Browse/Read equivalence classes projected from
    ///    the compiled tables must match the interpreter's
    ///    [`PolicyEngine::policy_equivalence_classes`] partition exactly;
    /// 3. the artifact's baked epoch must match the snapshot's policy
    ///    epoch (a stale artifact can never pass as current).
    ///
    /// Returns the shared machine lines on success.
    ///
    /// # Errors
    /// `WS109` ([`Error::AnalysisRejected`]) describing the first
    /// divergence found.
    pub fn verify_compiled(&self) -> Result<Vec<String>, Error> {
        let (stack, compiled, _) = self.snapshot_with_token()?;
        if compiled.epoch() != stack.policies.epoch() {
            return Err(Error::AnalysisRejected(format!(
                "compiled artifact baked at policy epoch {} but the snapshot is at epoch {}",
                compiled.epoch(),
                stack.policies.epoch()
            )));
        }
        let reconstructed = compiled.reconstruct_store();
        let policy_passes = [PassId::Ws001, PassId::Ws002];
        let machine_lines = |store: &PolicyStore| -> Vec<String> {
            let mut input = AnalyzerInput::new(store, stack.engine.strategy);
            for name in stack.documents.names() {
                if let Some(doc) = stack.documents.get(name) {
                    input.documents.push((name, doc));
                }
            }
            policy_passes
                .iter()
                .flat_map(|pass| run_pass(&input, *pass))
                .map(|d| d.machine_line())
                .collect()
        };
        let live = machine_lines(&stack.policies);
        let rebuilt = machine_lines(&reconstructed);
        if live != rebuilt {
            return Err(Error::AnalysisRejected(format!(
                "WS001/WS002 findings diverge between the live policy base and the compiled \
                 reconstruction:\nlive: {live:?}\ncompiled: {rebuilt:?}"
            )));
        }
        for name in stack.documents.names() {
            let Some(doc) = stack.documents.get(name) else {
                continue;
            };
            for privilege in [Privilege::Browse, Privilege::Read] {
                let interpreted = PolicyEngine::policy_equivalence_classes(
                    &stack.policies,
                    name,
                    doc,
                    privilege,
                );
                if compiled.equivalence_classes(name, privilege).as_ref() != Some(&interpreted) {
                    return Err(Error::AnalysisRejected(format!(
                        "{privilege:?} equivalence classes diverge for document '{name}' \
                         between the interpreter and the compiled tables"
                    )));
                }
            }
        }
        Ok(live)
    }

    /// Gated counterpart of [`StackServer::update`]:
    ///
    /// * [`AnalysisGate::Off`] — behaves exactly like `update` (infallible
    ///   in practice; always returns `Ok`).
    /// * [`AnalysisGate::Warn`] — commits the update, then re-analyzes
    ///   incrementally so findings surface in
    ///   [`super::MetricsSnapshot`] without blocking anything.
    /// * [`AnalysisGate::Deny`] — applies the mutation to a *copy* of the
    ///   stack under the update lock (so no concurrent writer can
    ///   interleave between validation and commit — readers keep serving
    ///   from the published snapshot throughout), analyzes the copy with
    ///   **both** the AST analyzer and the policy verifier (WS013–WS018
    ///   over the decision plane compiled from the candidate), and
    ///   commits only when no **new** error-severity finding (relative to
    ///   the pre-update configuration) appears on either side. A rejected
    ///   update leaves the snapshot, generation, and caches untouched and
    ///   returns `WS109` ([`Error::AnalysisRejected`]) carrying the
    ///   machine lines of every introduced finding — an update that trips
    ///   both an AST error and a WS014 tie reports both.
    pub fn try_update<R>(
        &self,
        mutate: impl FnOnce(&mut SecureWebStack) -> R,
    ) -> Result<R, Error> {
        match self.analysis_gate() {
            AnalysisGate::Off => Ok(self.update(mutate)),
            AnalysisGate::Warn => {
                let result = self.update(mutate);
                let _ = self.analyze();
                let _ = self.verify_policies();
                Ok(result)
            }
            AnalysisGate::Deny => {
                let writer = self
                    .update_lock
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let current = self.current_snapshot();
                // Pre-existing errors are grandfathered: the gate blocks
                // *regressions*, not stacks that already carried findings
                // when the gate was enabled.
                let baseline = error_lines(&current.analyze());
                let baseline_policy = error_lines(&self.verify_policies());
                let mut candidate = (*current).clone();
                let result = mutate(&mut candidate);
                let report = candidate.analyze();
                let mut introduced: Vec<String> = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .map(Diagnostic::machine_line)
                    .filter(|line| !baseline.contains(line))
                    .collect();
                // The candidate's decision plane is compiled once, here:
                // validation and (on success) publication share the same
                // artifact, preserving the compile-once-per-publication
                // contract. Rejected updates bump no compile counter —
                // the work happened but nothing was published.
                let t = Instant::now();
                let compiled = super::compile_stack(&candidate);
                let compile_ns =
                    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let policy_report = run_policy_verifier(&candidate, &compiled);
                introduced.extend(
                    policy_report
                        .diagnostics
                        .iter()
                        .filter(|d| d.severity == Severity::Error)
                        .map(Diagnostic::machine_line)
                        .filter(|line| !baseline_policy.contains(line)),
                );
                if !introduced.is_empty() {
                    drop(writer);
                    self.gate_denials.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::AnalysisRejected(introduced.join("\n")));
                }
                self.snapshot_compile_ns.fetch_add(compile_ns, Ordering::Relaxed);
                self.snapshot_compiles.fetch_add(1, Ordering::Relaxed);
                self.publish(Arc::new(candidate), compiled);
                drop(writer);
                let _ = self.analyze();
                let _ = self.verify_policies();
                Ok(result)
            }
        }
    }
}
