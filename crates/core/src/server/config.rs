//! Consolidated server construction: the [`ServerConfig`] builder.
//!
//! The server's knobs accreted one setter at a time — `with_shards`,
//! [`StackServer::set_queue_limit`], [`StackServer::install_faults`],
//! [`StackServer::set_analysis_gate`], the global lockdep toggle — which
//! works for tweaking a live server but makes constructing a fully
//! configured one noisy. [`ServerConfig`] gathers them into one fluent
//! value consumed by [`StackServer::with_config`]; every individual setter
//! remains as a thin delegate, so existing callers compile unchanged.

use super::{AnalysisGate, StackServer, DEFAULT_SHARDS};
use crate::faults::FaultPlan;
use crate::stack::SecureWebStack;

/// Which decision machinery resolves a policy view on a cache miss.
///
/// The server compiles every published snapshot's policy base into
/// [`websec_policy::CompiledPolicies`] decision tables (interned subjects,
/// per-equivalence-class node bitsets, path automata). This knob selects
/// whether the request path consults those tables or the interpreting
/// [`websec_policy::PolicyEngine`]; the two are equivalence-checked by the
/// analyzer and the `compiled_decisions` property suite, so the
/// interpreted mode survives as a cross-checking oracle and an escape
/// hatch, not as a differently-behaving mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionMode {
    /// Walk the authorization list per request with the interpreting
    /// engine (the pre-compilation behavior).
    Interpreted = 0,
    /// Answer from the snapshot-compiled decision tables; documents
    /// unknown to the compiled snapshot fall back to the interpreter.
    #[default]
    Compiled = 1,
}

/// Declarative construction-time configuration for a [`StackServer`],
/// consumed by [`StackServer::with_config`]:
///
/// ```
/// use websec_core::prelude::*;
///
/// let stack = SecureWebStack::new([7u8; 32]);
/// let server = StackServer::with_config(
///     stack,
///     ServerConfig::new()
///         .shards(8)
///         .queue_limit(64)
///         .analysis_gate(AnalysisGate::Warn),
/// );
/// assert_eq!(server.shard_count(), 8);
/// assert_eq!(server.queue_limit(), 64);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    shards: Option<usize>,
    queue_limit: Option<usize>,
    analysis_gate: Option<AnalysisGate>,
    fault_plan: Option<FaultPlan>,
    lockdep: Option<bool>,
    decision_mode: Option<DecisionMode>,
}

impl ServerConfig {
    /// An empty configuration: every unset knob keeps the server default
    /// (16 shards, unlimited queue, [`AnalysisGate::Off`], no fault plan,
    /// lockdep untouched).
    #[must_use]
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Shard count for the session table and L2 view cache (rounded up to
    /// a power of two, clamped to `1..=4096` — same rules as
    /// [`StackServer::with_shards`]).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Per-worker admission depth for batch load shedding (0 = unlimited;
    /// see [`StackServer::set_queue_limit`]).
    #[must_use]
    pub fn queue_limit(mut self, per_worker_depth: usize) -> Self {
        self.queue_limit = Some(per_worker_depth);
        self
    }

    /// The [`AnalysisGate`] governing [`StackServer::try_update`].
    #[must_use]
    pub fn analysis_gate(mut self, gate: AnalysisGate) -> Self {
        self.analysis_gate = Some(gate);
        self
    }

    /// Arms a deterministic [`FaultPlan`] at construction (equivalent to
    /// calling [`StackServer::install_faults`] immediately after `new`;
    /// retrieve the live injector via a later `install_faults` call if the
    /// test needs to assert fired counts).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Forces the lock-order/race detector on or off for the process
    /// (equivalent to [`crate::sync::set_lockdep_enabled`]; unset leaves
    /// the `WEBSEC_LOCKDEP` environment default in place). Process-global,
    /// like the detector itself.
    #[must_use]
    pub fn lockdep(mut self, enabled: bool) -> Self {
        self.lockdep = Some(enabled);
        self
    }

    /// Selects the [`DecisionMode`] for view resolution (default
    /// [`DecisionMode::Compiled`]; equivalent to
    /// [`StackServer::set_decision_mode`] after construction).
    #[must_use]
    pub fn decision_mode(mut self, mode: DecisionMode) -> Self {
        self.decision_mode = Some(mode);
        self
    }
}

impl StackServer {
    /// Builds a server from a declarative [`ServerConfig`] — the one-stop
    /// replacement for chaining the individual setters after
    /// [`StackServer::new`]. Unset knobs keep their defaults.
    #[must_use]
    pub fn with_config(stack: SecureWebStack, config: ServerConfig) -> Self {
        if let Some(enabled) = config.lockdep {
            crate::sync::set_lockdep_enabled(enabled);
        }
        let server = Self::with_shards(stack, config.shards.unwrap_or(DEFAULT_SHARDS));
        if let Some(depth) = config.queue_limit {
            server.set_queue_limit(depth);
        }
        if let Some(gate) = config.analysis_gate {
            server.set_analysis_gate(gate);
        }
        if let Some(plan) = config.fault_plan {
            let _ = server.install_faults(plan);
        }
        if let Some(mode) = config.decision_mode {
            server.set_decision_mode(mode);
        }
        server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultRule};

    #[test]
    fn with_config_applies_every_knob() {
        let config = ServerConfig::new()
            .shards(5)
            .queue_limit(3)
            .analysis_gate(AnalysisGate::Deny)
            .fault_plan(FaultPlan::seeded(9).rule(FaultRule::new(FaultKind::CacheEvict)))
            .decision_mode(DecisionMode::Interpreted);
        let server = StackServer::with_config(SecureWebStack::new([1u8; 32]), config);
        assert_eq!(server.shard_count(), 8, "5 rounds up to a power of two");
        assert_eq!(server.queue_limit(), 3);
        assert_eq!(server.analysis_gate(), AnalysisGate::Deny);
        assert!(server.injector().is_some(), "fault plan armed");
        assert_eq!(server.decision_mode(), DecisionMode::Interpreted);
    }

    #[test]
    fn defaults_match_plain_new() {
        let server =
            StackServer::with_config(SecureWebStack::new([1u8; 32]), ServerConfig::new());
        let plain = StackServer::new(SecureWebStack::new([1u8; 32]));
        assert_eq!(server.shard_count(), plain.shard_count());
        assert_eq!(server.queue_limit(), plain.queue_limit());
        assert_eq!(server.analysis_gate(), plain.analysis_gate());
        assert!(server.injector().is_none());
        assert_eq!(server.decision_mode(), DecisionMode::Compiled);
        assert_eq!(plain.decision_mode(), DecisionMode::Compiled);
    }
}
