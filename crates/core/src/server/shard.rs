//! Subject-identity sharding for the session table.
//!
//! Per-subject state — the established [`ChannelSession`] and the cached
//! policy views — partitions naturally by the authenticated identity (the
//! same observation behind Bertino–Ferrari selective dissemination: state
//! is per-subject, so subjects hash to independent slots). The table is
//! split into a power-of-two number of shards, each behind its own mutex:
//! two requests contend only when their identities hash to the same shard.
//!
//! Every lock acquisition goes through [`lock_counting`], which records a
//! contention event when the lock was already held. A poisoned shard (a
//! worker panicked while holding it) degrades to a `WS106` error for
//! requests routed to that shard instead of propagating the panic.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, TryLockError};

use super::metrics::{LocalMetrics, ShardStats};
use crate::sync::{TrackedAtomicU64, TrackedMutex, TrackedMutexGuard};
use crate::error::Error;
use crate::faults::{FaultContext, FaultKind, FaultLayer};
use websec_services::ChannelSession;

/// FNV-1a over the identity bytes: stable, dependency-free, and good
/// enough to spread identities across a power-of-two shard count.
pub(crate) fn identity_hash(identity: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in identity.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Acquires `mutex`, counting a contention event into `waits` when the
/// uncontended `try_lock` fast path fails. Returns `None` when the lock is
/// poisoned (the holder panicked), which callers surface as `WS106`.
pub(crate) fn lock_counting<'a, T>(
    mutex: &'a TrackedMutex<T>,
    waits: &TrackedAtomicU64,
) -> Option<TrackedMutexGuard<'a, T>> {
    match mutex.try_lock() {
        Ok(guard) => Some(guard),
        Err(TryLockError::WouldBlock) => {
            waits.fetch_add(1, Ordering::Relaxed);
            mutex.lock().ok()
        }
        Err(TryLockError::Poisoned(_)) => None,
    }
}

/// One shard of the session table.
struct SessionShard {
    map: TrackedMutex<HashMap<String, Arc<TrackedMutex<ChannelSession>>>>,
    lock_waits: TrackedAtomicU64,
}

/// The session table, sharded by identity hash. Shard count is a power of
/// two fixed at construction, so routing is a hash plus a mask.
pub(crate) struct SessionShards {
    shards: Vec<SessionShard>,
    mask: u64,
}

impl SessionShards {
    /// `shards` must be a power of two (the server constructor rounds up).
    pub fn new(shards: usize) -> Self {
        debug_assert!(shards.is_power_of_two());
        SessionShards {
            shards: (0..shards)
                .map(|_| SessionShard {
                    map: TrackedMutex::new("server.shard_map", HashMap::new()),
                    lock_waits: TrackedAtomicU64::counter("server.shard_lock_waits", 0),
                })
                .collect(),
            mask: shards as u64 - 1,
        }
    }

    /// Shard index for an identity.
    pub fn shard_index(&self, identity: &str) -> usize {
        (identity_hash(identity) & self.mask) as usize
    }

    /// The session for `identity`, establishing it (one handshake) on first
    /// contact. Only the identity's shard is locked; a poisoned shard
    /// yields `WS106` for identities routed to it while every other shard
    /// keeps serving.
    ///
    /// `faults` is the shard-layer injection hook: a firing `LockPoison`
    /// rule makes this acquisition behave exactly as a genuinely poisoned
    /// shard (`WS106` + the identity's session evicted so the next request
    /// re-establishes cleanly). `None` — the default on every non-chaos
    /// path — is a no-op.
    pub fn get_or_establish(
        &self,
        identity: &str,
        master_key: &[u8; 32],
        protected: bool,
        local: &mut LocalMetrics,
        faults: Option<&FaultContext<'_>>,
    ) -> Result<Arc<TrackedMutex<ChannelSession>>, Error> {
        let shard = &self.shards[self.shard_index(identity)];
        if let Some(ctx) = faults {
            for kind in ctx.check(FaultLayer::Shard) {
                if kind == FaultKind::LockPoison {
                    local.faults_injected += 1;
                    if let Some(mut map) = lock_counting(&shard.map, &shard.lock_waits) {
                        map.remove(identity);
                    }
                    return Err(Error::ShardPoisoned(format!(
                        "injected fault: session shard lock for identity '{identity}' poisoned"
                    )));
                }
            }
        }
        let mut map = lock_counting(&shard.map, &shard.lock_waits).ok_or_else(|| {
            Error::ShardPoisoned(format!(
                "session shard for identity '{identity}' poisoned by a panicked worker"
            ))
        })?;
        if let Some(session) = map.get(identity) {
            local.session_reuses += 1;
            return Ok(Arc::clone(session));
        }
        let session = Arc::new(TrackedMutex::new(
            "server.session",
            ChannelSession::establish(master_key, identity, protected),
        ));
        local.sessions_established += 1;
        map.insert(identity.to_string(), Arc::clone(&session));
        Ok(session)
    }

    /// Locks one session entry, counting contention into the identity's
    /// shard. `None` when the session mutex is poisoned (its holder
    /// panicked mid-transit), which callers surface as `WS106` and evict.
    pub fn lock_session<'a>(
        &self,
        identity: &str,
        session: &'a TrackedMutex<ChannelSession>,
    ) -> Option<TrackedMutexGuard<'a, ChannelSession>> {
        let shard = &self.shards[self.shard_index(identity)];
        lock_counting(session, &shard.lock_waits)
    }

    /// Drops the session for `identity` (used after its per-session lock is
    /// found poisoned, so the next request re-establishes a clean session).
    pub fn evict(&self, identity: &str) {
        let shard = &self.shards[self.shard_index(identity)];
        if let Some(mut map) = lock_counting(&shard.map, &shard.lock_waits) {
            map.remove(identity);
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Sessions resident across all shards.
    pub fn total_sessions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.map.lock().map_or(0, |m| m.len() as u64))
            .sum()
    }

    /// Folds this table's per-shard counters into `stats` (index-aligned;
    /// the cache layer fills in its own fields).
    pub fn fill_stats(&self, stats: &mut [ShardStats]) {
        for (i, shard) in self.shards.iter().enumerate() {
            stats[i].shard = i;
            stats[i].sessions_open = shard.map.lock().map_or(0, |m| m.len() as u64);
            stats[i].session_lock_waits = shard.lock_waits.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_spread_across_shards() {
        let shards = SessionShards::new(16);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(shards.shard_index(&format!("subject-{i}")));
        }
        assert!(seen.len() > 8, "only {} shards used", seen.len());
    }

    #[test]
    fn establish_then_reuse() {
        let shards = SessionShards::new(4);
        let mut local = LocalMetrics::default();
        let key = [7u8; 32];
        let first = shards.get_or_establish("alice", &key, true, &mut local, None).unwrap();
        let again = shards.get_or_establish("alice", &key, true, &mut local, None).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(local.sessions_established, 1);
        assert_eq!(local.session_reuses, 1);
        assert_eq!(shards.total_sessions(), 1);
    }

    #[test]
    fn evict_forces_reestablish() {
        let shards = SessionShards::new(4);
        let mut local = LocalMetrics::default();
        let key = [7u8; 32];
        let first = shards.get_or_establish("bob", &key, true, &mut local, None).unwrap();
        shards.evict("bob");
        let second = shards.get_or_establish("bob", &key, true, &mut local, None).unwrap();
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(local.sessions_established, 2);
    }

    #[test]
    fn poisoned_shard_reports_ws106() {
        let shards = SessionShards::new(1); // everything routes to shard 0
        let mut local = LocalMetrics::default();
        let key = [7u8; 32];
        shards.get_or_establish("alice", &key, true, &mut local, None).unwrap();
        // Poison the shard map mutex by panicking while holding it.
        let shard_map = &shards.shards[0].map;
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = shard_map.lock().unwrap();
                    panic!("poison the shard");
                })
                .join()
        });
        let err = match shards.get_or_establish("carol", &key, true, &mut local, None) {
            Err(e) => e,
            Ok(_) => panic!("poisoned shard served a session"),
        };
        assert_eq!(err.code(), "WS106");
    }

    #[test]
    fn lock_counting_fast_path_records_no_wait() {
        let mutex = TrackedMutex::new("test.shard_fastpath", 0u32);
        let waits = TrackedAtomicU64::counter("test.shard_fastpath_waits", 0);
        let g = lock_counting(&mutex, &waits).unwrap();
        drop(g);
        assert_eq!(waits.load(Ordering::Relaxed), 0);
    }
}
