//! The lock-free batch scheduler: Chase-Lev-style per-worker deques over
//! an immutable work list, plus a global MPMC overflow injector.
//!
//! A batch is scheduled **once, up front**: every admitted request index
//! is placed round-robin across the per-worker deques (so initial
//! placement is uniform regardless of batch size — no worker ever starts
//! with an empty range while another holds the whole batch), and anything
//! beyond a deque's capacity overflows into the shared injector. Because
//! the work list never grows after that, each deque reduces to an
//! **immutable index array plus two atomic cursors**: the owner pops from
//! the `bottom` end (the LIFO end it would push to), thieves steal from
//! the `top` end (FIFO — the oldest work, farthest from the owner's hot
//! end). No mutex, no `unsafe`: the classic Chase-Lev buffer race cannot
//! occur since slots are never rewritten, leaving only the cursor race,
//! which the CAS protocol below resolves.
//!
//! ## Memory-ordering argument
//!
//! Every cursor operation uses `SeqCst`. The one subtle interleaving is
//! the owner and a thief racing for the same slot:
//!
//! * the owner **reserves** by storing `bottom = b-1`, then re-reads
//!   `top`;
//! * a thief reads `top` *then* `bottom`, and **commits** by CAS-ing
//!   `top` forward.
//!
//! If the owner's re-read observes `top < b-1`, at least one unstolen
//! slot separates the two ends, and the single total order of `SeqCst`
//! operations guarantees any thief that could still reach slot `b-1`
//! must first observe the reservation (`bottom = b-1`, published before
//! the owner's re-read) and give up. If the owner observes `top == b-1`,
//! both sides race for the last slot and exactly one wins the CAS on
//! `top`. If the owner observes `top > b-1`, a thief holding a
//! pre-reservation view of `bottom` already committed the slot, and the
//! owner retreats. Every slot is therefore claimed exactly once, which
//! the steal-storm suites (here and in `tests/tests/scheduler.rs`)
//! assert under the WS110/WS111 detector.
//!
//! The cursors are `synchronizing`-role [`TrackedAtomicUsize`]s with
//! their own lock classes (`server.deque_top`, `server.deque_bottom`,
//! `server.injector_cursor`), so the happens-before checker models every
//! publication edge; `SeqCst` is Release+Acquire in that model and the
//! scheduler runs finding-free. The index arrays themselves are written
//! before the worker threads are spawned and only read afterwards —
//! plain immutable data, no synchronization needed.

use std::sync::atomic::Ordering::SeqCst;

use super::metrics::LocalMetrics;
use crate::sync::TrackedAtomicUsize;

/// Per-worker deque capacity. Work beyond `DEQUE_CAP` indices per worker
/// overflows into the shared [`Injector`]; the cap keeps the owner's hot
/// end dense while bounding how much work a single slow worker can strand
/// behind its cursor (stranded work is stolen one index at a time).
pub(super) const DEQUE_CAP: usize = 256;

/// One worker's deque: an immutable index array bracketed by two cursors.
/// `items[top..bottom]` is the unclaimed work; the owner decrements
/// `bottom`, thieves increment `top`.
///
/// The array is seeded in *descending* request order so the owner's
/// LIFO drain visits its assignment in ascending request order — the
/// serial-replay contract (a one-worker batch evaluates in submission
/// order) the chaos suite depends on — while thieves strip the opposite,
/// highest-index end.
struct WorkerDeque {
    items: Vec<usize>,
    top: TrackedAtomicUsize,
    bottom: TrackedAtomicUsize,
}

impl WorkerDeque {
    fn new(mut items: Vec<usize>) -> Self {
        items.reverse();
        let len = items.len();
        WorkerDeque {
            items,
            top: TrackedAtomicUsize::synchronizing("server.deque_top", 0),
            bottom: TrackedAtomicUsize::synchronizing("server.deque_bottom", len),
        }
    }

    /// Owner-side pop from the bottom end. **Must only be called by the
    /// deque's owning worker** — the protocol assumes a single writer of
    /// `bottom`.
    fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        if t >= b {
            return None;
        }
        let reserved = b - 1;
        self.bottom.store(reserved, SeqCst);
        let t = self.top.load(SeqCst);
        if t < reserved {
            // At least one unstolen slot separates the ends: no thief can
            // reach `reserved` past the published reservation.
            return Some(self.items[reserved]);
        }
        if t == reserved {
            // Last slot: race the thieves for it via the top cursor.
            let won = self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
            self.bottom.store(t + 1, SeqCst);
            return won.then(|| self.items[reserved]);
        }
        // A thief holding a pre-reservation view of `bottom` committed the
        // reserved slot; normalize to empty (top == bottom) and retreat.
        self.bottom.store(t, SeqCst);
        None
    }

    /// Thief-side steal from the top (FIFO) end. Any worker may call this;
    /// the CAS on `top` is the commit point.
    fn steal(&self) -> Option<usize> {
        loop {
            let t = self.top.load(SeqCst);
            let b = self.bottom.load(SeqCst);
            if t >= b {
                return None;
            }
            let item = self.items[t];
            if self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok() {
                return Some(item);
            }
            // Another thief (or the owner, on the last slot) won; retry.
        }
    }
}

/// The shared MPMC overflow queue: an immutable index array drained by a
/// single `fetch_add` cursor. Wait-free for every consumer — one RMW per
/// claimed index, no retry loop, no lock.
struct Injector {
    items: Vec<usize>,
    cursor: TrackedAtomicUsize,
}

impl Injector {
    fn new(items: Vec<usize>) -> Self {
        Injector {
            items,
            cursor: TrackedAtomicUsize::synchronizing("server.injector_cursor", 0),
        }
    }

    fn pop(&self) -> Option<usize> {
        // Cheap pre-check so drained-injector polls don't keep bumping the
        // cursor; the overshoot past `len` is bounded by the worker count.
        if self.cursor.load(SeqCst) >= self.items.len() {
            return None;
        }
        let at = self.cursor.fetch_add(1, SeqCst);
        self.items.get(at).copied()
    }
}

/// The per-batch scheduler handed to every worker: one deque per worker
/// plus the shared injector. Built once before the workers are spawned;
/// after that, all coordination is the three atomic cursors.
pub(super) struct Scheduler {
    deques: Vec<WorkerDeque>,
    injector: Injector,
}

impl Scheduler {
    /// Distributes `schedule` (request indices, in batch order) round-robin
    /// across `workers` deques, overflowing into the injector once a deque
    /// reaches [`DEQUE_CAP`]. Placement is uniform by construction: with
    /// fewer items than workers, each item lands on its own deque.
    pub fn new(schedule: &[usize], workers: usize) -> Self {
        let workers = workers.max(1);
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); workers];
        let mut overflow = Vec::new();
        for (position, &index) in schedule.iter().enumerate() {
            let lane = &mut assigned[position % workers];
            if lane.len() < DEQUE_CAP {
                lane.push(index);
            } else {
                overflow.push(index);
            }
        }
        Scheduler {
            deques: assigned.into_iter().map(WorkerDeque::new).collect(),
            injector: Injector::new(overflow),
        }
    }

    /// The next request index for `worker`: its own deque first (LIFO end),
    /// then the shared injector, then a steal sweep over the other deques
    /// (FIFO end), rotating from the worker's right-hand neighbor so
    /// thieves spread instead of mobbing one victim. `None` only when
    /// every source is drained — the batch is finite, so this terminates.
    pub fn next(&self, worker: usize, local: &mut LocalMetrics) -> Option<usize> {
        if let Some(index) = self.deques[worker].pop() {
            return Some(index);
        }
        if let Some(index) = self.injector.pop() {
            local.injector_pops += 1;
            return Some(index);
        }
        for offset in 1..self.deques.len() {
            let victim = (worker + offset) % self.deques.len();
            if let Some(index) = self.deques[victim].steal() {
                local.steals += 1;
                local.stolen_requests += 1;
                return Some(index);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn drain(sched: &Scheduler, worker: usize) -> Vec<usize> {
        let mut local = LocalMetrics::default();
        let mut out = Vec::new();
        while let Some(i) = sched.next(worker, &mut local) {
            out.push(i);
        }
        out
    }

    #[test]
    fn single_worker_drains_in_submission_order() {
        let schedule: Vec<usize> = (0..500).collect();
        let sched = Scheduler::new(&schedule, 1);
        // 0..DEQUE_CAP from the deque, the overflow tail from the injector:
        // ascending throughout, preserving the serial-replay contract.
        assert_eq!(drain(&sched, 0), schedule);
    }

    #[test]
    fn placement_is_uniform_for_tiny_batches() {
        // 3 items, 8 workers: every item on its own deque — the old
        // contiguous-chunk split gave worker 0 everything here.
        let sched = Scheduler::new(&[0, 1, 2], 8);
        let mut local = LocalMetrics::default();
        for w in 0..3 {
            assert_eq!(sched.deques[w].pop(), Some(w), "worker {w} owns its item");
        }
        for w in 0..8 {
            assert_eq!(sched.next(w, &mut local), None);
        }
    }

    #[test]
    fn overflow_lands_in_the_injector() {
        let schedule: Vec<usize> = (0..(DEQUE_CAP * 2 + 10)).collect();
        let sched = Scheduler::new(&schedule, 2);
        assert_eq!(sched.injector.items.len(), 10);
        let mut seen: Vec<usize> = (0..2).flat_map(|w| drain(&sched, w)).collect();
        seen.sort_unstable();
        assert_eq!(seen, schedule, "every index claimed exactly once");
    }

    #[test]
    fn steal_storm_claims_every_index_exactly_once() {
        for _ in 0..50 {
            let schedule: Vec<usize> = (0..64).collect();
            let sched = Scheduler::new(&schedule, 8);
            let claimed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for w in 0..8 {
                    let sched = &sched;
                    let claimed = &claimed;
                    scope.spawn(move || {
                        let mut local = LocalMetrics::default();
                        let mut mine = Vec::new();
                        while let Some(i) = sched.next(w, &mut local) {
                            mine.push(i);
                        }
                        claimed.lock().unwrap().extend(mine);
                    });
                }
            });
            let mut all = claimed.into_inner().unwrap();
            all.sort_unstable();
            assert_eq!(all, schedule, "an index was lost or double-claimed");
        }
    }

    #[test]
    fn last_element_race_has_exactly_one_winner() {
        for _ in 0..200 {
            let deque = WorkerDeque::new(vec![7]);
            let thief_got: Mutex<Option<usize>> = Mutex::new(None);
            let owner_got = std::thread::scope(|scope| {
                let handle = {
                    let deque = &deque;
                    let thief_got = &thief_got;
                    scope.spawn(move || {
                        *thief_got.lock().unwrap() = deque.steal();
                    })
                };
                let owner = deque.pop();
                handle.join().unwrap();
                owner
            });
            let thief = thief_got.into_inner().unwrap();
            let winners = usize::from(owner_got.is_some()) + usize::from(thief.is_some());
            assert_eq!(winners, 1, "owner={owner_got:?} thief={thief:?}");
            assert_eq!(owner_got.or(thief), Some(7));
        }
    }

    #[test]
    fn thieves_take_the_far_end_first() {
        let sched = Scheduler::new(&[0, 1, 2, 3], 1);
        // Owner would drain 0,1,2,3; a thief must take the opposite end.
        assert_eq!(sched.deques[0].steal(), Some(3));
        assert_eq!(sched.deques[0].pop(), Some(0));
        let rest: HashSet<usize> = std::iter::from_fn(|| sched.deques[0].pop()).collect();
        assert_eq!(rest, HashSet::from([1, 2]));
    }
}
