//! The two-level policy-view cache.
//!
//! * **L2** — shared, sharded by subject-identity hash (same shard count
//!   and hash as the session table). Each shard is an epoch-keyed map
//!   behind its own `RwLock`; two requests contend only when their
//!   identities collide on a shard.
//! * **L1** — a plain `HashMap` owned by one batch worker: hits touch no
//!   lock and no shared cache line at all. Every L1 entry carries the
//!   [`Token`] it was cached under and is revalidated on read, so a
//!   [`websec_policy::PolicyStore`] mutation (epoch bump) or a snapshot
//!   swap (generation bump) invalidates worker-local entries globally
//!   without any cross-thread signalling.
//!
//! A cache entry can never outlive its token: stale entries are simply
//! unreachable (token mismatch) and evicted wholesale on the next write to
//! their shard.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};

use super::metrics::ShardStats;
use crate::sync::{TrackedAtomicU64, TrackedReadGuard, TrackedRwLock, TrackedWriteGuard};
use super::shard::identity_hash;
use websec_xml::Document;

/// Validity token for cached views: the server's snapshot generation
/// (bumped by every [`crate::server::StackServer::update`] /
/// `invalidate_views`) paired with the policy-store epoch (bumped by every
/// policy mutation). An entry is valid only under the exact token it was
/// computed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Token {
    /// Snapshot generation (covers document/label/context/gate mutations).
    pub generation: u64,
    /// Policy epoch (covers policy-base mutations, including any performed
    /// out of band via [`websec_policy::PolicyStore::bump_epoch`]).
    pub epoch: u64,
}

/// Cache key: the subject *identity* and document name (the server maps
/// each authenticated identity to one profile; see the module docs of
/// [`crate::server`]).
pub(crate) type ViewKey = (String, String);

struct CacheShardInner {
    token: Token,
    views: HashMap<ViewKey, Arc<Document>>,
}

struct CacheShard {
    inner: TrackedRwLock<CacheShardInner>,
    lock_waits: TrackedAtomicU64,
    hits: TrackedAtomicU64,
    misses: TrackedAtomicU64,
}

impl CacheShard {
    /// Read-locks the shard, counting contention; a poisoned shard heals
    /// itself (cached views are disposable, so recovering the guard is
    /// safe — at worst a view is recomputed).
    fn read(&self) -> TrackedReadGuard<'_, CacheShardInner> {
        match self.inner.try_read() {
            Ok(guard) => guard,
            Err(_) => {
                self.lock_waits.fetch_add(1, Ordering::Relaxed);
                self.inner.read().unwrap_or_else(PoisonError::into_inner)
            }
        }
    }

    fn write(&self) -> TrackedWriteGuard<'_, CacheShardInner> {
        match self.inner.try_write() {
            Ok(guard) => guard,
            Err(_) => {
                self.lock_waits.fetch_add(1, Ordering::Relaxed);
                self.inner.write().unwrap_or_else(PoisonError::into_inner)
            }
        }
    }
}

/// The shared L2 view cache, sharded by identity hash.
pub(crate) struct L2ViewCache {
    shards: Vec<CacheShard>,
    mask: u64,
}

impl L2ViewCache {
    pub fn new(shards: usize) -> Self {
        debug_assert!(shards.is_power_of_two());
        L2ViewCache {
            shards: (0..shards)
                .map(|_| CacheShard {
                    inner: TrackedRwLock::new(
                        "server.cache_shard",
                        CacheShardInner {
                            token: Token {
                                generation: 0,
                                epoch: 0,
                            },
                            views: HashMap::new(),
                        },
                    ),
                    lock_waits: TrackedAtomicU64::counter("server.cache_lock_waits", 0),
                    hits: TrackedAtomicU64::counter("server.cache_hits", 0),
                    misses: TrackedAtomicU64::counter("server.cache_misses", 0),
                })
                .collect(),
            mask: shards as u64 - 1,
        }
    }

    fn shard_for(&self, identity: &str) -> &CacheShard {
        &self.shards[self.shard_index(identity)]
    }

    /// The shard index `identity` hashes to (the key for the per-worker
    /// hit/miss tallies that
    /// [`crate::server::StackServer`]'s `absorb_local` flushes back here).
    pub fn shard_index(&self, identity: &str) -> usize {
        (identity_hash(identity) & self.mask) as usize
    }

    /// A valid cached view, or `None`. Deliberately does **not** touch the
    /// shard's hit/miss counters: the caller tallies the outcome into its
    /// [`super::metrics::LocalMetrics`] and flushes once per worker via
    /// [`L2ViewCache::absorb_shard_tallies`], so the hot lookup path
    /// performs zero shared-cacheline RMWs.
    pub fn lookup(&self, key: &ViewKey, token: Token) -> Option<Arc<Document>> {
        let guard = self.shard_for(&key.0).read();
        if guard.token == token {
            if let Some(view) = guard.views.get(key) {
                return Some(Arc::clone(view));
            }
        }
        None
    }

    /// Folds a worker's per-shard hit/miss tallies into the shard counters:
    /// at most one `fetch_add` per *touched shard* per worker, replacing
    /// the old one-per-request scheme. Tally vectors are lazily sized, so
    /// they may be shorter than the shard count.
    pub fn absorb_shard_tallies(&self, hits: &[u64], misses: &[u64]) {
        for (shard, &n) in self.shards.iter().zip(hits.iter()) {
            if n != 0 {
                shard.hits.fetch_add(n, Ordering::Relaxed);
            }
        }
        for (shard, &n) in self.shards.iter().zip(misses.iter()) {
            if n != 0 {
                shard.misses.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Inserts a computed view under `token`, evicting the shard wholesale
    /// first when its resident token is older.
    pub fn insert(&self, key: ViewKey, token: Token, view: Arc<Document>) {
        let shard = self.shard_for(&key.0);
        let mut guard = shard.write();
        if guard.token != token {
            // Never let a newer shard regress to an older token: a racing
            // slow worker may finish a view computed under a superseded
            // snapshot after the shard already advanced.
            if token.generation < guard.token.generation {
                return;
            }
            guard.views.clear();
            guard.token = token;
        }
        guard.views.insert(key, view);
    }

    /// Drops one cached view (fault-injection `CacheEvict` hook: forces
    /// the next lookup for `key` to recompute). A no-op when the entry is
    /// absent.
    pub fn remove(&self, key: &ViewKey) {
        let shard = self.shard_for(&key.0);
        shard.write().views.remove(key);
    }

    /// Drops every cached view in every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().views.clear();
        }
    }

    /// Views currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().views.len()).sum()
    }

    /// Folds this cache's per-shard counters into `stats` (index-aligned
    /// with the session table's shards).
    pub fn fill_stats(&self, stats: &mut [ShardStats]) {
        for (i, shard) in self.shards.iter().enumerate() {
            stats[i].cache_lock_waits = shard.lock_waits.load(Ordering::Relaxed);
            stats[i].l2_hits = shard.hits.load(Ordering::Relaxed);
            stats[i].l2_misses = shard.misses.load(Ordering::Relaxed);
            stats[i].cached_views = shard.read().views.len() as u64;
        }
    }
}

/// A worker-owned L1 view cache: lock-free reads, token-checked entries.
#[derive(Default)]
pub(crate) struct L1ViewCache {
    views: HashMap<ViewKey, (Token, Arc<Document>)>,
}

impl L1ViewCache {
    /// A valid local entry (the token check makes global invalidation —
    /// epoch or generation bump — visible without cross-thread traffic).
    pub fn lookup(&self, key: &ViewKey, token: Token) -> Option<Arc<Document>> {
        match self.views.get(key) {
            Some((t, view)) if *t == token => Some(Arc::clone(view)),
            _ => None,
        }
    }

    /// Caches a view locally under `token`.
    pub fn insert(&mut self, key: ViewKey, token: Token, view: Arc<Document>) {
        self.views.insert(key, (token, view));
    }

    /// Drops one local entry (fault-injection `CacheEvict` hook).
    pub fn remove(&mut self, key: &ViewKey) {
        self.views.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Arc<Document> {
        Arc::new(Document::parse("<x/>").unwrap())
    }

    const T0: Token = Token {
        generation: 0,
        epoch: 0,
    };
    const T1: Token = Token {
        generation: 1,
        epoch: 1,
    };

    #[test]
    fn l2_hit_requires_matching_token() {
        let l2 = L2ViewCache::new(4);
        let key = ("alice".to_string(), "d.xml".to_string());
        assert!(l2.lookup(&key, T0).is_none());
        l2.insert(key.clone(), T0, doc());
        assert!(l2.lookup(&key, T0).is_some());
        // A token bump makes the entry unreachable...
        assert!(l2.lookup(&key, T1).is_none());
        // ...and the next insert evicts the stale shard wholesale.
        l2.insert(("bob".to_string(), "d.xml".to_string()), T1, doc());
        assert!(l2.lookup(&key, T0).is_none() || l2.len() <= 2);
    }

    #[test]
    fn l2_never_regresses_to_an_older_generation() {
        let l2 = L2ViewCache::new(1);
        let new_key = ("bob".to_string(), "d.xml".to_string());
        l2.insert(new_key.clone(), T1, doc());
        // A slow worker finishing a view computed under the old snapshot
        // must not clobber the newer shard.
        let old_key = ("alice".to_string(), "d.xml".to_string());
        l2.insert(old_key.clone(), T0, doc());
        assert!(l2.lookup(&new_key, T1).is_some());
        assert!(l2.lookup(&old_key, T0).is_none());
    }

    #[test]
    fn l1_is_token_checked() {
        let mut l1 = L1ViewCache::default();
        let key = ("alice".to_string(), "d.xml".to_string());
        l1.insert(key.clone(), T0, doc());
        assert!(l1.lookup(&key, T0).is_some());
        assert!(l1.lookup(&key, T1).is_none(), "stale L1 entry served");
    }

    #[test]
    fn remove_evicts_one_entry_from_both_levels() {
        let l2 = L2ViewCache::new(4);
        let key = ("alice".to_string(), "d.xml".to_string());
        let other = ("alice".to_string(), "e.xml".to_string());
        l2.insert(key.clone(), T0, doc());
        l2.insert(other.clone(), T0, doc());
        l2.remove(&key);
        assert!(l2.lookup(&key, T0).is_none(), "removed L2 entry served");
        assert!(l2.lookup(&other, T0).is_some(), "remove() evicted a neighbor");

        let mut l1 = L1ViewCache::default();
        l1.insert(key.clone(), T0, doc());
        l1.remove(&key);
        assert!(l1.lookup(&key, T0).is_none(), "removed L1 entry served");
    }

    #[test]
    fn shard_tallies_absorb_into_the_shard_counters() {
        let l2 = L2ViewCache::new(4);
        let idx = l2.shard_index("alice");
        let mut hits = vec![0u64; idx + 1];
        hits[idx] = 3;
        // Miss tally shorter than the shard count: lazy sizing is legal.
        l2.absorb_shard_tallies(&hits, &[2]);
        let mut stats = vec![ShardStats::default(); 4];
        l2.fill_stats(&mut stats);
        assert_eq!(stats[idx].l2_hits, 3);
        assert_eq!(stats[0].l2_misses, 2);
        assert_eq!(stats.iter().map(|s| s.l2_hits).sum::<u64>(), 3);
        assert_eq!(stats.iter().map(|s| s.l2_misses).sum::<u64>(), 2);
    }

    #[test]
    fn clear_empties_every_shard() {
        let l2 = L2ViewCache::new(8);
        for i in 0..32 {
            l2.insert((format!("s{i}"), "d.xml".to_string()), T0, doc());
        }
        assert!(l2.len() > 0);
        l2.clear();
        assert_eq!(l2.len(), 0);
    }
}
