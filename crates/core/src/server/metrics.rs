//! Serving metrics: per-worker local accounting, the lock-free cumulative
//! store, and the `#[non_exhaustive]` snapshot returned to callers.
//!
//! The metrics pipeline is deliberately contention-free:
//!
//! * every batch worker accumulates into a plain-`u64` [`LocalMetrics`]
//!   (no shared cache lines while requests are in flight),
//! * workers flush once into the atomic [`MetricsInner`] when their queue
//!   drains ([`MetricsInner::absorb`]),
//! * callers read a [`MetricsSnapshot`] — a `#[non_exhaustive]` value
//!   struct, so later PRs can add counters (as this one adds the per-shard
//!   [`ShardStats`], the L1/L2 hit split, and steal counters) without a
//!   breaking change.

use std::sync::atomic::Ordering;

use crate::error::Error;
use crate::sync::TrackedAtomicU64;
use crate::request::{CacheStatus, Decision, QueryResponse};
use crate::stack::LayerTimings;

/// Number of log₂ latency buckets (bucket `i` covers `[2^i, 2^{i+1})` ns;
/// 40 buckets span ~18 minutes, far beyond any sane request).
pub(crate) const LATENCY_BUCKETS: usize = 40;

/// A snapshot of the server's cumulative latency distribution.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts requests whose total latency fell in
    /// `[2^i, 2^{i+1})` nanoseconds.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total recorded requests.
    pub count: u64,
    /// Sum of recorded latencies in nanoseconds.
    pub sum_ns: u64,
}

impl LatencyHistogram {
    /// Mean latency in nanoseconds (0 when nothing was recorded).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive, in ns) of the bucket containing quantile `q`
    /// (e.g. `0.5`, `0.99`). Returns 0 when nothing was recorded.
    #[must_use]
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// Point-in-time statistics for one shard of the session table and the L2
/// view cache (shard `i` of both structures covers the same identity-hash
/// slice).
#[non_exhaustive]
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Sessions resident in this shard of the session table.
    pub sessions_open: u64,
    /// Contended acquisitions of this shard's session-table lock (the
    /// acquiring thread found it held and had to block).
    pub session_lock_waits: u64,
    /// Contended acquisitions of this shard's L2 view-cache lock.
    pub cache_lock_waits: u64,
    /// L2 view-cache hits served from this shard.
    pub l2_hits: u64,
    /// L2 view-cache misses (view computed and inserted) in this shard.
    pub l2_misses: u64,
    /// Views currently cached in this shard (current token only).
    pub cached_views: u64,
}

/// Per-batch scheduler statistics, returned inside a [`BatchResponse`].
///
/// `#[non_exhaustive]`: constructed only by the serving layer, so future
/// PRs can add counters without breaking downstream struct literals.
#[non_exhaustive]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Workers the scheduler actually ran (the requested count, shrunk
    /// when admission control leaves fewer requests than workers).
    pub workers: usize,
    /// Requests admitted past the queue-capacity check.
    pub admitted: usize,
    /// Requests answered `WS108` by admission control (positions at the
    /// tail of the batch; no work was started for them).
    pub shed: usize,
    /// Requests answered by coalescing onto an identical in-batch leader's
    /// evaluation.
    pub coalesced: u64,
    /// Successful steal operations against other workers' deques.
    pub steals: u64,
    /// Requests migrated between workers by stealing (one per steal under
    /// the deque scheduler; kept separate for continuity with the old
    /// steal-half counters).
    pub stolen_requests: u64,
    /// Requests claimed from the shared overflow injector rather than a
    /// per-worker deque.
    pub injector_pops: u64,
}

/// The answer to a [`crate::request::BatchRequest`]: positional results
/// (index `i` answers request `i`) plus the batch's scheduler statistics.
///
/// `#[non_exhaustive]`: constructed only by
/// [`crate::server::StackServer::serve_batch`], so later PRs can attach
/// more per-batch data without a breaking change.
#[non_exhaustive]
#[derive(Debug)]
pub struct BatchResponse {
    /// Per-request outcomes, index-aligned with the submitted batch.
    pub results: Vec<Result<QueryResponse, Error>>,
    /// Scheduler-level statistics for this batch alone (the cumulative
    /// server totals live in [`MetricsSnapshot`]).
    pub stats: BatchStats,
}

/// Cumulative serving statistics, reported by
/// [`crate::server::StackServer::metrics`].
///
/// `#[non_exhaustive]`: constructed only by the serving layer, so future
/// PRs can add counters without breaking downstream pattern matches or
/// struct literals.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Total requests received (including failures).
    pub requests: u64,
    /// Requests answered with a view (possibly empty).
    pub allowed: u64,
    /// Requests refused by the RDF label layer (`WS102`).
    pub denied: u64,
    /// Requests failing for any other reason (unknown document, channel,
    /// malformed request, poisoned shard).
    pub errors: u64,
    /// Requests that ran the full policy evaluation.
    pub enforced: u64,
    /// Requests admitted unchecked by the flexible gate (the measured
    /// exposure at reduced enforcement levels).
    pub admitted_unchecked: u64,
    /// Policy-view cache hits (L1 + L2).
    pub cache_hits: u64,
    /// Policy-view cache misses (view computed and inserted).
    pub cache_misses: u64,
    /// Hits served by a worker's thread-local L1 view cache (no lock).
    pub l1_hits: u64,
    /// Hits served by the sharded L2 view cache (one shard lock).
    pub l2_hits: u64,
    /// Batch requests answered by coalescing onto an identical in-batch
    /// request's evaluation (singleflight).
    pub coalesced: u64,
    /// Successful steals from other workers' deques (one request each
    /// under the lock-free scheduler; historically one steal-half moved
    /// several requests, hence the separate `stolen_requests` total).
    pub steals: u64,
    /// Requests migrated between workers by stealing.
    pub stolen_requests: u64,
    /// Requests claimed from the shared overflow injector rather than a
    /// per-worker deque.
    pub injector_pops: u64,
    /// Requests whose evaluation panicked (each answered with `WS106`
    /// instead of propagating the panic).
    pub worker_panics: u64,
    /// Requests answered `WS107` because their logical-tick deadline
    /// budget was exhausted (at queue-pop or immediately before eval).
    pub deadline_exceeded: u64,
    /// Requests answered `WS108` by admission control before any work
    /// started (batch exceeded the configured queue capacity).
    pub shed: u64,
    /// Retry attempts performed by
    /// [`crate::server::StackServer::serve_with_retry`] (each advanced the
    /// logical clock by its backoff).
    pub retries: u64,
    /// Faults fired by the installed [`crate::faults::FaultPlan`] (0 unless
    /// a plan is armed; one request can absorb several).
    pub faults_injected: u64,
    /// Channel sessions established (one handshake each).
    pub sessions_established: u64,
    /// Requests that reused an existing session (handshakes avoided).
    pub session_reuses: u64,
    /// Sessions currently resident across all shards.
    pub sessions_open: u64,
    /// Views currently cached in the L2 cache across all shards.
    pub cached_views: u64,
    /// Contended session-shard lock acquisitions across all shards.
    pub session_lock_waits: u64,
    /// Contended L2 cache-shard lock acquisitions across all shards.
    pub cache_lock_waits: u64,
    /// Analyzer passes actually executed across all
    /// [`crate::server::StackServer::analyze`] calls.
    pub analysis_passes_run: u64,
    /// Analyzer passes answered from the incremental cache (unchanged
    /// token or unchanged input sections).
    pub analysis_passes_reused: u64,
    /// Error-severity findings in the most recent cached analysis report
    /// (0 until the first analyze).
    pub analysis_errors: u64,
    /// Warning-severity findings in the most recent cached analysis report.
    pub analysis_warnings: u64,
    /// Updates rejected by [`crate::server::AnalysisGate::Deny`] with
    /// `WS109`.
    pub gate_denials: u64,
    /// Policy-verifier passes (WS013–WS018) actually executed across all
    /// [`crate::server::StackServer::verify_policies`] calls.
    pub policy_passes_run: u64,
    /// Policy-verifier passes answered from the incremental cache
    /// (unchanged token or unchanged policy/document sections).
    pub policy_passes_reused: u64,
    /// Error-severity findings in the most recent cached policy-verifier
    /// report (0 until the first verify).
    pub policy_errors: u64,
    /// Warning-severity findings in the most recent cached policy-verifier
    /// report.
    pub policy_warnings: u64,
    /// Cache-miss views answered by the snapshot-compiled decision tables
    /// ([`websec_policy::CompiledPolicies`]) rather than the interpreting
    /// engine (0 under [`crate::server::DecisionMode::Interpreted`]).
    pub compiled_hits: u64,
    /// Total nanoseconds spent inside the compiled decision tables across
    /// all requests (an attribution within `layer_totals.xml_ns`).
    pub compile_ns: u64,
    /// Policy compilations performed at snapshot publication: one at
    /// construction plus one per committed update.
    /// [`crate::server::StackServer::invalidate_views`] reuses the current
    /// artifact and does not recompile.
    pub snapshot_compiles: u64,
    /// Total nanoseconds spent compiling snapshots (publication-time cost,
    /// never paid on a request path).
    pub snapshot_compile_ns: u64,
    /// Cumulative per-layer time across all successful requests.
    pub layer_totals: LayerTimings,
    /// Distribution of total request latency.
    pub latency: LatencyHistogram,
    /// Per-shard breakdown of the contention and cache counters.
    pub per_shard: Vec<ShardStats>,
}

impl MetricsSnapshot {
    /// Cache hits over cache-eligible (enforced) view lookups, counting
    /// both L1 and L2 hits.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of cache hits served lock-free from a worker-local L1.
    #[must_use]
    pub fn l1_hit_share(&self) -> f64 {
        if self.cache_hits == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.cache_hits as f64
        }
    }

    /// The counter movement between an `earlier` snapshot of the same
    /// server and this one: every monotonic counter (requests, cache
    /// tallies, scheduler traffic, fault/shed/retry counts, per-layer and
    /// latency time) is subtracted pairwise, so callers measuring one
    /// batch no longer hand-subtract individual fields. Saturating — a
    /// snapshot from a *different* server yields zeros, not wrap-around
    /// garbage. Gauges that describe current state rather than
    /// accumulation (`sessions_open`, `cached_views`, `per_shard`) keep
    /// this snapshot's values.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut d = self.clone();
        d.requests = self.requests.saturating_sub(earlier.requests);
        d.allowed = self.allowed.saturating_sub(earlier.allowed);
        d.denied = self.denied.saturating_sub(earlier.denied);
        d.errors = self.errors.saturating_sub(earlier.errors);
        d.enforced = self.enforced.saturating_sub(earlier.enforced);
        d.admitted_unchecked = self.admitted_unchecked.saturating_sub(earlier.admitted_unchecked);
        d.cache_hits = self.cache_hits.saturating_sub(earlier.cache_hits);
        d.cache_misses = self.cache_misses.saturating_sub(earlier.cache_misses);
        d.l1_hits = self.l1_hits.saturating_sub(earlier.l1_hits);
        d.l2_hits = self.l2_hits.saturating_sub(earlier.l2_hits);
        d.coalesced = self.coalesced.saturating_sub(earlier.coalesced);
        d.steals = self.steals.saturating_sub(earlier.steals);
        d.stolen_requests = self.stolen_requests.saturating_sub(earlier.stolen_requests);
        d.injector_pops = self.injector_pops.saturating_sub(earlier.injector_pops);
        d.worker_panics = self.worker_panics.saturating_sub(earlier.worker_panics);
        d.deadline_exceeded = self.deadline_exceeded.saturating_sub(earlier.deadline_exceeded);
        d.shed = self.shed.saturating_sub(earlier.shed);
        d.retries = self.retries.saturating_sub(earlier.retries);
        d.faults_injected = self.faults_injected.saturating_sub(earlier.faults_injected);
        d.sessions_established =
            self.sessions_established.saturating_sub(earlier.sessions_established);
        d.session_reuses = self.session_reuses.saturating_sub(earlier.session_reuses);
        d.session_lock_waits = self.session_lock_waits.saturating_sub(earlier.session_lock_waits);
        d.cache_lock_waits = self.cache_lock_waits.saturating_sub(earlier.cache_lock_waits);
        d.analysis_passes_run =
            self.analysis_passes_run.saturating_sub(earlier.analysis_passes_run);
        d.analysis_passes_reused =
            self.analysis_passes_reused.saturating_sub(earlier.analysis_passes_reused);
        d.analysis_errors = self.analysis_errors.saturating_sub(earlier.analysis_errors);
        d.analysis_warnings = self.analysis_warnings.saturating_sub(earlier.analysis_warnings);
        d.gate_denials = self.gate_denials.saturating_sub(earlier.gate_denials);
        d.policy_passes_run = self.policy_passes_run.saturating_sub(earlier.policy_passes_run);
        d.policy_passes_reused =
            self.policy_passes_reused.saturating_sub(earlier.policy_passes_reused);
        d.policy_errors = self.policy_errors.saturating_sub(earlier.policy_errors);
        d.policy_warnings = self.policy_warnings.saturating_sub(earlier.policy_warnings);
        d.compiled_hits = self.compiled_hits.saturating_sub(earlier.compiled_hits);
        d.compile_ns = self.compile_ns.saturating_sub(earlier.compile_ns);
        d.snapshot_compiles = self.snapshot_compiles.saturating_sub(earlier.snapshot_compiles);
        d.snapshot_compile_ns =
            self.snapshot_compile_ns.saturating_sub(earlier.snapshot_compile_ns);
        d.layer_totals = LayerTimings {
            channel_ns: self.layer_totals.channel_ns.saturating_sub(earlier.layer_totals.channel_ns),
            rdf_ns: self.layer_totals.rdf_ns.saturating_sub(earlier.layer_totals.rdf_ns),
            xml_ns: self.layer_totals.xml_ns.saturating_sub(earlier.layer_totals.xml_ns),
            gate_ns: self.layer_totals.gate_ns.saturating_sub(earlier.layer_totals.gate_ns),
            compile_ns: self.layer_totals.compile_ns.saturating_sub(earlier.layer_totals.compile_ns),
        };
        let mut buckets = self.latency.buckets;
        for (slot, prior) in buckets.iter_mut().zip(earlier.latency.buckets.iter()) {
            *slot = slot.saturating_sub(*prior);
        }
        d.latency = LatencyHistogram {
            buckets,
            count: self.latency.count.saturating_sub(earlier.latency.count),
            sum_ns: self.latency.sum_ns.saturating_sub(earlier.latency.sum_ns),
        };
        d
    }

    /// Fraction of gated requests admitted without checking (mirrors
    /// [`websec_policy::FlexibleEnforcer::exposure`] but aggregated across
    /// the server's immutable snapshot).
    #[must_use]
    pub fn exposure(&self) -> f64 {
        let total = self.enforced + self.admitted_unchecked;
        if total == 0 {
            0.0
        } else {
            self.admitted_unchecked as f64 / total as f64
        }
    }
}

/// Legacy name of [`MetricsSnapshot`].
#[deprecated(
    since = "0.2.0",
    note = "renamed to MetricsSnapshot; the snapshot is #[non_exhaustive] so \
            new counters (per-shard contention, L1/L2 split) are non-breaking"
)]
pub type ServerMetrics = MetricsSnapshot;

/// Per-worker metric accumulator: plain integers, owned by one thread, so
/// recording a request outcome touches no shared cache line. Flushed into
/// [`MetricsInner`] once per batch (or per request on the single-request
/// [`crate::server::StackServer::serve`] path).
#[derive(Debug)]
pub(crate) struct LocalMetrics {
    pub requests: u64,
    pub allowed: u64,
    pub denied: u64,
    pub errors: u64,
    pub enforced: u64,
    pub admitted_unchecked: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub l1_hits: u64,
    pub coalesced: u64,
    pub steals: u64,
    pub stolen_requests: u64,
    pub injector_pops: u64,
    pub worker_panics: u64,
    pub deadline_exceeded: u64,
    pub shed: u64,
    pub retries: u64,
    pub faults_injected: u64,
    pub sessions_established: u64,
    pub session_reuses: u64,
    pub compiled_hits: u64,
    pub channel_ns: u64,
    pub rdf_ns: u64,
    pub xml_ns: u64,
    pub gate_ns: u64,
    pub compile_ns: u64,
    pub latency_sum_ns: u64,
    pub latency_count: u64,
    pub latency: [u64; LATENCY_BUCKETS],
    /// Per-L2-shard hit tallies, indexed by shard, lazily sized. Folded
    /// into the shard counters once per worker by
    /// [`crate::server::StackServer`]'s `absorb_local` instead of one
    /// shared-cacheline RMW per request on the lookup path.
    pub l2_shard_hits: Vec<u64>,
    /// Per-L2-shard miss tallies (same flush discipline as the hits).
    pub l2_shard_misses: Vec<u64>,
}

impl Default for LocalMetrics {
    fn default() -> Self {
        LocalMetrics {
            requests: 0,
            allowed: 0,
            denied: 0,
            errors: 0,
            enforced: 0,
            admitted_unchecked: 0,
            cache_hits: 0,
            cache_misses: 0,
            l1_hits: 0,
            coalesced: 0,
            steals: 0,
            stolen_requests: 0,
            injector_pops: 0,
            worker_panics: 0,
            deadline_exceeded: 0,
            shed: 0,
            retries: 0,
            faults_injected: 0,
            sessions_established: 0,
            session_reuses: 0,
            compiled_hits: 0,
            channel_ns: 0,
            rdf_ns: 0,
            xml_ns: 0,
            gate_ns: 0,
            compile_ns: 0,
            latency_sum_ns: 0,
            latency_count: 0,
            latency: [0; LATENCY_BUCKETS],
            l2_shard_hits: Vec::new(),
            l2_shard_misses: Vec::new(),
        }
    }
}

impl LocalMetrics {
    /// Tallies one L2 hit against `shard` locally (flushed to the shard's
    /// atomic counter once per worker, not once per request).
    pub fn bump_l2_shard_hit(&mut self, shard: usize) {
        if self.l2_shard_hits.len() <= shard {
            self.l2_shard_hits.resize(shard + 1, 0);
        }
        self.l2_shard_hits[shard] += 1;
    }

    /// Tallies one L2 miss against `shard` locally.
    pub fn bump_l2_shard_miss(&mut self, shard: usize) {
        if self.l2_shard_misses.len() <= shard {
            self.l2_shard_misses.resize(shard + 1, 0);
        }
        self.l2_shard_misses[shard] += 1;
    }

    fn record_latency(&mut self, total_ns: u128) {
        let ns = u64::try_from(total_ns).unwrap_or(u64::MAX);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket] += 1;
        self.latency_sum_ns = self.latency_sum_ns.saturating_add(ns);
        self.latency_count += 1;
    }

    /// Accounts one request outcome (coalesced responses count as requests
    /// too: every position in a batch is a served request).
    pub fn record_outcome(&mut self, result: &Result<QueryResponse, Error>) {
        self.requests += 1;
        match result {
            Ok(response) => {
                self.allowed += 1;
                match response.decision {
                    Decision::Enforced => self.enforced += 1,
                    Decision::AdmittedUnchecked => self.admitted_unchecked += 1,
                }
                match response.cache {
                    CacheStatus::Hit => self.cache_hits += 1,
                    CacheStatus::Miss => self.cache_misses += 1,
                    CacheStatus::Coalesced => self.coalesced += 1,
                    _ => {}
                }
                if response.compiled {
                    self.compiled_hits += 1;
                }
                let t = &response.timings;
                let add = |a: &mut u64, v: u128| {
                    *a = a.saturating_add(u64::try_from(v).unwrap_or(u64::MAX));
                };
                add(&mut self.channel_ns, t.channel_ns);
                add(&mut self.rdf_ns, t.rdf_ns);
                add(&mut self.xml_ns, t.xml_ns);
                add(&mut self.gate_ns, t.gate_ns);
                add(&mut self.compile_ns, t.compile_ns);
                self.record_latency(t.total_ns());
            }
            Err(Error::ClearanceViolation) => {
                self.denied += 1;
                // A denial is the *result* of full enforcement.
                self.enforced += 1;
            }
            Err(Error::DeadlineExceeded(_)) => {
                self.errors += 1;
                self.deadline_exceeded += 1;
            }
            Err(Error::Overloaded(_)) => {
                self.errors += 1;
                self.shed += 1;
            }
            Err(_) => {
                self.errors += 1;
            }
        }
    }
}

/// Lock-free cumulative counters (the mutable twin of [`MetricsSnapshot`]).
pub(crate) struct MetricsInner {
    requests: TrackedAtomicU64,
    allowed: TrackedAtomicU64,
    denied: TrackedAtomicU64,
    errors: TrackedAtomicU64,
    enforced: TrackedAtomicU64,
    admitted_unchecked: TrackedAtomicU64,
    cache_hits: TrackedAtomicU64,
    cache_misses: TrackedAtomicU64,
    l1_hits: TrackedAtomicU64,
    coalesced: TrackedAtomicU64,
    steals: TrackedAtomicU64,
    stolen_requests: TrackedAtomicU64,
    injector_pops: TrackedAtomicU64,
    worker_panics: TrackedAtomicU64,
    deadline_exceeded: TrackedAtomicU64,
    shed: TrackedAtomicU64,
    retries: TrackedAtomicU64,
    faults_injected: TrackedAtomicU64,
    sessions_established: TrackedAtomicU64,
    session_reuses: TrackedAtomicU64,
    compiled_hits: TrackedAtomicU64,
    channel_ns: TrackedAtomicU64,
    rdf_ns: TrackedAtomicU64,
    xml_ns: TrackedAtomicU64,
    gate_ns: TrackedAtomicU64,
    compile_ns: TrackedAtomicU64,
    latency_sum_ns: TrackedAtomicU64,
    latency_count: TrackedAtomicU64,
    latency: [TrackedAtomicU64; LATENCY_BUCKETS],
}

impl Default for MetricsInner {
    fn default() -> Self {
        MetricsInner {
            requests: TrackedAtomicU64::counter("server.metrics.requests", 0),
            allowed: TrackedAtomicU64::counter("server.metrics.allowed", 0),
            denied: TrackedAtomicU64::counter("server.metrics.denied", 0),
            errors: TrackedAtomicU64::counter("server.metrics.errors", 0),
            enforced: TrackedAtomicU64::counter("server.metrics.enforced", 0),
            admitted_unchecked: TrackedAtomicU64::counter("server.metrics.admitted_unchecked", 0),
            cache_hits: TrackedAtomicU64::counter("server.metrics.cache_hits", 0),
            cache_misses: TrackedAtomicU64::counter("server.metrics.cache_misses", 0),
            l1_hits: TrackedAtomicU64::counter("server.metrics.l1_hits", 0),
            coalesced: TrackedAtomicU64::counter("server.metrics.coalesced", 0),
            steals: TrackedAtomicU64::counter("server.metrics.steals", 0),
            stolen_requests: TrackedAtomicU64::counter("server.metrics.stolen_requests", 0),
            injector_pops: TrackedAtomicU64::counter("server.metrics.injector_pops", 0),
            worker_panics: TrackedAtomicU64::counter("server.metrics.worker_panics", 0),
            deadline_exceeded: TrackedAtomicU64::counter("server.metrics.deadline_exceeded", 0),
            shed: TrackedAtomicU64::counter("server.metrics.shed", 0),
            retries: TrackedAtomicU64::counter("server.metrics.retries", 0),
            faults_injected: TrackedAtomicU64::counter("server.metrics.faults_injected", 0),
            sessions_established: TrackedAtomicU64::counter("server.metrics.sessions_established", 0),
            session_reuses: TrackedAtomicU64::counter("server.metrics.session_reuses", 0),
            compiled_hits: TrackedAtomicU64::counter("server.metrics.compiled_hits", 0),
            channel_ns: TrackedAtomicU64::counter("server.metrics.channel_ns", 0),
            rdf_ns: TrackedAtomicU64::counter("server.metrics.rdf_ns", 0),
            xml_ns: TrackedAtomicU64::counter("server.metrics.xml_ns", 0),
            gate_ns: TrackedAtomicU64::counter("server.metrics.gate_ns", 0),
            compile_ns: TrackedAtomicU64::counter("server.metrics.compile_ns", 0),
            latency_sum_ns: TrackedAtomicU64::counter("server.metrics.latency_sum_ns", 0),
            latency_count: TrackedAtomicU64::counter("server.metrics.latency_count", 0),
            latency: std::array::from_fn(|_| {
                TrackedAtomicU64::counter("server.metrics.latency", 0)
            }),
        }
    }
}

impl MetricsInner {
    /// Folds a worker's local accumulator into the cumulative store.
    pub fn absorb(&self, local: &LocalMetrics) {
        let add = |a: &TrackedAtomicU64, v: u64| {
            if v != 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        };
        add(&self.requests, local.requests);
        add(&self.allowed, local.allowed);
        add(&self.denied, local.denied);
        add(&self.errors, local.errors);
        add(&self.enforced, local.enforced);
        add(&self.admitted_unchecked, local.admitted_unchecked);
        add(&self.cache_hits, local.cache_hits);
        add(&self.cache_misses, local.cache_misses);
        add(&self.l1_hits, local.l1_hits);
        add(&self.coalesced, local.coalesced);
        add(&self.steals, local.steals);
        add(&self.stolen_requests, local.stolen_requests);
        add(&self.injector_pops, local.injector_pops);
        add(&self.worker_panics, local.worker_panics);
        add(&self.deadline_exceeded, local.deadline_exceeded);
        add(&self.shed, local.shed);
        add(&self.retries, local.retries);
        add(&self.faults_injected, local.faults_injected);
        add(&self.sessions_established, local.sessions_established);
        add(&self.session_reuses, local.session_reuses);
        add(&self.compiled_hits, local.compiled_hits);
        add(&self.channel_ns, local.channel_ns);
        add(&self.rdf_ns, local.rdf_ns);
        add(&self.xml_ns, local.xml_ns);
        add(&self.gate_ns, local.gate_ns);
        add(&self.compile_ns, local.compile_ns);
        add(&self.latency_sum_ns, local.latency_sum_ns);
        add(&self.latency_count, local.latency_count);
        for (slot, &v) in self.latency.iter().zip(local.latency.iter()) {
            add(slot, v);
        }
    }

    /// Materializes the snapshot; shard-level counters (and the L2 hit
    /// total, which lives in the cache shards) are supplied by the caller.
    pub fn snapshot(&self, per_shard: Vec<ShardStats>) -> MetricsSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, counter) in buckets.iter_mut().zip(self.latency.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        let sum = |f: fn(&ShardStats) -> u64| per_shard.iter().map(f).sum::<u64>();
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            allowed: self.allowed.load(Ordering::Relaxed),
            denied: self.denied.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            enforced: self.enforced.load(Ordering::Relaxed),
            admitted_unchecked: self.admitted_unchecked.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            l1_hits: self.l1_hits.load(Ordering::Relaxed),
            l2_hits: sum(|s| s.l2_hits),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            stolen_requests: self.stolen_requests.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            // Monotonic totals; a snapshot read needs no stronger order.
            shed: self.shed.load(Ordering::Relaxed), // lint:allow(relaxed-counter)
            retries: self.retries.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed), // lint:allow(relaxed-counter)
            sessions_established: self.sessions_established.load(Ordering::Relaxed),
            session_reuses: self.session_reuses.load(Ordering::Relaxed),
            sessions_open: sum(|s| s.sessions_open),
            cached_views: sum(|s| s.cached_views),
            session_lock_waits: sum(|s| s.session_lock_waits),
            cache_lock_waits: sum(|s| s.cache_lock_waits),
            // Overwritten by `StackServer::metrics`, which owns the
            // analysis cache, gate, and snapshot-compile counters.
            analysis_passes_run: 0,
            analysis_passes_reused: 0,
            analysis_errors: 0,
            analysis_warnings: 0,
            gate_denials: 0,
            policy_passes_run: 0,
            policy_passes_reused: 0,
            policy_errors: 0,
            policy_warnings: 0,
            snapshot_compiles: 0,
            snapshot_compile_ns: 0,
            compiled_hits: self.compiled_hits.load(Ordering::Relaxed),
            compile_ns: self.compile_ns.load(Ordering::Relaxed),
            layer_totals: LayerTimings {
                channel_ns: u128::from(self.channel_ns.load(Ordering::Relaxed)),
                rdf_ns: u128::from(self.rdf_ns.load(Ordering::Relaxed)),
                xml_ns: u128::from(self.xml_ns.load(Ordering::Relaxed)),
                gate_ns: u128::from(self.gate_ns.load(Ordering::Relaxed)),
                compile_ns: u128::from(self.compile_ns.load(Ordering::Relaxed)),
            },
            latency: LatencyHistogram {
                buckets,
                count: self.latency_count.load(Ordering::Relaxed),
                sum_ns: self.latency_sum_ns.load(Ordering::Relaxed),
            },
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CacheStatus, Decision};

    fn ok_response(cache: CacheStatus) -> Result<QueryResponse, Error> {
        Ok(QueryResponse {
            xml: String::new(),
            decision: Decision::Enforced,
            cache,
            // Compiled tables only ever answer on a miss.
            compiled: matches!(cache, CacheStatus::Miss),
            timings: LayerTimings {
                channel_ns: 10,
                rdf_ns: 20,
                xml_ns: 30,
                gate_ns: 40,
                compile_ns: 7,
            },
        })
    }

    #[test]
    fn local_metrics_roundtrip_through_absorb() {
        let mut local = LocalMetrics::default();
        local.record_outcome(&ok_response(CacheStatus::Hit));
        local.record_outcome(&ok_response(CacheStatus::Miss));
        local.record_outcome(&ok_response(CacheStatus::Coalesced));
        local.record_outcome(&Err(Error::ClearanceViolation));
        local.record_outcome(&Err(Error::UnknownDocument("d".into())));
        local.record_outcome(&Err(Error::DeadlineExceeded("budget".into())));
        local.record_outcome(&Err(Error::Overloaded("queue full".into())));
        local.l1_hits = 1;
        local.steals = 2;
        local.stolen_requests = 5;
        local.injector_pops = 4;
        local.bump_l2_shard_hit(2);
        local.bump_l2_shard_miss(0);
        assert_eq!(local.l2_shard_hits, vec![0, 0, 1], "lazy shard sizing");
        assert_eq!(local.l2_shard_misses, vec![1]);

        let inner = MetricsInner::default();
        inner.absorb(&local);
        let snap = inner.snapshot(vec![ShardStats {
            shard: 0,
            sessions_open: 3,
            session_lock_waits: 1,
            cache_lock_waits: 2,
            l2_hits: 7,
            l2_misses: 1,
            cached_views: 4,
        }]);
        assert_eq!(snap.requests, 7);
        assert_eq!(snap.allowed, 3);
        assert_eq!(snap.denied, 1);
        assert_eq!(snap.errors, 3);
        assert_eq!(snap.deadline_exceeded, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.coalesced, 1);
        assert_eq!(snap.l1_hits, 1);
        assert_eq!(snap.l2_hits, 7);
        assert_eq!(snap.steals, 2);
        assert_eq!(snap.stolen_requests, 5);
        assert_eq!(snap.injector_pops, 4);
        assert_eq!(snap.sessions_open, 3);
        assert_eq!(snap.cached_views, 4);
        assert_eq!(snap.session_lock_waits, 1);
        assert_eq!(snap.cache_lock_waits, 2);
        assert_eq!(snap.latency.count, 3);
        assert_eq!(snap.layer_totals.total_ns(), 300, "compile_ns attributes, not adds");
        assert_eq!(snap.compiled_hits, 1, "only the Miss was compiled");
        assert_eq!(snap.compile_ns, 21);
        assert_eq!(snap.layer_totals.compile_ns, 21);
        assert!(snap.cache_hit_rate() > 0.0);
        assert!(snap.l1_hit_share() > 0.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut local = LocalMetrics::default();
        for _ in 0..100 {
            local.record_outcome(&ok_response(CacheStatus::Hit));
        }
        let inner = MetricsInner::default();
        inner.absorb(&local);
        let snap = inner.snapshot(Vec::new());
        assert_eq!(snap.latency.count, 100);
        assert!(snap.latency.mean_ns() > 0.0);
        assert!(snap.latency.quantile_upper_ns(0.5) >= 128);
        assert_eq!(snap.latency.quantile_upper_ns(0.99), 128);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let inner = MetricsInner::default();
        let mut warm = LocalMetrics::default();
        warm.record_outcome(&ok_response(CacheStatus::Hit));
        warm.record_outcome(&ok_response(CacheStatus::Coalesced));
        warm.steals = 3;
        inner.absorb(&warm);
        let earlier = inner.snapshot(vec![ShardStats {
            shard: 0,
            sessions_open: 1,
            session_lock_waits: 0,
            cache_lock_waits: 0,
            l2_hits: 0,
            l2_misses: 0,
            cached_views: 2,
        }]);

        let mut batch = LocalMetrics::default();
        batch.record_outcome(&ok_response(CacheStatus::Miss));
        batch.record_outcome(&ok_response(CacheStatus::Coalesced));
        batch.record_outcome(&Err(Error::ClearanceViolation));
        batch.steals = 2;
        inner.absorb(&batch);
        let later = inner.snapshot(vec![ShardStats {
            shard: 0,
            sessions_open: 4,
            session_lock_waits: 0,
            cache_lock_waits: 0,
            l2_hits: 0,
            l2_misses: 0,
            cached_views: 5,
        }]);

        let d = later.delta(&earlier);
        assert_eq!(d.requests, 3);
        assert_eq!(d.cache_hits, 0);
        assert_eq!(d.cache_misses, 1);
        assert_eq!(d.coalesced, 1);
        assert_eq!(d.denied, 1);
        assert_eq!(d.steals, 2);
        assert_eq!(d.latency.count, 2, "errors don't reach the histogram");
        assert_eq!(d.layer_totals.total_ns(), 200);
        // Gauges reflect the later snapshot, not a nonsensical difference.
        assert_eq!(d.sessions_open, 4);
        assert_eq!(d.cached_views, 5);
        // Different-server misuse saturates to zero instead of wrapping.
        assert_eq!(earlier.delta(&later).requests, 0);
    }

    #[test]
    fn delta_saturates_on_counter_reset() {
        // A server restart (fresh MetricsInner) resets every cumulative
        // counter; a delta computed across the reset must saturate to 0
        // everywhere, never wrap to huge u64 values.
        let before_restart = {
            let inner = MetricsInner::default();
            let mut local = LocalMetrics::default();
            for _ in 0..10 {
                local.record_outcome(&ok_response(CacheStatus::Hit));
            }
            local.steals = 9;
            inner.absorb(&local);
            inner.snapshot(Vec::new())
        };
        let after_restart = {
            let inner = MetricsInner::default();
            let mut local = LocalMetrics::default();
            local.record_outcome(&ok_response(CacheStatus::Miss));
            inner.absorb(&local);
            inner.snapshot(Vec::new())
        };
        assert!(after_restart.requests < before_restart.requests);
        let d = after_restart.delta(&before_restart);
        assert_eq!(d.requests, 0);
        assert_eq!(d.allowed, 0);
        assert_eq!(d.cache_hits, 0);
        assert_eq!(d.steals, 0);
        assert_eq!(d.latency.count, 0);
        assert_eq!(d.latency.sum_ns, 0);
        assert!(d.latency.buckets.iter().all(|&b| b == 0));
        assert_eq!(d.layer_totals.total_ns(), 0);
        // The one direction that did move still reads correctly.
        assert_eq!(d.cache_misses, 1);
    }

    #[test]
    fn delta_against_empty_snapshot_is_identity_on_counters() {
        let empty = MetricsInner::default().snapshot(Vec::new());
        assert_eq!(empty.requests, 0);
        assert_eq!(empty.latency.count, 0);
        assert_eq!(empty.latency.mean_ns(), 0.0);
        assert_eq!(empty.latency.quantile_upper_ns(0.99), 0);

        let inner = MetricsInner::default();
        let mut local = LocalMetrics::default();
        local.record_outcome(&ok_response(CacheStatus::Hit));
        local.record_outcome(&Err(Error::ClearanceViolation));
        inner.absorb(&local);
        let populated = inner.snapshot(Vec::new());

        // populated - empty leaves every counter untouched...
        let d = populated.delta(&empty);
        assert_eq!(d.requests, populated.requests);
        assert_eq!(d.denied, populated.denied);
        assert_eq!(d.enforced, populated.enforced);
        assert_eq!(d.latency.count, populated.latency.count);
        assert_eq!(d.latency.sum_ns, populated.latency.sum_ns);
        assert_eq!(d.layer_totals.total_ns(), populated.layer_totals.total_ns());
        // ...empty - populated saturates, and empty - empty is still empty.
        assert_eq!(empty.delta(&populated).requests, 0);
        assert_eq!(empty.delta(&empty).requests, 0);
    }

    #[test]
    fn delta_keeps_later_gauges_even_when_they_shrink() {
        // Gauges (current state, not accumulation) always read from the
        // *later* snapshot — including when the value went down, where a
        // subtraction would report nonsense.
        let inner = MetricsInner::default();
        let earlier = inner.snapshot(vec![ShardStats {
            shard: 0,
            sessions_open: 9,
            session_lock_waits: 0,
            cache_lock_waits: 0,
            l2_hits: 0,
            l2_misses: 0,
            cached_views: 12,
        }]);
        let later = inner.snapshot(vec![ShardStats {
            shard: 0,
            sessions_open: 2,
            session_lock_waits: 0,
            cache_lock_waits: 0,
            l2_hits: 0,
            l2_misses: 0,
            cached_views: 3,
        }]);
        let d = later.delta(&earlier);
        assert_eq!(d.sessions_open, 2, "gauge keeps the later value");
        assert_eq!(d.cached_views, 3);
        assert_eq!(d.per_shard.len(), 1, "per-shard breakdown is a gauge too");
        assert_eq!(d.per_shard[0].sessions_open, 2);
        // The finding tallies are subtracted like every other counter, so
        // a report that *improved* (fewer findings) saturates to 0 rather
        // than underflowing.
        let mut later2 = later.clone();
        let mut earlier2 = earlier.clone();
        earlier2.analysis_errors = 4;
        earlier2.policy_warnings = 6;
        later2.analysis_errors = 1;
        later2.policy_warnings = 2;
        let d2 = later2.delta(&earlier2);
        assert_eq!(d2.analysis_errors, 0, "saturating counter semantics");
        assert_eq!(d2.policy_warnings, 0);
    }

    #[test]
    fn delta_covers_the_policy_verifier_counters() {
        let inner = MetricsInner::default();
        let mut earlier = inner.snapshot(Vec::new());
        earlier.policy_passes_run = 6;
        earlier.policy_passes_reused = 0;
        let mut later = inner.snapshot(Vec::new());
        later.policy_passes_run = 6;
        later.policy_passes_reused = 12;
        let d = later.delta(&earlier);
        assert_eq!(d.policy_passes_run, 0, "no fresh pass executions");
        assert_eq!(d.policy_passes_reused, 12);
    }
}
