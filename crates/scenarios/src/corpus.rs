//! Shared store/stack generators.
//!
//! Before this crate existed, the "hospital" serving stack was built by
//! near-identical private `build_stack()` functions in `serving_bench` and
//! `tests/tests/compiled_decisions.rs`, and the 100k-document large store
//! lived only in the bench — this module is the single home for both, so
//! scenarios, benches, and integration tests declare a [`HospitalSpec`] /
//! [`LargeStoreSpec`] instead of re-rolling the generator.

use websec_core::policy::mls::ContextLabel;
use websec_core::prelude::*;

/// Shape of the generated hospital serving stack: `patients` records in
/// `records.xml` (Unclassified), one Secret `secret.xml`, per-identity
/// `//patient` read grants for `granted` subjects named
/// `{subject_prefix}{i}`, and an Anyone grant on the secret document
/// (denied at the RDF label layer instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HospitalSpec {
    /// Number of `<patient>` records generated into `records.xml`.
    pub patients: usize,
    /// Number of subjects granted `//patient` read access.
    pub granted: usize,
    /// Ungranted subjects used by clerk-style traffic (empty views).
    pub clerks: usize,
    /// Identity prefix of the granted subjects (`doctor-`, `subject-`, …).
    pub subject_prefix: String,
    /// Byte replicated into the deployment master key.
    pub master_seed: u8,
}

impl HospitalSpec {
    /// The integration-test corpus: 40 patients, 8 `subject-` grants,
    /// master key `[5u8; 32]` — the shape
    /// `tests/tests/compiled_decisions.rs` always used.
    #[must_use]
    pub fn small() -> Self {
        HospitalSpec {
            patients: 40,
            granted: 8,
            clerks: 4,
            subject_prefix: "subject-".to_string(),
            master_seed: 5,
        }
    }

    /// The bench corpus: 160 patients, 16 `doctor-` grants, 8 clerks,
    /// master key `[7u8; 32]` — the shape `serving_bench` always used.
    #[must_use]
    pub fn bench() -> Self {
        HospitalSpec {
            patients: 160,
            granted: 16,
            clerks: 8,
            subject_prefix: "doctor-".to_string(),
            master_seed: 7,
        }
    }

    /// The identity of granted subject `i` (modulo the granted count).
    #[must_use]
    pub fn granted_subject(&self, i: usize) -> String {
        format!("{}{}", self.subject_prefix, i % self.granted.max(1))
    }

    /// The identity of ungranted clerk `i` (modulo the clerk count).
    #[must_use]
    pub fn clerk_subject(&self, i: usize) -> String {
        format!("clerk-{}", i % self.clerks.max(1))
    }
}

/// Builds the hospital serving stack a [`HospitalSpec`] describes.
#[must_use]
pub fn hospital_stack(spec: &HospitalSpec) -> SecureWebStack {
    let mut stack = SecureWebStack::new([spec.master_seed; 32]);
    let mut xml = String::from("<hospital>");
    for i in 0..spec.patients {
        xml.push_str(&format!(
            "<patient id=\"p{i}\"><name>N{i}</name><record>r{i}</record></patient>"
        ));
    }
    xml.push_str("</hospital>");
    stack.add_document(
        "records.xml",
        Document::parse(&xml).expect("well-formed"),
        ContextLabel::fixed(Level::Unclassified),
    );
    stack.add_document(
        "secret.xml",
        Document::parse("<ops><plan>atlantis</plan></ops>").expect("well-formed"),
        ContextLabel::fixed(Level::Secret),
    );
    for d in 0..spec.granted {
        stack.policies.add(
            Authorization::for_subject(SubjectSpec::Identity(format!(
                "{}{d}",
                spec.subject_prefix
            )))
            .on(ObjectSpec::Portion {
                document: "records.xml".into(),
                path: Path::parse("//patient").expect("valid path"),
            })
            .privilege(Privilege::Read)
            .grant(),
        );
    }
    stack.policies.add(
        Authorization::for_subject(SubjectSpec::Anyone)
            .on(ObjectSpec::Document("secret.xml".into()))
            .privilege(Privilege::Read)
            .grant(),
    );
    stack
}

/// Shape of the generated large store the compiled decision path is
/// benchmarked against: `docs` small records in four structural variants,
/// a four-level role hierarchy, 16 global portion rules, and
/// `specific_auths` subject-specific per-document grants spread over
/// `subjects` identities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LargeStoreSpec {
    /// Number of generated documents (`r{i}.xml`).
    pub docs: usize,
    /// Number of distinct subject identities (`subject-{i}`).
    pub subjects: usize,
    /// Subject-specific per-document portion grants in the policy base.
    pub specific_auths: usize,
}

impl LargeStoreSpec {
    /// The ISSUE 8 acceptance shape `serving_bench` gates on: 100k
    /// documents, 10k subjects, 8k specific grants.
    #[must_use]
    pub fn bench() -> Self {
        LargeStoreSpec {
            docs: 100_000,
            subjects: 10_000,
            specific_auths: 8_000,
        }
    }
}

/// Builds the large store: documents, policy base, and the ordered
/// document-name list traffic strides over.
///
/// The policy base mixes the shapes whose per-request cost (path
/// evaluation, role-dominance walks, credential matching) snapshot
/// compilation hoists out of the hot path: `PortionAll` rules over every
/// document, a `chief > attending > resident > staff` hierarchy, physician
/// credential grants, and `specific_auths` strided per-document grants.
#[must_use]
pub fn large_store(spec: &LargeStoreSpec) -> (PolicyStore, DocumentStore, Vec<String>) {
    let mut docs = DocumentStore::new();
    let mut names = Vec::with_capacity(spec.docs);
    for i in 0..spec.docs {
        let v = i % 4;
        let xml = format!(
            "<rec><meta><id>d{i}</id><ts>t{v}</ts></meta><body><entry>e0</entry>\
             <entry>e1</entry><v{v}>x</v{v}></body><audit><sig>s</sig></audit></rec>"
        );
        let name = format!("r{i}.xml");
        docs.insert(&name, Document::parse(&xml).expect("well-formed"));
        names.push(name);
    }

    let mut store = PolicyStore::new();
    store.hierarchy.add_seniority(Role::new("chief"), Role::new("attending"));
    store.hierarchy.add_seniority(Role::new("attending"), Role::new("resident"));
    store.hierarchy.add_seniority(Role::new("resident"), Role::new("staff"));

    let portion_grant = |path: &str, subject: SubjectSpec| {
        Authorization::for_subject(subject)
            .on(ObjectSpec::PortionAll(Path::parse(path).expect("valid path")))
            .privilege(Privilege::Read)
            .propagation(Propagation::Cascade)
            .grant()
    };
    let portion_deny = |path: &str, subject: SubjectSpec| {
        Authorization::for_subject(subject)
            .on(ObjectSpec::PortionAll(Path::parse(path).expect("valid path")))
            .privilege(Privilege::Read)
            .propagation(Propagation::Cascade)
            .deny()
    };
    let staff = || SubjectSpec::InRole(Role::new("staff"));
    let resident = || SubjectSpec::InRole(Role::new("resident"));
    let attending = || SubjectSpec::InRole(Role::new("attending"));
    let physician = || SubjectSpec::WithCredentials(CredentialExpr::OfType("physician".into()));
    store.add(portion_grant("//entry", staff()));
    store.add(portion_grant("//meta", resident()));
    store.add(portion_grant("//body", attending()));
    store.add(portion_grant("/rec/body", physician()));
    store.add(portion_grant("//ts", SubjectSpec::Anyone));
    store.add(portion_grant("//id", resident()));
    store.add(portion_grant("/rec/meta", attending()));
    store.add(portion_grant("//v0", staff()));
    store.add(portion_grant("//v1", resident()));
    store.add(portion_grant("//v2", attending()));
    store.add(portion_grant("//v3", physician()));
    store.add(portion_grant("//audit", SubjectSpec::InRole(Role::new("chief"))));
    store.add(portion_deny("//sig", staff()));
    store.add(portion_deny("/rec/audit/sig", resident()));
    store.add(portion_deny("//audit", physician()));
    store.add(
        Authorization::for_subject(SubjectSpec::InRole(Role::new("chief")))
            .on(ObjectSpec::AllDocuments)
            .privilege(Privilege::Read)
            .grant(),
    );
    // The per-document population: individual subjects granted a portion of
    // one specific record each (strided so they spread over the store).
    for k in 0..spec.specific_auths {
        let subject = format!("subject-{}", (k * 3) % spec.subjects.max(1));
        let doc = format!("r{}.xml", (k * 53) % spec.docs.max(1));
        let path = if k % 2 == 0 { "//entry" } else { "//meta" };
        store.add(
            Authorization::for_subject(SubjectSpec::Identity(subject))
                .on(ObjectSpec::Portion {
                    document: doc,
                    path: Path::parse(path).expect("valid path"),
                })
                .privilege(Privilege::Read)
                .propagation(Propagation::Cascade)
                .grant(),
        );
    }
    (store, docs, names)
}

/// One unique subject per request: identity `subject-{i}`, a role from the
/// hierarchy, and a physician credential for every third subject.
#[must_use]
pub fn large_store_profiles(spec: &LargeStoreSpec) -> Vec<SubjectProfile> {
    let roles = ["staff", "resident", "attending", "chief"];
    (0..spec.subjects)
        .map(|i| {
            let id = format!("subject-{i}");
            let mut profile = SubjectProfile::new(&id).with_role(Role::new(roles[i % roles.len()]));
            if i % 3 == 0 {
                profile = profile.with_credential(Credential::new("physician", &id));
            }
            profile
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hospital_stack_serves_the_expected_shapes() {
        let spec = HospitalSpec::small();
        let server = StackServer::new(hospital_stack(&spec));
        let granted = QueryRequest::for_doc("records.xml")
            .path(Path::parse("//patient[@id='p1']").expect("valid path"))
            .subject(&SubjectProfile::new(&spec.granted_subject(1)))
            .clearance(Clearance(Level::Unclassified));
        let ok = server.serve(&granted).expect("granted subject");
        assert!(ok.xml.contains("N1"));

        let probe = QueryRequest::for_doc("secret.xml")
            .path(Path::parse("//plan").expect("valid path"))
            .subject(&SubjectProfile::new(&spec.granted_subject(0)))
            .clearance(Clearance(Level::Unclassified));
        let err = server.serve(&probe).expect_err("clearance violation");
        assert_eq!(err.code(), "WS102");
    }

    #[test]
    fn large_store_compiles_and_agrees_on_a_sample() {
        let spec = LargeStoreSpec {
            docs: 64,
            subjects: 32,
            specific_auths: 16,
        };
        let (store, docs, names) = large_store(&spec);
        assert_eq!(names.len(), spec.docs);
        let profiles = large_store_profiles(&spec);
        assert_eq!(profiles.len(), spec.subjects);
        let strategy = ConflictStrategy::default();
        let compiled = PolicySnapshot::new(&store, strategy, &docs).compile();
        let engine = PolicyEngine::new(strategy);
        for (i, profile) in profiles.iter().enumerate().step_by(5) {
            let name = &names[(i * 7) % names.len()];
            let doc = docs.get(name).expect("generated document");
            let slow = engine.compute_view(&store, profile, name, doc);
            let fast = compiled.compute_view(profile, name, doc).expect("compiled doc");
            assert_eq!(slow.to_xml_string(), fast.to_xml_string(), "subject {i}");
        }
    }
}
