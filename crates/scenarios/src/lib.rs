//! # websec-scenarios
//!
//! The declarative workload/scenario harness: the scenario space of the
//! secure serving stack (traffic mixes, subject/document skew, revocation
//! storms, UDDI churn, mining pipelines, adversarial replay/tamper, fault
//! plans) expressed as **plain data** instead of one-off benchmark
//! sections, and driven by a borealis-style orchestrator:
//!
//! * [`scenario`] — the [`Scenario`] data model: everything a run needs,
//!   declared as a value (and therefore diffable, fingerprintable, and
//!   replayable from its seed);
//! * [`recipe`] — composable enumo-style traffic generators: leaf request
//!   shapes combined with weighted [`Recipe::Mix`] / round-robin
//!   [`Recipe::Cycle`] combinators, all drawing from one seeded
//!   `SecureRng` stream so workloads are bit-reproducible;
//! * [`corpus`] — the shared store/stack generators (hospital stacks, the
//!   100k-document large store) previously duplicated between
//!   `serving_bench` and the integration tests;
//! * [`runner`] — executes one scenario against a `StackServer`: a serial
//!   fault-free oracle pass, a configured serial pass, a worker sweep, and
//!   the declared [`Invariant`] checks (byte-equivalence vs the oracle, no
//!   stale view past a committed revocation epoch, `Err ∈ WS1xx`, …);
//! * [`cache`] — the FNV-1a fingerprint-keyed result cache over the
//!   `BENCH_scenarios.json` history: unchanged scenarios (same declared
//!   data, same workspace revision) skip re-runs;
//! * [`report`] — renders the history into a static, dependency-free HTML
//!   report (byte-stable for a fixed history);
//! * [`suite`] — the declared scenario suites (`smoke`, `full`) plus
//!   helpers for tests;
//! * [`orchestrator`] — the end-to-end driver used by the
//!   `websec-scenarios` binary and `check.sh`: cache lookups, runs,
//!   history appends, the trend gate (current vs median-of-history), and
//!   report rendering.
//!
//! ## Declaring and running a scenario
//!
//! ```
//! use websec_scenarios::prelude::*;
//!
//! let scenario = Scenario::named("doc_example", 7)
//!     .corpus(HospitalSpec::small())
//!     .traffic(Recipe::mixed_hospital())
//!     .requests(32)
//!     .workers(vec![2])
//!     .invariant(Invariant::SerialEquivalence)
//!     .invariant(Invariant::ErrorsAreWs1xx);
//! let run = run_scenario(&scenario, "example-rev");
//! assert!(run.result.violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod corpus;
pub mod json;
pub mod orchestrator;
pub mod recipe;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod suite;

pub use cache::{History, TrendVerdict};
pub use corpus::{hospital_stack, large_store, large_store_profiles, HospitalSpec, LargeStoreSpec};
pub use json::Json;
pub use orchestrator::{run_suite, workspace_rev, SuiteEntry, SuiteOptions, SuiteSummary};
pub use recipe::{Pick, Recipe};
pub use runner::{run_scenario, PerfPoint, ScenarioPerf, ScenarioRun};
pub use scenario::{
    AdversarialSpec, CacheState, Invariant, MiningSpec, RevocationStorm, Scenario, ScenarioResult,
    UddiChurn, Warmup,
};

/// Convenience glob import mirroring `websec_core::prelude`.
pub mod prelude {
    pub use crate::cache::{History, TrendVerdict};
    pub use crate::corpus::{
        hospital_stack, large_store, large_store_profiles, HospitalSpec, LargeStoreSpec,
    };
    pub use crate::json::Json;
    pub use crate::orchestrator::{
        run_suite, workspace_rev, SuiteEntry, SuiteOptions, SuiteSummary,
    };
    pub use crate::recipe::{Pick, Recipe};
    pub use crate::report::render_report;
    pub use crate::runner::{run_scenario, PerfPoint, ScenarioPerf, ScenarioRun};
    pub use crate::scenario::{
        AdversarialSpec, CacheState, Invariant, MiningSpec, RevocationStorm, Scenario,
        ScenarioResult, UddiChurn, Warmup,
    };
    pub use crate::suite;
}
