//! The `BENCH_scenarios.json` history: fingerprint cache + trend gate.
//!
//! The history file is an append-only log of per-scenario rows:
//!
//! ```json
//! { "bench": "scenarios", "rows": [ { "name": "...", "fingerprint": "...",
//!   "headline_qps": 123.4, ... } ] }
//! ```
//!
//! Two queries are answered from it:
//!
//! * **Cache** — the latest row for a scenario name carries the
//!   fingerprint of the run that produced it; if an incoming scenario's
//!   fingerprint matches, its declared data *and* the workspace revision
//!   are unchanged, so the run is skipped ([`History::cached`]).
//! * **Trend** — instead of gating on a single prior run (noisy), the
//!   gate compares the current headline throughput against the **median**
//!   of the prior rows for that scenario ([`History::trend`]); fewer than
//!   [`History::MIN_TREND_ROWS`] priors is a bootstrap pass, so a
//!   missing or first-run history never fails CI.

use crate::json::Json;

/// Trend-gate verdict for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum TrendVerdict {
    /// Enough history existed and the current run clears the floor.
    Pass {
        /// Current headline queries/sec.
        current: f64,
        /// Median headline queries/sec of the prior rows.
        median: f64,
    },
    /// Not enough prior rows to form a trend — passes by construction.
    Bootstrap,
    /// The current run fell below `floor × median` of the history.
    Regressed {
        /// Current headline queries/sec.
        current: f64,
        /// Median headline queries/sec of the prior rows.
        median: f64,
        /// The fraction of the median the current run had to clear.
        floor: f64,
    },
}

impl TrendVerdict {
    /// Whether this verdict fails the gate.
    #[must_use]
    pub fn regressed(&self) -> bool {
        matches!(self, TrendVerdict::Regressed { .. })
    }
}

/// The parsed scenario history.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All rows, oldest first.
    pub rows: Vec<Json>,
}

impl History {
    /// Prior rows needed before the trend gate arms itself.
    pub const MIN_TREND_ROWS: usize = 3;

    /// Parses a history document; an empty or `null` input yields an
    /// empty history (the bootstrap case).
    pub fn parse(text: &str) -> Result<History, String> {
        if text.trim().is_empty() {
            return Ok(History::default());
        }
        let value = Json::parse(text)?;
        let rows = value
            .get("rows")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        Ok(History { rows })
    }

    /// Loads a history file; a missing or unreadable file yields an empty
    /// history rather than an error (first-run bootstrap).
    #[must_use]
    pub fn load(path: &std::path::Path) -> History {
        match std::fs::read_to_string(path) {
            Ok(text) => History::parse(&text).unwrap_or_default(),
            Err(_) => History::default(),
        }
    }

    /// All rows for a scenario name, oldest first.
    #[must_use]
    pub fn rows_for(&self, name: &str) -> Vec<&Json> {
        self.rows
            .iter()
            .filter(|row| row.get("name").and_then(Json::as_str) == Some(name))
            .collect()
    }

    /// The fingerprint recorded by the latest row for a scenario name.
    #[must_use]
    pub fn latest_fingerprint(&self, name: &str) -> Option<&str> {
        self.rows_for(name)
            .last()
            .and_then(|row| row.get("fingerprint"))
            .and_then(Json::as_str)
    }

    /// Whether a scenario with this fingerprint is already answered by
    /// the latest history row (the cache-hit condition).
    #[must_use]
    pub fn cached(&self, name: &str, fingerprint: &str) -> bool {
        self.latest_fingerprint(name) == Some(fingerprint)
    }

    /// Appends a result row.
    pub fn append_row(&mut self, row: Json) {
        self.rows.push(row);
    }

    /// Gates `current_qps` against the median headline throughput of the
    /// **prior** rows for `name` (the latest row is excluded when
    /// `exclude_latest` — pass `true` when the current run has already
    /// been appended). `floor` is the fraction of the median the current
    /// run must clear (e.g. `0.5`).
    #[must_use]
    pub fn trend(
        &self,
        name: &str,
        current_qps: f64,
        floor: f64,
        exclude_latest: bool,
    ) -> TrendVerdict {
        let rows = self.rows_for(name);
        let prior = if exclude_latest && !rows.is_empty() {
            &rows[..rows.len() - 1]
        } else {
            &rows[..]
        };
        let mut samples: Vec<f64> = prior
            .iter()
            .filter_map(|row| row.get("headline_qps").and_then(Json::as_f64))
            .filter(|qps| *qps > 0.0)
            .collect();
        if samples.len() < Self::MIN_TREND_ROWS {
            return TrendVerdict::Bootstrap;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = samples.len() / 2;
        let median = if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            (samples[mid - 1] + samples[mid]) / 2.0
        };
        if current_qps >= median * floor {
            TrendVerdict::Pass {
                current: current_qps,
                median,
            }
        } else {
            TrendVerdict::Regressed {
                current: current_qps,
                median,
                floor,
            }
        }
    }

    /// Renders the history document (pretty, deterministic).
    #[must_use]
    pub fn render(&self) -> String {
        Json::obj(vec![
            ("bench", Json::str("scenarios")),
            ("rows", Json::Arr(self.rows.clone())),
        ])
        .render_pretty()
    }

    /// Writes the history document to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, fingerprint: &str, qps: f64) -> Json {
        Json::obj(vec![
            ("name", Json::str(name)),
            ("fingerprint", Json::str(fingerprint)),
            ("headline_qps", Json::Num(qps)),
        ])
    }

    #[test]
    fn cache_hits_on_latest_fingerprint_only() {
        let mut history = History::default();
        history.append_row(row("a", "f1", 100.0));
        history.append_row(row("a", "f2", 110.0));
        assert!(history.cached("a", "f2"));
        assert!(!history.cached("a", "f1"), "stale fingerprints do not hit");
        assert!(!history.cached("b", "f2"), "other scenarios do not hit");
    }

    #[test]
    fn trend_bootstraps_below_three_rows() {
        let mut history = History::default();
        assert_eq!(history.trend("a", 1.0, 0.5, false), TrendVerdict::Bootstrap);
        history.append_row(row("a", "f", 100.0));
        history.append_row(row("a", "f", 100.0));
        assert_eq!(history.trend("a", 1.0, 0.5, false), TrendVerdict::Bootstrap);
    }

    #[test]
    fn trend_gates_on_the_median() {
        let mut history = History::default();
        for qps in [90.0, 100.0, 110.0] {
            history.append_row(row("a", "f", qps));
        }
        assert!(matches!(
            history.trend("a", 60.0, 0.5, false),
            TrendVerdict::Pass { median, .. } if (median - 100.0).abs() < 1e-9
        ));
        assert!(history.trend("a", 10.0, 0.5, false).regressed());
        // A huge outlier barely moves the median.
        history.append_row(row("a", "f", 100_000.0));
        assert!(matches!(
            history.trend("a", 60.0, 0.5, false),
            TrendVerdict::Pass { .. }
        ));
    }

    #[test]
    fn roundtrips_through_render_and_parse() {
        let mut history = History::default();
        history.append_row(row("a", "f1", 100.0));
        let text = history.render();
        let back = History::parse(&text).expect("parses");
        assert_eq!(back.rows, history.rows);
        assert_eq!(History::parse("").expect("empty is empty").rows.len(), 0);
    }
}
