//! Static HTML rendering of the scenario history.
//!
//! One self-contained page (inline CSS, no scripts, no external assets)
//! summarizing every scenario in the history: the latest run's counters,
//! digests, and violations, plus a throughput-trend table whose bars are
//! plain styled `div`s. The output is a pure function of the history
//! rows — no timestamps, no environment reads — so a fixed history
//! renders byte-identically forever (the golden-file test depends on
//! this).

use crate::cache::History;
use crate::json::Json;
use std::fmt::Write as _;

const STYLE: &str = "\
body{font-family:-apple-system,'Segoe UI',Roboto,sans-serif;margin:2rem auto;\
max-width:60rem;color:#1b1f24;background:#fff}\
h1{border-bottom:2px solid #d0d7de;padding-bottom:.4rem}\
h2{margin-top:2rem}\
table{border-collapse:collapse;width:100%;margin:.6rem 0}\
th,td{border:1px solid #d0d7de;padding:.3rem .6rem;text-align:left;\
font-size:.92rem}\
th{background:#f6f8fa}\
.bar{background:#2da44e;height:.8rem;display:inline-block;\
vertical-align:middle}\
.ok{color:#1a7f37}.bad{color:#cf222e;font-weight:600}\
.digest{font-family:ui-monospace,monospace;font-size:.85rem}\
.meta{color:#57606a;font-size:.9rem}";

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn num(row: &Json, key: &str) -> f64 {
    row.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn text<'a>(row: &'a Json, key: &str) -> &'a str {
    row.get(key).and_then(Json::as_str).unwrap_or("")
}

/// Renders the history into a complete HTML document.
#[must_use]
pub fn render_report(history: &History) -> String {
    let mut names: Vec<&str> = Vec::new();
    for row in &history.rows {
        if let Some(name) = row.get("name").and_then(Json::as_str) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }

    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<title>websec scenario report</title>\n<style>");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n<h1>Scenario report</h1>\n");
    let _ = writeln!(
        out,
        "<p class=\"meta\">{} scenario(s), {} recorded run(s). Generated from \
         <code>BENCH_scenarios.json</code>; every number below is a recorded row, \
         not a live measurement.</p>",
        names.len(),
        history.rows.len()
    );

    for name in names {
        let rows = history.rows_for(name);
        let latest = match rows.last() {
            Some(row) => *row,
            None => continue,
        };
        let violations = latest
            .get("violations")
            .and_then(Json::as_array)
            .unwrap_or(&[]);
        let _ = writeln!(out, "<h2>{}</h2>", escape(name));
        let status = if violations.is_empty() {
            "<span class=\"ok\">passing</span>".to_string()
        } else {
            format!("<span class=\"bad\">{} violation(s)</span>", violations.len())
        };
        let _ = writeln!(
            out,
            "<p class=\"meta\">seed {} &middot; fingerprint <span class=\"digest\">{}</span> \
             &middot; rev <span class=\"digest\">{}</span> &middot; {}</p>",
            num(latest, "seed"),
            escape(text(latest, "fingerprint")),
            escape(text(latest, "rev")),
            status
        );

        out.push_str(
            "<table><tr><th>requests</th><th>ok</th><th>errors</th>\
             <th>view digest</th><th>serial q/s</th><th>headline q/s</th></tr>\n",
        );
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td>\
             <td class=\"digest\">{}</td><td>{:.1}</td><td>{:.1}</td></tr>",
            num(latest, "requests"),
            num(latest, "ok"),
            num(latest, "errors"),
            escape(text(latest, "view_digest")),
            num(latest, "serial_qps"),
            num(latest, "headline_qps"),
        );
        out.push_str("</table>\n");

        if !violations.is_empty() {
            out.push_str("<ul>\n");
            for violation in violations {
                let _ = writeln!(
                    out,
                    "<li class=\"bad\">{}</li>",
                    escape(violation.as_str().unwrap_or("?"))
                );
            }
            out.push_str("</ul>\n");
        }

        // Trend table: one bar per recorded run, scaled to the best run.
        let max_qps = rows
            .iter()
            .map(|row| num(row, "headline_qps"))
            .fold(0.0f64, f64::max);
        out.push_str("<table><tr><th>run</th><th>headline q/s</th><th>trend</th></tr>\n");
        for (i, row) in rows.iter().enumerate() {
            let qps = num(row, "headline_qps");
            let width = if max_qps > 0.0 {
                ((qps / max_qps) * 240.0).round() as u64
            } else {
                0
            };
            let _ = writeln!(
                out,
                "<tr><td>#{}</td><td>{qps:.1}</td>\
                 <td><span class=\"bar\" style=\"width:{width}px\"></span></td></tr>",
                i + 1
            );
        }
        out.push_str("</table>\n");
    }

    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> History {
        let mut history = History::default();
        for (name, qps, violation) in [
            ("alpha", 100.0, None),
            ("alpha", 120.0, None),
            ("beta", 50.0, Some("error_free: request 3 failed with WS101")),
        ] {
            let violations = violation
                .map(|v| vec![Json::str(v)])
                .unwrap_or_default();
            history.append_row(Json::obj(vec![
                ("name", Json::str(name)),
                ("seed", Json::int(7)),
                ("fingerprint", Json::str("00ff00ff00ff00ff")),
                ("rev", Json::str("test-rev")),
                ("requests", Json::int(64)),
                ("ok", Json::int(60)),
                ("errors", Json::int(4)),
                ("view_digest", Json::str("abcd")),
                ("serial_qps", Json::Num(qps / 2.0)),
                ("headline_qps", Json::Num(qps)),
                ("violations", Json::Arr(violations)),
            ]));
        }
        history
    }

    #[test]
    fn render_is_byte_stable() {
        let h = history();
        assert_eq!(render_report(&h), render_report(&h));
    }

    #[test]
    fn render_reflects_content_and_escapes() {
        let mut h = history();
        h.append_row(Json::obj(vec![
            ("name", Json::str("<script>")),
            ("headline_qps", Json::Num(1.0)),
        ]));
        let html = render_report(&h);
        assert!(html.contains("<h2>alpha</h2>"));
        assert!(html.contains("violation(s)"));
        assert!(html.contains("&lt;script&gt;"), "names are escaped");
        assert!(!html.contains("<script>"), "no raw injection");
    }
}
