//! Executes one [`Scenario`] against a live `StackServer`.
//!
//! A run has a fixed phase order:
//!
//! 1. **Workload generation** — the traffic recipe is lowered to concrete
//!    requests from the scenario seed (bit-reproducible).
//! 2. **Oracle pass** — a fault-free server serves the batch serially;
//!    its per-position outcomes are the equivalence reference.
//! 3. **Configured serial pass** — a server with the declared fault plan
//!    installed serves the same batch serially (serial fault replay is
//!    deterministic, so this pass supplies every counter and digest in
//!    [`ScenarioResult`]).
//! 4. **Batch rounds** — the declared worker sweep runs `serve_batch`
//!    rounds; each round's positions are verified against the oracle in
//!    parallel (violations funnel through the `scenarios.violations`
//!    tracked lock). Timings feed [`ScenarioPerf`] only.
//! 5. **Optional phases** — revocation storm, adversarial channel
//!    attacks, UDDI churn replay, mining pipeline replay, and the
//!    analysis-gate probe (a WS014-conflicting policy mutation that the
//!    `Deny` gate must reject without publishing).
//!
//! Determinism contract: [`ScenarioResult`] is byte-identical across runs
//! of the same `(scenario, seed)` for a passing scenario — it draws only
//! from serial passes and seeded sub-pipelines. Parallel batch rounds can
//! only *add violations* (and a failing parallel run is already a bug to
//! chase), while all wall-clock numbers live in [`ScenarioPerf`], which
//! is excluded from the determinism comparison.

use std::time::Instant;

use crate::corpus::hospital_stack;
use crate::scenario::{
    fnv1a, fnv1a_start, AdversarialSpec, Invariant, MiningSpec, RevocationStorm, Scenario,
    ScenarioResult, UddiChurn, Warmup,
};
use websec_core::prelude::*;

/// Threads used to verify a batch response against the oracle.
const VERIFY_THREADS: usize = 4;
/// Seed salt for the UDDI churn stream (distinct from workload drawing).
const UDDI_SALT: u64 = 0x7564_6469;
/// Seed salt for the mining pipeline stream.
const MINING_SALT: u64 = 0x6d69_6e65;
/// Seed salt for adversarial channel keys.
const ADVERSARIAL_SALT: u64 = 0x6164_7665;

/// One measured point of the worker sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// Worker count of this point.
    pub workers: usize,
    /// Best measured queries/sec at this point.
    pub qps: f64,
    /// Coalesced evaluations in the best round.
    pub coalesced: u64,
    /// Deque steals in the best round.
    pub steals: u64,
    /// Requests moved by steals in the best round.
    pub stolen_requests: u64,
    /// Injector pops in the best round.
    pub injector_pops: u64,
    /// Requests shed by admission control in the best round.
    pub shed: u64,
    /// Error positions in the best round.
    pub errors: u64,
}

/// Wall-clock numbers for one run. Perf is measured, not declared — two
/// runs of the same scenario legitimately differ here, which is why the
/// trend gate compares against a *median of history* rather than a single
/// prior run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioPerf {
    /// Queries/sec of the configured serial pass.
    pub serial_qps: f64,
    /// Queries/sec at the last (widest) worker point.
    pub headline_qps: f64,
    /// The full sweep.
    pub points: Vec<PerfPoint>,
}

/// The outcome of [`run_scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The scenario's fingerprint at the revision the run was made for.
    pub fingerprint: String,
    /// The deterministic result (invariants, counters, digests).
    pub result: ScenarioResult,
    /// The measured perf numbers.
    pub perf: ScenarioPerf,
}

/// A serial outcome: served bytes or a stable error code.
type Outcome = Result<String, String>;

fn serve_serial(server: &StackServer, requests: &[QueryRequest]) -> Vec<Outcome> {
    requests
        .iter()
        .map(|request| match server.serve(request) {
            Ok(response) => Ok(response.xml),
            Err(error) => Err(error.code().to_string()),
        })
        .collect()
}

fn qps(n: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        n as f64 / secs
    } else {
        0.0
    }
}

fn is_ws1xx(code: &str) -> bool {
    code.len() == 5 && code.starts_with("WS1") && code[3..].bytes().all(|b| b.is_ascii_digit())
}

fn digest_outcomes(outcomes: &[Outcome]) -> String {
    let mut hash = fnv1a_start();
    for outcome in outcomes {
        match outcome {
            Ok(xml) => {
                hash = fnv1a(b"O", hash);
                hash = fnv1a(xml.as_bytes(), hash);
            }
            Err(code) => {
                hash = fnv1a(b"E", hash);
                hash = fnv1a(code.as_bytes(), hash);
            }
        }
    }
    format!("{hash:016x}")
}

/// Runs one scenario and returns its fingerprint, deterministic result,
/// and measured perf.
#[must_use]
pub fn run_scenario(scenario: &Scenario, workspace_rev: &str) -> ScenarioRun {
    let fingerprint = scenario.fingerprint(workspace_rev);
    let mut rng = SecureRng::seeded(scenario.seed);
    let requests = scenario
        .traffic
        .generate(&scenario.corpus, scenario.requests, &mut rng);

    let make_config = || {
        let mut config = ServerConfig::new().decision_mode(scenario.decision_mode);
        if let Some(depth) = scenario.queue_limit {
            config = config.queue_limit(depth);
        }
        config
    };
    let build_server = |faulted: bool| {
        let server = StackServer::with_config(hospital_stack(&scenario.corpus), make_config());
        if faulted {
            if let Some(plan) = &scenario.fault_plan {
                let _ = server.install_faults(plan.clone());
            }
        }
        server
    };

    // Phase 2: the fault-free serial oracle.
    let oracle_server = build_server(false);
    let oracle = serve_serial(&oracle_server, &requests);

    // Phase 3: the configured serial pass (identical to the oracle pass
    // when no fault plan is declared, but re-timed on a fresh server so
    // serial_qps always measures the declared configuration).
    let configured_server = build_server(true);
    let t = Instant::now();
    let serial_outcomes = serve_serial(&configured_server, &requests);
    let serial_qps = qps(requests.len(), t.elapsed().as_secs_f64());

    let mut violations: Vec<String> = Vec::new();
    let has = |invariant: Invariant| scenario.invariants.contains(&invariant);

    // Serial-pass invariants.
    for (i, outcome) in serial_outcomes.iter().enumerate() {
        match outcome {
            Ok(bytes) => {
                if has(Invariant::SerialEquivalence) {
                    match &oracle[i] {
                        Ok(expected) if expected == bytes => {}
                        Ok(_) => violations.push(format!(
                            "serial_equivalence: request {i} bytes diverged from the oracle"
                        )),
                        Err(code) => violations.push(format!(
                            "serial_equivalence: request {i} succeeded where the oracle failed ({code})"
                        )),
                    }
                }
            }
            Err(code) => {
                if has(Invariant::ErrorFree) {
                    violations.push(format!("error_free: request {i} failed with {code}"));
                }
                if has(Invariant::ErrorsAreWs1xx) && !is_ws1xx(code) {
                    violations.push(format!(
                        "errors_are_ws1xx: request {i} failed with non-WS1xx code {code}"
                    ));
                }
                if has(Invariant::SerialEquivalence) {
                    let matches_oracle = matches!(&oracle[i], Err(expected) if expected == code);
                    let transient = scenario.fault_plan.is_some() && is_ws1xx(code);
                    if !matches_oracle && !transient {
                        violations.push(format!(
                            "serial_equivalence: request {i} failed with {code} where the oracle did not"
                        ));
                    }
                }
            }
        }
    }

    // Phase 4: batch rounds over the worker sweep.
    let mut points = Vec::new();
    for &workers in &scenario.workers {
        let batch = BatchRequest::new(requests.clone()).workers(workers);
        let mut best: Option<(f64, BatchStats, u64)> = None;
        match scenario.warmup {
            Warmup::Warm => {
                let server = build_server(true);
                let _ = server.serve_batch(&batch);
                for _ in 0..scenario.rounds {
                    let t = Instant::now();
                    let response = server.serve_batch(&batch);
                    let secs = t.elapsed().as_secs_f64();
                    let errors =
                        verify_batch(scenario, &oracle, &response.results, &mut violations, workers);
                    let round_qps = qps(requests.len(), secs);
                    if best.as_ref().is_none_or(|(q, _, _)| round_qps > *q) {
                        best = Some((round_qps, response.stats, errors));
                    }
                }
            }
            Warmup::Cold => {
                // Unmeasured ramp-up on a throwaway server.
                let _ = build_server(true).serve_batch(&batch);
                for _ in 0..scenario.rounds {
                    let server = build_server(true);
                    let t = Instant::now();
                    let response = server.serve_batch(&batch);
                    let secs = t.elapsed().as_secs_f64();
                    let errors =
                        verify_batch(scenario, &oracle, &response.results, &mut violations, workers);
                    let round_qps = qps(requests.len(), secs);
                    if best.as_ref().is_none_or(|(q, _, _)| round_qps > *q) {
                        best = Some((round_qps, response.stats, errors));
                    }
                }
            }
        }
        if let Some((point_qps, stats, errors)) = best {
            points.push(PerfPoint {
                workers,
                qps: point_qps,
                coalesced: stats.coalesced,
                steals: stats.steals,
                stolen_requests: stats.stolen_requests,
                injector_pops: stats.injector_pops,
                shed: stats.shed as u64,
                errors,
            });
        }
    }
    let headline_qps = points.last().map_or(serial_qps, |p| p.qps);

    // Phase 5: optional phases.
    let mut result = ScenarioResult {
        name: scenario.name.clone(),
        seed: scenario.seed,
        requests: requests.len(),
        ..ScenarioResult::default()
    };
    result.ok = serial_outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    result.errors = serial_outcomes.len() as u64 - result.ok;
    let mut codes = std::collections::BTreeMap::new();
    for outcome in &serial_outcomes {
        if let Err(code) = outcome {
            *codes.entry(code.clone()).or_insert(0u64) += 1;
        }
    }
    result.error_codes = codes.into_iter().collect();
    result.view_digest = digest_outcomes(&serial_outcomes);

    if let Some(storm) = &scenario.revocation {
        run_revocation_storm(scenario, storm, &build_server, &mut result, &mut violations);
    }
    if let Some(adversarial) = &scenario.adversarial {
        run_adversarial(scenario, adversarial, &mut result, &mut violations);
    }
    if let Some(churn) = &scenario.uddi {
        run_uddi_churn(scenario, churn, &mut result, &mut violations);
    }
    if let Some(mining) = &scenario.mining {
        run_mining(scenario, mining, &mut result, &mut violations);
    }
    if scenario.gate_probe {
        run_gate_probe(scenario, &build_server, &mut result, &mut violations);
    }

    violations.sort();
    violations.dedup();
    result.violations = violations;

    ScenarioRun {
        fingerprint,
        result,
        perf: ScenarioPerf {
            serial_qps,
            headline_qps,
            points,
        },
    }
}

/// Verifies one batch response against the oracle, in parallel: positions
/// are split across [`VERIFY_THREADS`] checkers, each funnelling its
/// findings through the `scenarios.violations` tracked lock (and bumping
/// the `scenarios.verified` counter), so the harness's own sync state is
/// visible to the lockdep/race detector like any other engine state.
/// Returns the number of error positions in the response.
fn verify_batch(
    scenario: &Scenario,
    oracle: &[Outcome],
    results: &[Result<QueryResponse, Error>],
    violations: &mut Vec<String>,
    workers: usize,
) -> u64 {
    let shared = TrackedMutex::new("scenarios.violations", Vec::<String>::new());
    let verified = TrackedAtomicU64::counter("scenarios.verified", 0);
    let errors = TrackedAtomicU64::counter("scenarios.batch_errors", 0);
    let faulted = scenario.fault_plan.is_some();
    let check_equivalence = scenario.invariants.contains(&Invariant::SerialEquivalence);
    let check_ws1xx = scenario.invariants.contains(&Invariant::ErrorsAreWs1xx);
    let check_error_free = scenario.invariants.contains(&Invariant::ErrorFree);
    let chunk = results.len().div_ceil(VERIFY_THREADS).max(1);

    std::thread::scope(|scope| {
        for (t, slice) in results.chunks(chunk).enumerate() {
            let (shared, verified, errors) = (&shared, &verified, &errors);
            scope.spawn(move || {
                use std::sync::atomic::Ordering;
                let mut local = Vec::new();
                for (off, outcome) in slice.iter().enumerate() {
                    let i = t * chunk + off;
                    verified.fetch_add(1, Ordering::Relaxed);
                    match outcome {
                        Ok(response) => {
                            if check_equivalence {
                                match &oracle[i] {
                                    Ok(expected) if *expected == response.xml => {}
                                    Ok(_) => local.push(format!(
                                        "serial_equivalence: batch x{workers} request {i} bytes \
                                         diverged from the oracle"
                                    )),
                                    Err(code) => local.push(format!(
                                        "serial_equivalence: batch x{workers} request {i} \
                                         succeeded where the oracle failed ({code})"
                                    )),
                                }
                            }
                        }
                        Err(error) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            let code = error.code();
                            if check_error_free {
                                local.push(format!(
                                    "error_free: batch x{workers} request {i} failed with {code}"
                                ));
                            }
                            if check_ws1xx && !is_ws1xx(code) {
                                local.push(format!(
                                    "errors_are_ws1xx: batch x{workers} request {i} failed with \
                                     non-WS1xx code {code}"
                                ));
                            }
                            if check_equivalence {
                                let matches_oracle =
                                    matches!(&oracle[i], Err(expected) if expected == code);
                                let transient = faulted && is_ws1xx(code);
                                if !matches_oracle && !transient {
                                    local.push(format!(
                                        "serial_equivalence: batch x{workers} request {i} failed \
                                         with {code} where the oracle did not"
                                    ));
                                }
                            }
                        }
                    }
                }
                if !local.is_empty() {
                    shared.lock().expect("scenarios.violations poisoned").extend(local);
                }
            });
        }
    });

    use std::sync::atomic::Ordering;
    let mut found: Vec<String> =
        shared.lock().expect("scenarios.violations poisoned").drain(..).collect();
    // Chunk completion order is nondeterministic; sorting here keeps the
    // final violation list stable for a fixed set of findings.
    found.sort();
    violations.extend(found);
    errors.load(Ordering::Relaxed)
}

fn run_revocation_storm(
    scenario: &Scenario,
    storm: &RevocationStorm,
    build_server: &dyn Fn(bool) -> StackServer,
    result: &mut ScenarioResult,
    violations: &mut Vec<String>,
) {
    let spec = &scenario.corpus;
    let server = build_server(false);
    let subjects = storm.subjects.max(1);
    let probe = |s: usize| {
        let p = s % spec.patients.max(1);
        (
            QueryRequest::for_doc("records.xml")
                .path(Path::parse(&format!("//patient[@id='p{p}']")).expect("valid path"))
                .subject(&SubjectProfile::new(&spec.granted_subject(s)))
                .clearance(Clearance(Level::Unclassified)),
            format!(">N{p}<"),
        )
    };

    // Pre-storm: every targeted subject must actually hold the access the
    // storm is about to revoke (otherwise the scenario proves nothing).
    for s in 0..subjects {
        let (request, marker) = probe(s);
        match server.serve(&request) {
            Ok(response) if response.xml.contains(&marker) => {}
            _ => violations.push(format!(
                "revocation: subject {} had no access before the storm",
                spec.granted_subject(s)
            )),
        }
    }

    for u in 0..storm.updates {
        let subject = spec.granted_subject(u % subjects);
        server.update(|stack| {
            stack.policies.add(
                Authorization::for_subject(SubjectSpec::Identity(subject.clone()))
                    .on(ObjectSpec::Document("records.xml".into()))
                    .privilege(Privilege::Read)
                    .deny(),
            );
        });
    }
    result.revocation_updates = storm.updates as u64;

    // Post-storm: the first serve after the committed epoch must miss the
    // view cache and must not expose revoked content.
    let mut stale = 0u64;
    for s in 0..subjects.min(storm.updates) {
        let (request, marker) = probe(s);
        match server.serve(&request) {
            Ok(response) => {
                if response.cache == CacheStatus::Hit {
                    stale += 1;
                    violations.push(format!(
                        "no_stale_after_revocation: subject {} answered from a stale cache entry",
                        spec.granted_subject(s)
                    ));
                }
                if response.xml.contains(&marker) {
                    stale += 1;
                    violations.push(format!(
                        "no_stale_after_revocation: subject {} still sees revoked content",
                        spec.granted_subject(s)
                    ));
                }
            }
            Err(error) => {
                // A denial expressed as an error is fine; it is not stale.
                if !is_ws1xx(error.code()) {
                    violations.push(format!(
                        "no_stale_after_revocation: post-storm serve failed with non-WS1xx {}",
                        error.code()
                    ));
                }
            }
        }
    }
    result.stale_after_revocation = stale;
    if !scenario.invariants.contains(&Invariant::NoStaleAfterRevocation) {
        // The stale count is still recorded, but without the declared
        // invariant it does not fail the run.
        violations.retain(|v| !v.starts_with("no_stale_after_revocation:"));
    }
}

fn run_adversarial(
    scenario: &Scenario,
    adversarial: &AdversarialSpec,
    result: &mut ScenarioResult,
    violations: &mut Vec<String>,
) {
    let master_key = [scenario.corpus.master_seed; 32];
    let mut rng = SecureRng::seeded(scenario.seed ^ ADVERSARIAL_SALT);

    let mut tamper_rejected = 0u64;
    for k in 0..adversarial.tampers {
        let mut session = ChannelSession::establish(&master_key, &format!("adv-{k}"), true);
        let payload = format!("probe-{k}-{}", rng.next_u64());
        match session.transit_to_server_tampered(payload.as_bytes()) {
            Err(_) => {
                tamper_rejected += 1;
                // The session must stay usable: the authentic retransmit
                // delivers the original payload.
                match session.transit_to_server(payload.as_bytes()) {
                    Ok(delivered) if delivered == payload.as_bytes() => {}
                    _ => violations.push(format!(
                        "adversarial: session adv-{k} unusable after a rejected tamper"
                    )),
                }
            }
            Ok(_) => violations.push(format!(
                "adversarial: tampered record {k} was delivered instead of rejected"
            )),
        }
    }

    let mut replay_rejected = 0u64;
    for k in 0..adversarial.replays {
        let mut session_key = [0u8; 32];
        rng.fill(&mut session_key);
        let mut client = SecureChannel::new(&session_key, true);
        let mut server = SecureChannel::new(&session_key, true);
        let message = format!("order-{k}");
        let record = client.seal(message.as_bytes());
        if server.open(&record).is_err() {
            violations.push(format!(
                "adversarial: authentic record {k} rejected on first delivery"
            ));
            continue;
        }
        match server.open(&record) {
            Err(_) => replay_rejected += 1,
            Ok(_) => violations.push(format!(
                "adversarial: replayed record {k} was accepted a second time"
            )),
        }
    }

    result.tamper_rejected = tamper_rejected;
    result.replay_rejected = replay_rejected;
    result.adversarial_attempts = (adversarial.tampers + adversarial.replays) as u64;
}

/// Drives the analysis-gate rejection path end to end: under
/// `AnalysisGate::Deny`, a policy mutation that flips the stack to
/// explicit-priority resolution and adds an equal-priority grant/deny
/// pair on the same portion (a textbook WS014 conflict, and a WS001 tie
/// at the AST level) must be rejected with `WS109`, the rejection must
/// name `WS014`, and the published snapshot must keep serving the
/// pre-mutation bytes.
fn run_gate_probe(
    scenario: &Scenario,
    build_server: &dyn Fn(bool) -> StackServer,
    result: &mut ScenarioResult,
    violations: &mut Vec<String>,
) {
    let spec = &scenario.corpus;
    let server = build_server(false);
    server.set_analysis_gate(AnalysisGate::Deny);
    result.gate_probes = 1;

    let probe = QueryRequest::for_doc("records.xml")
        .path(Path::parse("//patient[@id='p0']").expect("valid path"))
        .subject(&SubjectProfile::new(&spec.granted_subject(0)))
        .clearance(Clearance(Level::Unclassified));
    let before = match server.serve(&probe) {
        Ok(response) => response.xml,
        Err(error) => {
            violations.push(format!(
                "gate_probe: pre-mutation probe failed with {}",
                error.code()
            ));
            return;
        }
    };

    let outcome = server.try_update(|stack| {
        stack.engine.strategy = ConflictStrategy::ExplicitPriority;
        let conflicted = |sign: bool| {
            let auth = Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Portion {
                    document: "records.xml".into(),
                    path: Path::parse("//patient").expect("valid path"),
                })
                .privilege(Privilege::Read)
                .priority(3);
            if sign {
                auth.grant()
            } else {
                auth.deny()
            }
        };
        stack.policies.add(conflicted(true));
        stack.policies.add(conflicted(false));
    });
    match outcome {
        Err(error) => {
            result.gate_rejections = 1;
            if error.code() != "WS109" {
                violations.push(format!(
                    "gate_probe: rejection carried {} instead of WS109",
                    error.code()
                ));
            }
            if !error.to_string().contains("WS014") {
                violations.push(
                    "gate_probe: rejection did not name the WS014 conflict".to_string(),
                );
            }
        }
        Ok(()) => violations.push(
            "gate_probe: the Deny gate accepted a WS014-conflicting mutation".to_string(),
        ),
    }

    // The rejected update must not have published anything: the same
    // probe answers with byte-identical content.
    match server.serve(&probe) {
        Ok(response) if response.xml == before => {}
        Ok(_) => violations.push(
            "gate_probe: served bytes changed after a rejected update".to_string(),
        ),
        Err(error) => violations.push(format!(
            "gate_probe: post-rejection probe failed with {}",
            error.code()
        )),
    }
    server.set_analysis_gate(AnalysisGate::Off);
}

fn uddi_churn_pass(seed: u64, churn: &UddiChurn) -> String {
    let mut rng = SecureRng::seeded(seed);
    let mut registry = UddiRegistry::new();
    let mut hash = fnv1a_start();
    for i in 0..churn.businesses {
        registry.save_business(BusinessEntity::new(
            &format!("biz-{i}"),
            &format!("Provider {}", rng.gen_range(1000)),
        ));
    }
    let key_space = (churn.businesses * 2).max(1) as u64;
    for _ in 0..churn.ops {
        match rng.gen_range(3) {
            0 => {
                let key = format!("biz-{}", rng.gen_range(key_space));
                registry.save_business(BusinessEntity::new(
                    &key,
                    &format!("Provider {}", rng.gen_range(1000)),
                ));
                hash = fnv1a(format!("save:{key}").as_bytes(), hash);
            }
            1 => {
                let key = format!("biz-{}", rng.gen_range(key_space));
                let outcome = registry.delete_business(&key).is_ok();
                hash = fnv1a(format!("delete:{key}:{outcome}").as_bytes(), hash);
            }
            _ => {
                let prefix = format!("Provider {}", rng.gen_range(10));
                let request = InquiryRequest::find_business().name_approx(&prefix);
                let rendered = match registry.inquire(&request) {
                    Ok(response) => format!("{response:?}"),
                    Err(error) => format!("{error:?}"),
                };
                hash = fnv1a(format!("inquire:{prefix}:{rendered}").as_bytes(), hash);
            }
        }
    }
    hash = fnv1a(format!("count:{}", registry.business_count()).as_bytes(), hash);
    format!("{hash:016x}")
}

fn run_uddi_churn(
    scenario: &Scenario,
    churn: &UddiChurn,
    result: &mut ScenarioResult,
    violations: &mut Vec<String>,
) {
    let seed = scenario.seed ^ UDDI_SALT;
    let first = uddi_churn_pass(seed, churn);
    let replay = uddi_churn_pass(seed, churn);
    if first != replay {
        violations.push(format!(
            "uddi: churn replay diverged ({first} vs {replay})"
        ));
    }
    result.uddi_digest = first;
    result.uddi_ops = (churn.businesses + churn.ops) as u64;
}

fn mining_pass(seed: u64, spec: &MiningSpec) -> (u64, String) {
    let data = zipf_baskets(
        seed,
        spec.baskets,
        spec.items,
        spec.avg_len,
        f64::from(spec.s_hundredths) / 100.0,
    );
    let miner = Apriori::new(
        f64::from(spec.min_support_ppm) / 1_000_000.0,
        f64::from(spec.min_confidence_ppm) / 1_000_000.0,
    );
    let mut rules = miner.rules(&data);
    // The miner iterates hash maps internally; sort so the digest is a
    // function of the rule *set*, not of iteration order.
    rules.sort_by(|a, b| {
        (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent))
    });
    let mut hash = fnv1a_start();
    for rule in &rules {
        hash = fnv1a(
            format!(
                "{:?}=>{:?}:{:016x}:{:016x}",
                rule.antecedent,
                rule.consequent,
                rule.support.to_bits(),
                rule.confidence.to_bits()
            )
            .as_bytes(),
            hash,
        );
    }
    (rules.len() as u64, format!("{hash:016x}"))
}

fn run_mining(
    scenario: &Scenario,
    spec: &MiningSpec,
    result: &mut ScenarioResult,
    violations: &mut Vec<String>,
) {
    let seed = scenario.seed ^ MINING_SALT;
    let (rules, digest) = mining_pass(seed, spec);
    let (replay_rules, replay_digest) = mining_pass(seed, spec);
    if digest != replay_digest || rules != replay_rules {
        violations.push(format!(
            "mining: pipeline replay diverged ({digest} vs {replay_digest})"
        ));
    }
    result.mining_rules = rules;
    result.mining_digest = digest;
}
