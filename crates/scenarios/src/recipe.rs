//! Composable traffic recipes.
//!
//! A [`Recipe`] is a small enumo-style expression describing *how requests
//! are made*, not a concrete request list: leaves are request shapes
//! (authorized patient reads, empty-view clerk queries, clearance-denied
//! probes, unknown-document errors), combinators weight ([`Recipe::Mix`])
//! or interleave ([`Recipe::Cycle`]) them, and [`Recipe::generate`]
//! lowers the expression to a `Vec<QueryRequest>` by drawing every choice
//! from one seeded `SecureRng` stream — so a `(recipe, seed)` pair is a
//! bit-reproducible workload.

use crate::corpus::HospitalSpec;
use websec_core::prelude::*;

/// How a per-request parameter (subject index, patient index) is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pick {
    /// Always the same index.
    Fixed(usize),
    /// The request index modulo the population size (round-robin).
    Modulo,
    /// Drawn uniformly from the seeded rng stream.
    Uniform,
    /// A fresh identity per request (`solo-{i}`): the no-duplicate worst
    /// case — nothing coalesces, no cache level answers twice. For
    /// non-identity parameters this falls back to [`Pick::Modulo`].
    Unique,
}

impl Pick {
    fn index(self, i: usize, population: usize, rng: &mut SecureRng) -> usize {
        let population = population.max(1);
        match self {
            Pick::Fixed(k) => k % population,
            Pick::Modulo | Pick::Unique => i % population,
            Pick::Uniform => rng.gen_range(population as u64) as usize,
        }
    }
}

/// A declarative traffic generator over a [`HospitalSpec`] corpus.
#[derive(Debug, Clone, PartialEq)]
pub enum Recipe {
    /// An authorized `//patient[@id='p{k}']` read by a granted subject
    /// (or a unique `solo-{i}` subject when `subject` is [`Pick::Unique`]).
    PatientRead {
        /// How the subject identity is chosen.
        subject: Pick,
        /// How the patient record is chosen.
        patient: Pick,
    },
    /// An ungranted clerk's `//patient` query: allowed through with an
    /// empty view (no grant matches).
    ClerkView {
        /// How the clerk identity is chosen.
        subject: Pick,
    },
    /// A clearance-denied probe of the Secret document (`WS102`).
    SecretProbe {
        /// How the probing subject is chosen.
        subject: Pick,
    },
    /// A request for a document the stack does not hold (`WS101`).
    MissingDoc {
        /// How the requesting subject is chosen.
        subject: Pick,
    },
    /// The historical `serving_bench` mixed workload, exactly: request `i`
    /// is a secret probe when `i % 7 == 3`, a clerk view when `i % 5 == 1`,
    /// and an authorized patient read otherwise (heavy-tailed repeats —
    /// the distribution coalescing exploits).
    HospitalMix,
    /// Weighted choice between sub-recipes: each request draws one branch
    /// from the seeded rng with probability proportional to its weight.
    Mix(Vec<(u32, Recipe)>),
    /// Deterministic interleave: request `i` uses sub-recipe `i % len`.
    Cycle(Vec<Recipe>),
}

impl Recipe {
    /// The `serving_bench` mixed workload as a recipe value.
    #[must_use]
    pub fn mixed_hospital() -> Recipe {
        Recipe::HospitalMix
    }

    /// The no-duplicate worst case: every request a unique subject, so no
    /// two requests share an evaluation, a session, or a cache entry.
    #[must_use]
    pub fn nodup_worstcase() -> Recipe {
        Recipe::PatientRead {
            subject: Pick::Unique,
            patient: Pick::Modulo,
        }
    }

    /// Lowers the recipe to `n` concrete requests, drawing every choice
    /// from `rng` (one stream for the whole batch — bit-reproducible for
    /// a fixed seed).
    #[must_use]
    pub fn generate(&self, spec: &HospitalSpec, n: usize, rng: &mut SecureRng) -> Vec<QueryRequest> {
        (0..n).map(|i| self.request_at(i, spec, rng)).collect()
    }

    fn subject_for(pick: Pick, i: usize, spec: &HospitalSpec, rng: &mut SecureRng) -> SubjectProfile {
        match pick {
            Pick::Unique => SubjectProfile::new(&format!("solo-{i}")),
            other => {
                let k = other.index(i, spec.granted, rng);
                SubjectProfile::new(&spec.granted_subject(k))
            }
        }
    }

    fn request_at(&self, i: usize, spec: &HospitalSpec, rng: &mut SecureRng) -> QueryRequest {
        match self {
            Recipe::PatientRead { subject, patient } => {
                let p = patient.index(i, spec.patients, rng);
                QueryRequest::for_doc("records.xml")
                    .path(Path::parse(&format!("//patient[@id='p{p}']")).expect("valid path"))
                    .subject(&Self::subject_for(*subject, i, spec, rng))
                    .clearance(Clearance(Level::Unclassified))
            }
            Recipe::ClerkView { subject } => {
                let k = subject.index(i, spec.clerks, rng);
                QueryRequest::for_doc("records.xml")
                    .path(Path::parse("//patient").expect("valid path"))
                    .subject(&SubjectProfile::new(&spec.clerk_subject(k)))
                    .clearance(Clearance(Level::Unclassified))
            }
            Recipe::SecretProbe { subject } => QueryRequest::for_doc("secret.xml")
                .path(Path::parse("//plan").expect("valid path"))
                .subject(&Self::subject_for(*subject, i, spec, rng))
                .clearance(Clearance(Level::Unclassified)),
            Recipe::MissingDoc { subject } => QueryRequest::for_doc("missing.xml")
                .path(Path::parse("//x").expect("valid path"))
                .subject(&Self::subject_for(*subject, i, spec, rng))
                .clearance(Clearance(Level::Unclassified)),
            Recipe::HospitalMix => {
                if i % 7 == 3 {
                    Recipe::SecretProbe { subject: Pick::Modulo }.request_at(i, spec, rng)
                } else if i % 5 == 1 {
                    Recipe::ClerkView { subject: Pick::Modulo }.request_at(i, spec, rng)
                } else {
                    Recipe::PatientRead {
                        subject: Pick::Modulo,
                        patient: Pick::Modulo,
                    }
                    .request_at(i, spec, rng)
                }
            }
            Recipe::Mix(branches) => {
                let total: u64 = branches.iter().map(|(w, _)| u64::from(*w)).sum();
                let mut draw = rng.gen_range(total.max(1));
                for (w, recipe) in branches {
                    if draw < u64::from(*w) {
                        return recipe.request_at(i, spec, rng);
                    }
                    draw -= u64::from(*w);
                }
                // Unreachable for non-empty branches; an empty Mix degrades
                // to the baseline read rather than panicking in a bench.
                Recipe::PatientRead {
                    subject: Pick::Modulo,
                    patient: Pick::Modulo,
                }
                .request_at(i, spec, rng)
            }
            Recipe::Cycle(parts) => {
                if parts.is_empty() {
                    return Recipe::PatientRead {
                        subject: Pick::Modulo,
                        patient: Pick::Modulo,
                    }
                    .request_at(i, spec, rng);
                }
                parts[i % parts.len()].request_at(i, spec, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HospitalSpec {
        HospitalSpec::bench()
    }

    #[test]
    fn generation_is_bit_reproducible() {
        let recipe = Recipe::Mix(vec![
            (3, Recipe::mixed_hospital()),
            (1, Recipe::MissingDoc { subject: Pick::Uniform }),
        ]);
        let a = recipe.generate(&spec(), 64, &mut SecureRng::seeded(9));
        let b = recipe.generate(&spec(), 64, &mut SecureRng::seeded(9));
        let dump = |r: &[QueryRequest]| format!("{r:?}");
        assert_eq!(dump(&a), dump(&b));
    }

    #[test]
    fn hospital_mix_matches_the_bench_pattern() {
        let requests = Recipe::mixed_hospital().generate(&spec(), 35, &mut SecureRng::seeded(1));
        assert_eq!(requests[3].doc_name(), "secret.xml");
        assert_eq!(requests[6].doc_name(), "records.xml");
        // i == 21 hits i % 5 == 1 (clerk) since 21 % 7 != 3.
        assert!(requests[21].subject_profile().identity.contains("clerk-"));
    }

    #[test]
    fn nodup_subjects_are_unique() {
        let requests = Recipe::nodup_worstcase().generate(&spec(), 128, &mut SecureRng::seeded(2));
        let mut subjects: Vec<String> = requests
            .iter()
            .map(|r| r.subject_profile().identity.clone())
            .collect();
        subjects.sort();
        subjects.dedup();
        assert_eq!(subjects.len(), 128, "every request must carry a fresh subject");
    }
}
