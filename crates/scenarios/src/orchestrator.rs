//! The end-to-end suite driver: cache lookups, runs, history appends,
//! trend gating, and report rendering — the loop `check.sh` and the
//! `websec-scenarios` binary sit on.

use std::path::PathBuf;

use crate::cache::{History, TrendVerdict};
use crate::json::Json;
use crate::report::render_report;
use crate::runner::{run_scenario, ScenarioRun};
use crate::scenario::{CacheState, Scenario};

/// Options for one [`run_suite`] invocation.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// History file read for cache/trend state and appended with new rows.
    pub history_path: PathBuf,
    /// Where to render the HTML report (skipped when `None`).
    pub report_path: Option<PathBuf>,
    /// Case-sensitive substring filter over scenario names.
    pub filter: Option<String>,
    /// Whether trend regressions fail the suite.
    pub gate_trend: bool,
    /// Fraction of the history median the current run must clear.
    pub trend_floor: f64,
    /// Run everything even on a fingerprint match.
    pub force: bool,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            history_path: PathBuf::from("BENCH_scenarios.json"),
            report_path: None,
            filter: None,
            gate_trend: false,
            trend_floor: 0.5,
            force: false,
        }
    }
}

/// One scenario's outcome within a suite run.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Scenario name.
    pub name: String,
    /// Whether the fingerprint cache answered it.
    pub cache: CacheState,
    /// The fingerprint the scenario resolved to.
    pub fingerprint: String,
    /// Headline throughput (recorded row on a hit, fresh run on a miss).
    pub headline_qps: f64,
    /// Invariant violations (from the recorded row on a hit).
    pub violations: Vec<String>,
    /// Trend verdict against the prior history.
    pub trend: TrendVerdict,
}

/// The outcome of a whole suite run.
#[derive(Debug, Clone)]
pub struct SuiteSummary {
    /// Per-scenario outcomes, in suite order.
    pub entries: Vec<SuiteEntry>,
    /// Scenarios answered from the fingerprint cache.
    pub cache_hits: usize,
    /// Scenarios actually run.
    pub cache_misses: usize,
    /// Whether any scenario failed (violations, or a trend regression
    /// when gating is on).
    pub failed: bool,
}

/// Best-effort current workspace revision: walks up from the working
/// directory to a `.git`, resolves `HEAD` through one level of ref
/// indirection (including packed refs), and falls back to `"unknown"`.
/// Only used as a cache-busting fingerprint ingredient — correctness
/// never depends on it.
#[must_use]
pub fn workspace_rev() -> String {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            if let Ok(head) = std::fs::read_to_string(git.join("HEAD")) {
                let head = head.trim();
                if let Some(reference) = head.strip_prefix("ref: ") {
                    if let Ok(sha) = std::fs::read_to_string(git.join(reference)) {
                        return short(sha.trim());
                    }
                    if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
                        for line in packed.lines() {
                            if let Some(sha) = line.strip_suffix(reference) {
                                return short(sha.trim());
                            }
                        }
                    }
                    return "unknown".to_string();
                }
                return short(head);
            }
            return "unknown".to_string();
        }
        if !dir.pop() {
            return "unknown".to_string();
        }
    }
}

fn short(sha: &str) -> String {
    sha.chars().take(12).collect()
}

fn round1(value: f64) -> f64 {
    (value * 10.0).round() / 10.0
}

/// Builds the history row for one completed run (also the shape the
/// JSON-schema test locks down).
#[must_use]
pub fn result_row(run: &ScenarioRun, rev: &str) -> Json {
    let result = &run.result;
    let error_codes = Json::Obj(
        result
            .error_codes
            .iter()
            .map(|(code, count)| (code.clone(), Json::int(*count)))
            .collect(),
    );
    let violations = Json::Arr(result.violations.iter().map(|v| Json::str(v)).collect());
    let points = Json::Arr(
        run.perf
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("workers", Json::int(p.workers as u64)),
                    ("qps", Json::Num(round1(p.qps))),
                    ("coalesced", Json::int(p.coalesced)),
                    ("steals", Json::int(p.steals)),
                    ("stolen_requests", Json::int(p.stolen_requests)),
                    ("injector_pops", Json::int(p.injector_pops)),
                    ("shed", Json::int(p.shed)),
                    ("errors", Json::int(p.errors)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("name", Json::str(&result.name)),
        ("seed", Json::int(result.seed)),
        ("fingerprint", Json::str(&run.fingerprint)),
        ("rev", Json::str(rev)),
        ("requests", Json::int(result.requests as u64)),
        ("ok", Json::int(result.ok)),
        ("errors", Json::int(result.errors)),
        ("error_codes", error_codes),
        ("view_digest", Json::str(&result.view_digest)),
        ("revocation_updates", Json::int(result.revocation_updates)),
        ("stale_after_revocation", Json::int(result.stale_after_revocation)),
        ("tamper_rejected", Json::int(result.tamper_rejected)),
        ("replay_rejected", Json::int(result.replay_rejected)),
        ("adversarial_attempts", Json::int(result.adversarial_attempts)),
        ("uddi_digest", Json::str(&result.uddi_digest)),
        ("uddi_ops", Json::int(result.uddi_ops)),
        ("mining_rules", Json::int(result.mining_rules)),
        ("mining_digest", Json::str(&result.mining_digest)),
        ("gate_probes", Json::int(result.gate_probes)),
        ("gate_rejections", Json::int(result.gate_rejections)),
        ("violations", violations),
        ("serial_qps", Json::Num(round1(run.perf.serial_qps))),
        ("headline_qps", Json::Num(round1(run.perf.headline_qps))),
        ("points", points),
    ])
}

/// Runs a suite: for each (filtered) scenario, answers from the
/// fingerprint cache when the latest history row matches, runs and
/// appends a row otherwise; gates violations (always) and trend
/// regressions (when `gate_trend`); saves the history when it grew and
/// renders the report when a path is configured.
#[must_use]
pub fn run_suite(scenarios: &[Scenario], opts: &SuiteOptions) -> SuiteSummary {
    let rev = workspace_rev();
    let mut history = History::load(&opts.history_path);
    let mut entries = Vec::new();
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut failed = false;

    for scenario in scenarios {
        if let Some(filter) = &opts.filter {
            if !scenario.name.contains(filter.as_str()) {
                continue;
            }
        }
        let fingerprint = scenario.fingerprint(&rev);
        let entry = if !opts.force && history.cached(&scenario.name, &fingerprint) {
            cache_hits += 1;
            let latest = history.rows_for(&scenario.name).last().copied().cloned();
            let headline_qps = latest
                .as_ref()
                .and_then(|row| row.get("headline_qps"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let violations = latest
                .as_ref()
                .and_then(|row| row.get("violations"))
                .and_then(Json::as_array)
                .map(|rows| {
                    rows.iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            let trend = history.trend(&scenario.name, headline_qps, opts.trend_floor, true);
            SuiteEntry {
                name: scenario.name.clone(),
                cache: CacheState::Hit,
                fingerprint,
                headline_qps,
                violations,
                trend,
            }
        } else {
            cache_misses += 1;
            let run = run_scenario(scenario, &rev);
            history.append_row(result_row(&run, &rev));
            let trend =
                history.trend(&scenario.name, run.perf.headline_qps, opts.trend_floor, true);
            SuiteEntry {
                name: scenario.name.clone(),
                cache: CacheState::Miss,
                fingerprint: run.fingerprint,
                headline_qps: run.perf.headline_qps,
                violations: run.result.violations,
                trend,
            }
        };
        if !entry.violations.is_empty() {
            failed = true;
        }
        if opts.gate_trend && entry.trend.regressed() {
            failed = true;
        }
        entries.push(entry);
    }

    if cache_misses > 0 {
        history
            .save(&opts.history_path)
            .expect("write scenario history");
    }
    if let Some(report_path) = &opts.report_path {
        std::fs::write(report_path, render_report(&history)).expect("write scenario report");
    }

    SuiteSummary {
        entries,
        cache_hits,
        cache_misses,
        failed,
    }
}
