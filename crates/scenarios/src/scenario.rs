//! The [`Scenario`] data model.
//!
//! A scenario is everything one run needs, declared as a plain value:
//! corpus shape, traffic recipe, fault plan, revocation storm, UDDI churn,
//! mining pipeline, adversarial channel attacks, decision mode, worker
//! sweep, and the invariants the run must uphold. Because the whole
//! configuration is data, it is diffable, `Debug`-fingerprintable (see
//! [`Scenario::fingerprint`]), and replayable from its seed alone.

use crate::corpus::HospitalSpec;
use crate::recipe::Recipe;
use websec_core::prelude::*;

/// How batch measurement rounds treat server state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Warmup {
    /// One server per worker point; an unmeasured warm batch populates
    /// sessions and view caches before the measured round (the mixed-
    /// workload bench shape).
    Warm,
    /// A fresh server per measured round, after one unmeasured ramp-up
    /// round on a throwaway server (the no-duplicate bench shape — the
    /// workload must stay cold).
    Cold,
}

/// A property the run must uphold; violations fail the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Every batch position is byte-identical to the fault-free serial
    /// oracle, or (under an active fault plan) a stable `WS1xx` error —
    /// the chaos contract.
    SerialEquivalence,
    /// Every error anywhere in the run carries a `WS1xx` code (no panics
    /// laundered into ad-hoc failures, no unknown codes).
    ErrorsAreWs1xx,
    /// After a committed revocation epoch, no served view may contain
    /// revoked content and the first post-revocation serve must miss the
    /// view cache (no stale views past the epoch).
    NoStaleAfterRevocation,
    /// The workload is expected to produce no errors at all (used by
    /// deliberately-broken scenarios in the harness's own tests).
    ErrorFree,
}

/// A revocation storm: `updates` published policy mutations, each adding
/// a document-level deny for one of the first `subjects` granted
/// identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevocationStorm {
    /// Number of `update` calls (one snapshot recompile each).
    pub updates: usize,
    /// Distinct granted subjects revoked by the storm.
    pub subjects: usize,
}

/// UDDI registry churn: seeded saves/deletes/inquiries replayed twice —
/// the second replay must produce a byte-identical operation digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UddiChurn {
    /// Businesses seeded into the registry up front.
    pub businesses: usize,
    /// Churn operations (save / delete / inquire) drawn from the rng.
    pub ops: usize,
}

/// A mining pipeline over a seeded Zipfian basket dataset. Thresholds are
/// integers in parts-per-million so the scenario's `Debug` fingerprint is
/// stable (no float formatting in the fingerprint domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiningSpec {
    /// Number of generated baskets.
    pub baskets: usize,
    /// Item alphabet size.
    pub items: usize,
    /// Expected items per basket.
    pub avg_len: usize,
    /// Zipf exponent in hundredths (110 = 1.10).
    pub s_hundredths: u32,
    /// Apriori minimum support in parts-per-million.
    pub min_support_ppm: u32,
    /// Apriori minimum confidence in parts-per-million.
    pub min_confidence_ppm: u32,
}

/// Adversarial channel attacks driven alongside the workload: in-flight
/// record tampering (MAC rejection) and record replay (sequence-number
/// rejection). Every attempt must be rejected and every failure surfaced
/// as a stable error — never silently delivered bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarialSpec {
    /// Tampered client→server transits (last wire byte flipped).
    pub tampers: usize,
    /// Replayed wire records (same sealed record opened twice).
    pub replays: usize,
}

/// Whether the orchestrator answered a scenario from the fingerprint
/// cache or ran it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// The latest history row for this scenario carries the same
    /// fingerprint: the run was skipped.
    Hit,
    /// No history row matched: the scenario was (re-)run.
    Miss,
}

/// One declared scenario. Build with [`Scenario::named`] plus the
/// builder methods; every field is public so tests and tools can also
/// construct or inspect scenarios structurally.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique scenario name (the history/report key).
    pub name: String,
    /// Master seed: workload generation and every seeded sub-pipeline
    /// derive their streams from it.
    pub seed: u64,
    /// Corpus shape served by the stack under test.
    pub corpus: HospitalSpec,
    /// Traffic recipe lowered to the request batch.
    pub traffic: Recipe,
    /// Requests per batch.
    pub requests: usize,
    /// Worker counts swept by the batch rounds.
    pub workers: Vec<usize>,
    /// Warm or cold measurement rounds.
    pub warmup: Warmup,
    /// Measured rounds per worker point (best round is reported).
    pub rounds: usize,
    /// Admission-control queue depth, if bounded.
    pub queue_limit: Option<usize>,
    /// Decision path the servers under test run.
    pub decision_mode: DecisionMode,
    /// Seeded fault plan installed on the configured servers (the oracle
    /// server always runs fault-free).
    pub fault_plan: Option<FaultPlan>,
    /// Optional revocation storm phase.
    pub revocation: Option<RevocationStorm>,
    /// Optional UDDI churn phase.
    pub uddi: Option<UddiChurn>,
    /// Optional mining pipeline phase.
    pub mining: Option<MiningSpec>,
    /// Optional adversarial channel phase.
    pub adversarial: Option<AdversarialSpec>,
    /// Optional analysis-gate probe phase: under
    /// `AnalysisGate::Deny`, a seeded policy mutation that introduces a
    /// WS014 grant/deny conflict must be rejected (`WS109`) and must
    /// leave the published snapshot untouched.
    pub gate_probe: bool,
    /// Invariants the run must uphold.
    pub invariants: Vec<Invariant>,
}

impl Scenario {
    /// Starts a scenario with harness defaults: the small hospital corpus,
    /// the mixed workload, 256 requests, a `[1, 2]` worker sweep, warm
    /// rounds, and no optional phases.
    #[must_use]
    pub fn named(name: &str, seed: u64) -> Self {
        Scenario {
            name: name.to_string(),
            seed,
            corpus: HospitalSpec::small(),
            traffic: Recipe::mixed_hospital(),
            requests: 256,
            workers: vec![1, 2],
            warmup: Warmup::Warm,
            rounds: 1,
            queue_limit: None,
            decision_mode: DecisionMode::Compiled,
            fault_plan: None,
            revocation: None,
            uddi: None,
            mining: None,
            adversarial: None,
            gate_probe: false,
            invariants: Vec::new(),
        }
    }

    /// Sets the corpus shape.
    #[must_use]
    pub fn corpus(mut self, spec: HospitalSpec) -> Self {
        self.corpus = spec;
        self
    }

    /// Sets the traffic recipe.
    #[must_use]
    pub fn traffic(mut self, recipe: Recipe) -> Self {
        self.traffic = recipe;
        self
    }

    /// Sets the batch size.
    #[must_use]
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Sets the worker sweep.
    #[must_use]
    pub fn workers(mut self, sweep: Vec<usize>) -> Self {
        self.workers = sweep;
        self
    }

    /// Sets the warmup mode.
    #[must_use]
    pub fn warmup(mut self, warmup: Warmup) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the measured rounds per worker point.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Bounds the admission queue (sheds with `WS108` beyond it).
    #[must_use]
    pub fn queue_limit(mut self, depth: usize) -> Self {
        self.queue_limit = Some(depth);
        self
    }

    /// Pins the scenario to the interpreting decision path.
    #[must_use]
    pub fn interpreted(mut self) -> Self {
        self.decision_mode = DecisionMode::Interpreted;
        self
    }

    /// Installs a seeded fault plan on the configured servers.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Adds a revocation-storm phase.
    #[must_use]
    pub fn revocation(mut self, storm: RevocationStorm) -> Self {
        self.revocation = Some(storm);
        self
    }

    /// Adds a UDDI churn phase.
    #[must_use]
    pub fn uddi(mut self, churn: UddiChurn) -> Self {
        self.uddi = Some(churn);
        self
    }

    /// Adds a mining pipeline phase.
    #[must_use]
    pub fn mining(mut self, spec: MiningSpec) -> Self {
        self.mining = Some(spec);
        self
    }

    /// Adds an adversarial channel phase.
    #[must_use]
    pub fn adversarial(mut self, spec: AdversarialSpec) -> Self {
        self.adversarial = Some(spec);
        self
    }

    /// Adds the analysis-gate probe phase (a WS014-conflicting policy
    /// mutation that the `Deny` gate must reject without publishing).
    #[must_use]
    pub fn gate_probe(mut self) -> Self {
        self.gate_probe = true;
        self
    }

    /// Declares an invariant the run must uphold.
    #[must_use]
    pub fn invariant(mut self, invariant: Invariant) -> Self {
        self.invariants.push(invariant);
        self
    }

    /// The FNV-1a fingerprint of this scenario at a workspace revision,
    /// as a 16-hex-digit string.
    ///
    /// The hash covers the complete `Debug` rendering of the declared
    /// data (every field participates, including fault-plan rules and
    /// recipe structure) plus the revision — so editing *any* declared
    /// knob, or landing a new commit, changes the fingerprint and busts
    /// the cache, while re-running an unchanged suite hits it.
    #[must_use]
    pub fn fingerprint(&self, workspace_rev: &str) -> String {
        let mut hash = fnv1a(format!("{self:?}").as_bytes(), FNV_OFFSET);
        hash = fnv1a(workspace_rev.as_bytes(), hash);
        format!("{hash:016x}")
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a (also used by the runner's view digests).
#[must_use]
pub(crate) fn fnv1a(data: &[u8], mut hash: u64) -> u64 {
    for byte in data {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Starts an FNV-1a digest at the standard offset basis.
#[must_use]
pub(crate) fn fnv1a_start() -> u64 {
    FNV_OFFSET
}

/// The deterministic outcome of one scenario run: only counters and
/// digests derived from **serial** passes and seeded sub-pipelines — no
/// wall-clock, no thread-interleaving-dependent counts — so the same
/// `(scenario, seed)` pair yields a byte-identical value on every run
/// (the 100-seed determinism bar). Perf-side numbers live in
/// [`crate::runner::ScenarioPerf`], which is explicitly excluded from
/// this comparison.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Scenario seed.
    pub seed: u64,
    /// Requests in the generated batch.
    pub requests: usize,
    /// Successful positions in the configured serial pass.
    pub ok: u64,
    /// Error positions in the configured serial pass.
    pub errors: u64,
    /// Per-code error counts from the configured serial pass, sorted by
    /// code.
    pub error_codes: Vec<(String, u64)>,
    /// FNV-1a digest over every serial outcome (view bytes and error
    /// codes, in request order), as hex.
    pub view_digest: String,
    /// Updates committed by the revocation storm (0 when undeclared).
    pub revocation_updates: u64,
    /// Post-storm serves that still exposed revoked content or answered
    /// from a stale cache entry.
    pub stale_after_revocation: u64,
    /// Tampered transits rejected by the channel MAC.
    pub tamper_rejected: u64,
    /// Replayed records rejected by the sequence check.
    pub replay_rejected: u64,
    /// Total adversarial attempts driven.
    pub adversarial_attempts: u64,
    /// Digest of the UDDI churn replay (empty when undeclared).
    pub uddi_digest: String,
    /// UDDI operations driven (0 when undeclared).
    pub uddi_ops: u64,
    /// Association rules mined (0 when undeclared).
    pub mining_rules: u64,
    /// Digest over the sorted mined rules (empty when undeclared).
    pub mining_digest: String,
    /// Gate-probe mutations attempted (0 when undeclared).
    pub gate_probes: u64,
    /// Gate-probe mutations rejected by the `Deny` gate with `WS109`.
    pub gate_rejections: u64,
    /// Invariant violations, sorted and deduplicated. Empty means the
    /// scenario passed.
    pub violations: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_every_declared_knob() {
        let base = Scenario::named("fp", 1);
        let rev = "rev-a";
        let fp = base.clone().fingerprint(rev);
        assert_eq!(fp, base.clone().fingerprint(rev), "fingerprint is stable");
        assert_ne!(fp, base.clone().requests(512).fingerprint(rev));
        assert_ne!(fp, base.clone().interpreted().fingerprint(rev));
        assert_ne!(fp, base.clone().gate_probe().fingerprint(rev));
        assert_ne!(
            fp,
            base.clone()
                .faults(FaultPlan::seeded(1).rule(
                    FaultRule::new(FaultKind::CacheEvict)
                        .on(FaultSchedule::Random { permille: 10 })
                ))
                .fingerprint(rev)
        );
        assert_ne!(fp, base.fingerprint("rev-b"), "revision participates");
    }
}
