//! `websec-scenarios` — the declarative scenario orchestrator CLI.
//!
//! ```text
//! cargo run --release -p websec-scenarios -- --suite smoke --gate-trend
//! ```
//!
//! Flags:
//!
//! * `--suite NAME`    suite to run (`smoke`, default)
//! * `--history PATH`  history file (default `BENCH_scenarios.json`)
//! * `--report PATH`   render the HTML report here (default
//!   `SCENARIO_report.html`; `--report none` to skip)
//! * `--filter SUB`    run only scenarios whose name contains `SUB`
//!   (also honored from the `SCENARIO_FILTER` env var)
//! * `--gate-trend`    fail when a run regresses past the floor times
//!   the history median (`SCENARIO_TREND_FLOOR`, default `0.5`)
//! * `--force`         ignore the fingerprint cache and re-run everything
//! * `--list`          print the declared scenarios and exit
//!
//! Exit code is non-zero when any scenario reports violations or (with
//! `--gate-trend`) regresses.

use std::path::PathBuf;
use websec_scenarios::prelude::*;

fn main() {
    let mut suite_name = "smoke".to_string();
    let mut opts = SuiteOptions {
        report_path: Some(PathBuf::from("SCENARIO_report.html")),
        ..SuiteOptions::default()
    };
    let mut list = false;

    if let Ok(filter) = std::env::var("SCENARIO_FILTER") {
        if !filter.is_empty() {
            opts.filter = Some(filter);
        }
    }
    if let Ok(floor) = std::env::var("SCENARIO_TREND_FLOOR") {
        if let Ok(floor) = floor.parse::<f64>() {
            opts.trend_floor = floor;
        }
    }

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--suite" => suite_name = args.next().unwrap_or_else(|| usage("--suite needs a name")),
            "--history" => {
                opts.history_path =
                    PathBuf::from(args.next().unwrap_or_else(|| usage("--history needs a path")));
            }
            "--report" => {
                let path = args.next().unwrap_or_else(|| usage("--report needs a path"));
                opts.report_path = if path == "none" { None } else { Some(PathBuf::from(path)) };
            }
            "--filter" => {
                opts.filter =
                    Some(args.next().unwrap_or_else(|| usage("--filter needs a substring")));
            }
            "--gate-trend" => opts.gate_trend = true,
            "--force" => opts.force = true,
            "--list" => list = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let scenarios = suite::by_name(&suite_name)
        .unwrap_or_else(|| usage(&format!("unknown suite '{suite_name}'")));

    if list {
        println!("suite '{suite_name}' ({} scenario(s)):", scenarios.len());
        for scenario in &scenarios {
            println!(
                "  {:<28} seed {:#x}  {} request(s), workers {:?}, {} invariant(s)",
                scenario.name,
                scenario.seed,
                scenario.requests,
                scenario.workers,
                scenario.invariants.len()
            );
        }
        return;
    }

    let summary = run_suite(&scenarios, &opts);
    println!(
        "== scenario suite '{suite_name}' @ {} ==",
        workspace_rev()
    );
    for entry in &summary.entries {
        let cache = match entry.cache {
            CacheState::Hit => "cached",
            CacheState::Miss => "ran   ",
        };
        let trend = match &entry.trend {
            TrendVerdict::Pass { current, median } => {
                format!("trend ok ({current:.0} vs median {median:.0})")
            }
            TrendVerdict::Bootstrap => "trend bootstrap".to_string(),
            TrendVerdict::Regressed {
                current,
                median,
                floor,
            } => format!("TREND REGRESSED ({current:.0} < {floor} x median {median:.0})"),
        };
        let status = if entry.violations.is_empty() {
            "pass".to_string()
        } else {
            format!("{} VIOLATION(S)", entry.violations.len())
        };
        println!(
            "  {:<28} {cache}  {:>9.0} q/s  {status}  {trend}",
            entry.name, entry.headline_qps
        );
        for violation in &entry.violations {
            println!("      ! {violation}");
        }
    }
    println!(
        "  cache: {} hit(s), {} miss(es); history {}",
        summary.cache_hits,
        summary.cache_misses,
        opts.history_path.display()
    );
    if let Some(report) = &opts.report_path {
        println!("  report: {}", report.display());
    }

    if summary.failed {
        eprintln!("scenario suite FAILED");
        std::process::exit(1);
    }
}

fn usage(message: &str) -> ! {
    eprintln!("websec-scenarios: {message}");
    eprintln!(
        "usage: websec-scenarios [--suite NAME] [--history PATH] [--report PATH|none] \
         [--filter SUB] [--gate-trend] [--force] [--list]"
    );
    std::process::exit(2);
}
