//! A minimal, dependency-free JSON value: parser, stable renderer, and
//! accessors.
//!
//! The scenario history (`BENCH_scenarios.json`) must be **read back**
//! (for the fingerprint cache and the trend gate) as well as written, and
//! the workspace is fully offline — so this module carries the small JSON
//! subset the harness needs. Objects preserve insertion order (no hashing
//! anywhere), so rendering is byte-stable: `parse(render(v)) == v` and
//! `render(parse(s))` is deterministic for any fixed `s`.

use std::fmt::Write as _;

/// A JSON value. Objects are ordered key/value vectors (insertion order is
/// preserved and rendered verbatim — the report's byte-stability depends
/// on it).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    #[must_use]
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Convenience constructor for an integer value.
    #[must_use]
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Member lookup on an object (`None` on non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (requires an exact non-negative
    /// integer).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact, deterministic rendering (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Pretty rendering with two-space indentation, deterministic for a
    /// fixed value (history files stay diffable across PRs).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// Parses a JSON document. Errors carry a byte offset and a short
    /// description.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Numbers render as integers when they are exact integers in the safe
/// range, otherwise via Rust's shortest-round-trip `f64` formatting (both
/// deterministic for a fixed value).
fn render_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected '{token}' at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint {code}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let start = *pos;
                let len = utf8_len(b);
                let chunk = bytes
                    .get(start..start + len)
                    .ok_or_else(|| "truncated utf-8 sequence".to_string())?;
                let s = std::str::from_utf8(chunk)
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let src = r#"{"a":1,"b":[true,null,"x\n\"y\""],"c":{"d":1.5,"e":-3}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":42,"s":"hi","a":[1,2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn pretty_is_stable_and_reparses() {
        let v = Json::obj(vec![
            ("rows", Json::Arr(vec![Json::obj(vec![("q", Json::Num(12.5))])])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let first = v.render_pretty();
        assert_eq!(first, v.render_pretty());
        assert_eq!(Json::parse(&first).unwrap(), v);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Json::Str("héllo\tworld\u{1}".to_string());
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}
