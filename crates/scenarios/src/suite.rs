//! The declared scenario suites.
//!
//! Every scenario here is **data** — the acceptance list (baseline
//! serving, no-dup worst case, ~10% faulted, revocation storm,
//! adversarial replay/tamper) plus UDDI churn and a mining pipeline —
//! built from the same corpus/recipe vocabulary tests use. `check.sh`
//! runs [`smoke`]; sizes are bounded so the suite finishes in CI time
//! while still sweeping more than one worker width.

use crate::corpus::HospitalSpec;
use crate::recipe::{Pick, Recipe};
use crate::scenario::{
    AdversarialSpec, Invariant, MiningSpec, RevocationStorm, Scenario, UddiChurn, Warmup,
};
use websec_core::prelude::*;

/// Seed of the smoke suite's chaos plan (replayable; the same value the
/// serving bench's faulted section historically used).
pub const SMOKE_FAULT_SEED: u64 = 0xC0FFEE;

/// The ~10% three-layer fault plan the faulted scenarios run under:
/// dropped channel records, evicted cache entries, slow evaluations.
#[must_use]
pub fn smoke_fault_plan() -> FaultPlan {
    FaultPlan::seeded(SMOKE_FAULT_SEED)
        .rule(FaultRule::new(FaultKind::ChannelDrop).on(FaultSchedule::Random { permille: 40 }))
        .rule(FaultRule::new(FaultKind::CacheEvict).on(FaultSchedule::Random { permille: 40 }))
        .rule(
            FaultRule::new(FaultKind::SlowEval { ticks: 1 })
                .on(FaultSchedule::Random { permille: 20 }),
        )
}

/// The CI smoke suite: eight scenarios covering the acceptance list.
#[must_use]
pub fn smoke() -> Vec<Scenario> {
    vec![
        // The serving bench's mixed workload: heavy-tailed repeats, all
        // three outcome classes, warm caches.
        Scenario::named("baseline_serving", 0x5EED_0001)
            .corpus(HospitalSpec::bench())
            .traffic(Recipe::mixed_hospital())
            .requests(1024)
            .workers(vec![1, 4])
            .warmup(Warmup::Warm)
            .invariant(Invariant::SerialEquivalence)
            .invariant(Invariant::ErrorsAreWs1xx),
        // Every request a unique subject: nothing coalesces, no cache
        // level answers twice — pure scheduler + evaluation scaling,
        // pinned to the interpreted path like the bench's no-dup sweep.
        Scenario::named("nodup_worstcase", 0x5EED_0002)
            .corpus(HospitalSpec::bench())
            .traffic(Recipe::nodup_worstcase())
            .requests(512)
            .workers(vec![1, 4])
            .warmup(Warmup::Cold)
            .rounds(2)
            .interpreted()
            .invariant(Invariant::SerialEquivalence)
            .invariant(Invariant::ErrorsAreWs1xx),
        // The chaos contract under the seeded ~10% plan: every faulted
        // position is byte-identical to the fault-free oracle or a
        // stable WS1xx error.
        Scenario::named("faulted_10pct", 0x5EED_0003)
            .corpus(HospitalSpec::bench())
            .traffic(Recipe::mixed_hospital())
            .requests(1024)
            .workers(vec![4])
            .warmup(Warmup::Warm)
            .faults(smoke_fault_plan())
            .invariant(Invariant::SerialEquivalence)
            .invariant(Invariant::ErrorsAreWs1xx),
        // Committed revocation epochs must invalidate every view: the
        // storm denies previously-granted subjects and the first serve
        // past each epoch must recompute, without stale bytes.
        Scenario::named("revocation_storm", 0x5EED_0004)
            .corpus(HospitalSpec::small())
            .traffic(Recipe::PatientRead {
                subject: Pick::Modulo,
                patient: Pick::Modulo,
            })
            .requests(256)
            .workers(vec![2])
            .revocation(RevocationStorm {
                updates: 12,
                subjects: 4,
            })
            .invariant(Invariant::SerialEquivalence)
            .invariant(Invariant::NoStaleAfterRevocation),
        // Channel-layer adversary: tampered records must be rejected by
        // the MAC (session stays usable), replayed records by the
        // sequence check, and every workload error stays WS1xx.
        Scenario::named("adversarial_replay_tamper", 0x5EED_0005)
            .corpus(HospitalSpec::small())
            .traffic(Recipe::Mix(vec![
                (2, Recipe::PatientRead {
                    subject: Pick::Modulo,
                    patient: Pick::Uniform,
                }),
                (1, Recipe::SecretProbe { subject: Pick::Uniform }),
                (1, Recipe::MissingDoc { subject: Pick::Uniform }),
            ]))
            .requests(256)
            .workers(vec![2])
            .adversarial(AdversarialSpec {
                tampers: 32,
                replays: 32,
            })
            .invariant(Invariant::SerialEquivalence)
            .invariant(Invariant::ErrorsAreWs1xx),
        // Registry churn: a seeded save/delete/inquire stream replayed
        // twice must produce a byte-identical operation digest.
        Scenario::named("uddi_churn", 0x5EED_0006)
            .corpus(HospitalSpec::small())
            .requests(64)
            .workers(vec![2])
            .uddi(UddiChurn {
                businesses: 48,
                ops: 96,
            })
            .invariant(Invariant::SerialEquivalence)
            .invariant(Invariant::ErrorsAreWs1xx),
        // Association-rule mining over a seeded Zipfian dataset; the
        // pipeline replay must reproduce the same rule set bit-for-bit.
        Scenario::named("mining_pipeline", 0x5EED_0007)
            .corpus(HospitalSpec::small())
            .requests(64)
            .workers(vec![2])
            .mining(MiningSpec {
                baskets: 400,
                items: 40,
                avg_len: 6,
                s_hundredths: 110,
                min_support_ppm: 20_000,
                min_confidence_ppm: 600_000,
            })
            .invariant(Invariant::SerialEquivalence)
            .invariant(Invariant::ErrorsAreWs1xx),
        // The policy-verifier gate: a seeded mutation that introduces a
        // WS014 grant/deny conflict must be rejected by the Deny gate
        // with WS109, naming WS014, without publishing a snapshot.
        Scenario::named("policy_gate_rejection", 0x5EED_0008)
            .corpus(HospitalSpec::small())
            .traffic(Recipe::PatientRead {
                subject: Pick::Modulo,
                patient: Pick::Modulo,
            })
            .requests(64)
            .workers(vec![2])
            .gate_probe()
            .invariant(Invariant::SerialEquivalence)
            .invariant(Invariant::ErrorsAreWs1xx),
    ]
}

/// Resolves a suite by name (`smoke` is the only suite today; `full` is
/// an alias until a larger suite earns its keep).
#[must_use]
pub fn by_name(name: &str) -> Option<Vec<Scenario>> {
    match name {
        "smoke" | "full" => Some(smoke()),
        _ => None,
    }
}

/// A minimal fast scenario for harness tests: tiny corpus, tiny batch,
/// both core invariants.
#[must_use]
pub fn tiny(seed: u64) -> Scenario {
    Scenario::named("tiny", seed)
        .corpus(HospitalSpec::small())
        .traffic(Recipe::mixed_hospital())
        .requests(48)
        .workers(vec![2])
        .invariant(Invariant::SerialEquivalence)
        .invariant(Invariant::ErrorsAreWs1xx)
}

/// A deliberately-broken scenario: it declares [`Invariant::ErrorFree`]
/// over traffic that contains unknown-document requests, so a correct
/// harness MUST report violations. Used to prove invariant failures
/// propagate.
#[must_use]
pub fn broken(seed: u64) -> Scenario {
    Scenario::named("broken", seed)
        .corpus(HospitalSpec::small())
        .traffic(Recipe::Cycle(vec![
            Recipe::PatientRead {
                subject: Pick::Modulo,
                patient: Pick::Modulo,
            },
            Recipe::MissingDoc { subject: Pick::Modulo },
        ]))
        .requests(32)
        .workers(vec![2])
        .invariant(Invariant::ErrorFree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_the_acceptance_list() {
        let suite = smoke();
        assert!(suite.len() >= 5, "at least five declared scenarios");
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        for required in [
            "baseline_serving",
            "nodup_worstcase",
            "faulted_10pct",
            "revocation_storm",
            "adversarial_replay_tamper",
            "policy_gate_rejection",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "scenario names must be unique");
        for scenario in &suite {
            assert!(!scenario.invariants.is_empty(), "{}: no invariants", scenario.name);
            assert!(!scenario.workers.is_empty(), "{}: no worker sweep", scenario.name);
        }
    }

    #[test]
    fn suites_resolve_by_name() {
        assert!(by_name("smoke").is_some());
        assert!(by_name("full").is_some());
        assert!(by_name("nope").is_none());
    }
}
