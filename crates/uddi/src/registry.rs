//! The registry: publisher API, browse/drill-down inquiries, and the
//! two-party (trusted) deployment with access-controlled answers.
//!
//! "If UDDI registries are managed according to a two-party architecture,
//! integrity and confidentiality can be ensured using the standard
//! mechanisms adopted by conventional DBMSs. In particular, an access
//! control mechanism can be used to ensure that UDDI entries are accessed
//! and modified only according to the specified access control policies"
//! (§4.1). Entries are addressed by their business key, so `websec-policy`
//! object specifications apply directly to entry documents.
//!
//! ## The inquiry API
//!
//! All inquiries flow through one entry point,
//! [`UddiRegistry::inquire`], fed by a builder-style [`InquiryRequest`]
//! mirroring the UDDI inquiry message set (`find_xxx` browse patterns,
//! `get_xxx` drill-downs):
//!
//! ```
//! use websec_uddi::{BusinessEntity, InquiryRequest, InquiryResponse, UddiRegistry};
//!
//! let mut registry = UddiRegistry::new();
//! registry.save_business(BusinessEntity::new("biz-acme", "Acme Healthcare"));
//!
//! let response = registry
//!     .inquire(&InquiryRequest::find_business().name_approx("acme"))
//!     .unwrap();
//! match response {
//!     InquiryResponse::Businesses(rows) => assert_eq!(rows[0].business_key, "biz-acme"),
//!     _ => unreachable!(),
//! }
//! ```
//!
//! Attaching a subject with [`InquiryRequest::on_behalf_of`] runs the same
//! inquiry under two-party access control: finds hide entries whose name
//! the subject may not read, and drill-downs answer with the subject's
//! authorized **view** of the entry document.
//!
//! The older positional methods (`find_business(&q)`,
//! `get_business_detail(key)`, …) survive as `#[deprecated]` shims over
//! the same implementations and will be removed next release.

use crate::model::{
    BindingTemplate, BusinessEntity, BusinessService, PublisherAssertion, TModel,
};
use std::collections::BTreeMap;
use websec_policy::{PolicyEngine, PolicyStore, Privilege, SubjectProfile};
use websec_xml::{Document, Path};

/// Registry operation errors.
///
/// `#[non_exhaustive]`: inquiry validation may grow further variants.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No entry under the given key.
    UnknownKey(String),
    /// The requesting subject may not perform the operation.
    AccessDenied,
    /// The inquiry was malformed (e.g. a drill-down without a key).
    InvalidInquiry(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownKey(k) => write!(f, "unknown key '{k}'"),
            RegistryError::AccessDenied => write!(f, "access denied"),
            RegistryError::InvalidInquiry(m) => write!(f, "invalid inquiry: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Browse-pattern result row for businesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessOverview {
    /// Business key (drill-down handle).
    pub business_key: String,
    /// Business name.
    pub name: String,
}

/// Browse-pattern result row for services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceOverview {
    /// Service key.
    pub service_key: String,
    /// Owning business key.
    pub business_key: String,
    /// Service name.
    pub name: String,
}

/// Browse-pattern result row for tModels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TModelOverview {
    /// tModel key (drill-down handle).
    pub tmodel_key: String,
    /// tModel name.
    pub name: String,
}

/// Search criteria for `find_xxx` inquiries.
#[derive(Debug, Clone)]
pub enum FindQualifier {
    /// Case-insensitive name prefix match (UDDI "approximateMatch").
    NameApprox(String),
    /// Category-bag match on `(tmodel_key, key_value)`.
    Category {
        /// Taxonomy tModel.
        tmodel_key: String,
        /// Category value to match.
        key_value: String,
    },
    /// Matches services/bindings referencing this tModel.
    UsesTModel(String),
}

impl FindQualifier {
    fn matches_name(&self, name: &str) -> bool {
        match self {
            FindQualifier::NameApprox(prefix) => {
                name.to_lowercase().starts_with(&prefix.to_lowercase())
            }
            _ => false,
        }
    }
}

/// Which UDDI inquiry message a request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InquiryKind {
    FindBusiness,
    FindService,
    FindTModel,
    FindRelated,
    GetBusiness,
    GetService,
    GetBinding,
    GetTModel,
}

/// A builder-style UDDI inquiry, executed by [`UddiRegistry::inquire`].
///
/// Start from one of the message constructors
/// ([`InquiryRequest::find_business`], [`InquiryRequest::get_business`],
/// …), refine browse patterns with [`name_approx`](Self::name_approx) /
/// [`category`](Self::category) / [`uses_tmodel`](Self::uses_tmodel), and
/// optionally attach a requesting subject with
/// [`on_behalf_of`](Self::on_behalf_of) for access-controlled answers.
/// A find with no qualifier matches every entry (empty-prefix name match).
#[derive(Debug, Clone)]
pub struct InquiryRequest {
    kind: InquiryKind,
    qualifier: Option<FindQualifier>,
    key: Option<String>,
    subject: Option<SubjectProfile>,
}

impl InquiryRequest {
    fn new(kind: InquiryKind) -> Self {
        InquiryRequest {
            kind,
            qualifier: None,
            key: None,
            subject: None,
        }
    }

    /// `find_business`: browse businesses (all of them until a qualifier
    /// narrows the match).
    #[must_use]
    pub fn find_business() -> Self {
        Self::new(InquiryKind::FindBusiness)
    }

    /// `find_service`: browse services across all businesses.
    #[must_use]
    pub fn find_service() -> Self {
        Self::new(InquiryKind::FindService)
    }

    /// `find_tModel`: browse tModels.
    #[must_use]
    pub fn find_tmodel() -> Self {
        Self::new(InquiryKind::FindTModel)
    }

    /// `find_relatedBusinesses`: businesses related to `business_key` by
    /// **completed** (reciprocal) publisher assertions.
    #[must_use]
    pub fn find_related(business_key: &str) -> Self {
        Self::new(InquiryKind::FindRelated).key(business_key)
    }

    /// `get_businessDetail` for `business_key`.
    #[must_use]
    pub fn get_business(business_key: &str) -> Self {
        Self::new(InquiryKind::GetBusiness).key(business_key)
    }

    /// `get_serviceDetail` for `service_key`.
    #[must_use]
    pub fn get_service(service_key: &str) -> Self {
        Self::new(InquiryKind::GetService).key(service_key)
    }

    /// `get_bindingDetail` for `binding_key`.
    #[must_use]
    pub fn get_binding(binding_key: &str) -> Self {
        Self::new(InquiryKind::GetBinding).key(binding_key)
    }

    /// `get_tModelDetail` for `tmodel_key`.
    #[must_use]
    pub fn get_tmodel(tmodel_key: &str) -> Self {
        Self::new(InquiryKind::GetTModel).key(tmodel_key)
    }

    fn key(mut self, key: &str) -> Self {
        self.key = Some(key.to_string());
        self
    }

    /// Narrows a find to a case-insensitive name prefix (UDDI
    /// "approximateMatch").
    #[must_use]
    pub fn name_approx(mut self, prefix: &str) -> Self {
        self.qualifier = Some(FindQualifier::NameApprox(prefix.to_string()));
        self
    }

    /// Narrows a find to entries carrying `(tmodel_key, key_value)` in
    /// their category bag.
    #[must_use]
    pub fn category(mut self, tmodel_key: &str, key_value: &str) -> Self {
        self.qualifier = Some(FindQualifier::Category {
            tmodel_key: tmodel_key.to_string(),
            key_value: key_value.to_string(),
        });
        self
    }

    /// Narrows a find to entries whose bindings reference `tmodel_key`.
    #[must_use]
    pub fn uses_tmodel(mut self, tmodel_key: &str) -> Self {
        self.qualifier = Some(FindQualifier::UsesTModel(tmodel_key.to_string()));
        self
    }

    /// Uses an explicit [`FindQualifier`] value.
    #[must_use]
    pub fn qualifier(mut self, qualifier: FindQualifier) -> Self {
        self.qualifier = Some(qualifier);
        self
    }

    /// Runs the inquiry under two-party access control as `subject`:
    /// finds hide entries whose name the subject may not read, and
    /// `get_business` answers with the subject's authorized view.
    #[must_use]
    pub fn on_behalf_of(mut self, subject: &SubjectProfile) -> Self {
        self.subject = Some(subject.clone());
        self
    }
}

/// The answer to an [`InquiryRequest`] (owned — detail responses clone the
/// stored entry, so the registry lock need not outlive the answer).
///
/// `#[non_exhaustive]`: future inquiry messages add variants without a
/// breaking change, so `match`es must carry a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum InquiryResponse {
    /// `find_business` rows.
    Businesses(Vec<BusinessOverview>),
    /// `find_service` rows.
    Services(Vec<ServiceOverview>),
    /// `find_tModel` rows.
    TModels(Vec<TModelOverview>),
    /// `find_relatedBusinesses` keys.
    RelatedBusinesses(Vec<String>),
    /// `get_businessDetail` without a subject: the full stored entry.
    BusinessDetail(BusinessEntity),
    /// `get_businessDetail` on behalf of a subject: the authorized view of
    /// the entry document (portions the subject may not read are pruned).
    AuthorizedBusinessView(Document),
    /// `get_serviceDetail`: the service plus its owning business key.
    ServiceDetail {
        /// Key of the business owning the service.
        business_key: String,
        /// The stored service.
        service: BusinessService,
    },
    /// `get_bindingDetail`.
    BindingDetail(BindingTemplate),
    /// `get_tModelDetail`.
    TModelDetail(TModel),
}

/// An in-memory UDDI registry.
#[derive(Debug, Default, Clone)]
pub struct UddiRegistry {
    businesses: BTreeMap<String, BusinessEntity>,
    tmodels: BTreeMap<String, TModel>,
    assertions: Vec<PublisherAssertion>,
    /// Two-party access control: policies over entry documents (named by
    /// business key).
    pub policies: PolicyStore,
    /// Evaluation engine for `policies`.
    pub engine: PolicyEngine,
}

/// Pre-redesign name of [`UddiRegistry`].
#[deprecated(since = "0.2.0", note = "renamed to UddiRegistry")]
pub type Registry = UddiRegistry;

impl UddiRegistry {
    /// Creates an empty registry with an empty (deny-nothing-to-internal,
    /// closed-to-subjects) policy base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    // --- publisher API -----------------------------------------------------

    /// Saves (inserts or replaces) a business entity.
    pub fn save_business(&mut self, entity: BusinessEntity) {
        self.businesses.insert(entity.business_key.clone(), entity);
    }

    /// Deletes a business entity.
    pub fn delete_business(&mut self, key: &str) -> Result<(), RegistryError> {
        self.businesses
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))
    }

    /// Saves (inserts or replaces) a tModel.
    pub fn save_tmodel(&mut self, tmodel: TModel) {
        self.tmodels.insert(tmodel.tmodel_key.clone(), tmodel);
    }

    /// Deletes a tModel.
    pub fn delete_tmodel(&mut self, key: &str) -> Result<(), RegistryError> {
        self.tmodels
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))
    }

    /// Records a publisher assertion. The relationship only becomes visible
    /// once **both** parties have asserted it.
    pub fn add_assertion(&mut self, assertion: PublisherAssertion) {
        self.assertions.push(assertion);
    }

    /// Number of stored business entries.
    #[must_use]
    pub fn business_count(&self) -> usize {
        self.businesses.len()
    }

    /// All stored business entries, ascending by key (read-only view for
    /// static analysis).
    pub fn businesses(&self) -> impl Iterator<Item = &BusinessEntity> {
        self.businesses.values()
    }

    /// True when a tModel is registered under `key`.
    #[must_use]
    pub fn has_tmodel(&self, key: &str) -> bool {
        self.tmodels.contains_key(key)
    }

    /// All registered tModel keys, ascending (read-only view for static
    /// analysis and fingerprinting).
    pub fn tmodel_keys(&self) -> impl Iterator<Item = &str> {
        self.tmodels.keys().map(String::as_str)
    }

    // --- the unified inquiry entry point -------------------------------------

    /// Executes a builder-style [`InquiryRequest`].
    ///
    /// Browse patterns answer with overview rows, drill-downs with owned
    /// entry clones; attaching a subject
    /// ([`InquiryRequest::on_behalf_of`]) applies two-party access
    /// control. A drill-down under a missing key yields
    /// [`RegistryError::UnknownKey`]; a browse never errors (it answers
    /// with an empty row set).
    pub fn inquire(&self, request: &InquiryRequest) -> Result<InquiryResponse, RegistryError> {
        // A find with no qualifier matches everything.
        let qualifier = request
            .qualifier
            .clone()
            .unwrap_or_else(|| FindQualifier::NameApprox(String::new()));
        let need_key = |field: &Option<String>| {
            field.clone().ok_or_else(|| {
                RegistryError::InvalidInquiry("drill-down inquiry requires a key".into())
            })
        };
        match request.kind {
            InquiryKind::FindBusiness => Ok(InquiryResponse::Businesses(match &request.subject {
                Some(subject) => self.find_business_for_impl(&qualifier, subject),
                None => self.find_business_impl(&qualifier),
            })),
            InquiryKind::FindService => {
                Ok(InquiryResponse::Services(self.find_service_impl(&qualifier)))
            }
            InquiryKind::FindTModel => {
                Ok(InquiryResponse::TModels(self.find_tmodel_impl(&qualifier)))
            }
            InquiryKind::FindRelated => Ok(InquiryResponse::RelatedBusinesses(
                self.find_related_impl(&need_key(&request.key)?),
            )),
            InquiryKind::GetBusiness => {
                let key = need_key(&request.key)?;
                match &request.subject {
                    Some(subject) => Ok(InquiryResponse::AuthorizedBusinessView(
                        self.business_view_for_impl(&key, subject)?,
                    )),
                    None => Ok(InquiryResponse::BusinessDetail(
                        self.business_detail_impl(&key)?.clone(),
                    )),
                }
            }
            InquiryKind::GetService => {
                let key = need_key(&request.key)?;
                let (business_key, service) = self.service_detail_impl(&key)?;
                Ok(InquiryResponse::ServiceDetail {
                    business_key: business_key.to_string(),
                    service: service.clone(),
                })
            }
            InquiryKind::GetBinding => Ok(InquiryResponse::BindingDetail(
                self.binding_detail_impl(&need_key(&request.key)?)?.clone(),
            )),
            InquiryKind::GetTModel => Ok(InquiryResponse::TModelDetail(
                self.tmodel_detail_impl(&need_key(&request.key)?)?.clone(),
            )),
        }
    }

    // --- inquiry implementations ---------------------------------------------

    fn find_business_impl(&self, q: &FindQualifier) -> Vec<BusinessOverview> {
        self.businesses
            .values()
            .filter(|be| match q {
                FindQualifier::NameApprox(_) => q.matches_name(&be.name),
                FindQualifier::Category {
                    tmodel_key,
                    key_value,
                } => be
                    .category_bag
                    .iter()
                    .any(|kr| &kr.tmodel_key == tmodel_key && &kr.key_value == key_value),
                FindQualifier::UsesTModel(tk) => be.services.iter().any(|s| {
                    s.binding_templates
                        .iter()
                        .any(|bt| bt.tmodel_keys.iter().any(|k| k == tk))
                }),
            })
            .map(|be| BusinessOverview {
                business_key: be.business_key.clone(),
                name: be.name.clone(),
            })
            .collect()
    }

    fn find_service_impl(&self, q: &FindQualifier) -> Vec<ServiceOverview> {
        let mut out = Vec::new();
        for be in self.businesses.values() {
            for s in &be.services {
                let hit = match q {
                    FindQualifier::NameApprox(_) => q.matches_name(&s.name),
                    FindQualifier::Category {
                        tmodel_key,
                        key_value,
                    } => s
                        .category_bag
                        .iter()
                        .any(|kr| &kr.tmodel_key == tmodel_key && &kr.key_value == key_value),
                    FindQualifier::UsesTModel(tk) => s
                        .binding_templates
                        .iter()
                        .any(|bt| bt.tmodel_keys.iter().any(|k| k == tk)),
                };
                if hit {
                    out.push(ServiceOverview {
                        service_key: s.service_key.clone(),
                        business_key: be.business_key.clone(),
                        name: s.name.clone(),
                    });
                }
            }
        }
        out
    }

    fn find_tmodel_impl(&self, q: &FindQualifier) -> Vec<TModelOverview> {
        self.tmodels
            .values()
            .filter(|tm| q.matches_name(&tm.name))
            .map(|tm| TModelOverview {
                tmodel_key: tm.tmodel_key.clone(),
                name: tm.name.clone(),
            })
            .collect()
    }

    fn find_related_impl(&self, key: &str) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.assertions {
            if a.from_key == key {
                let reciprocal = self.assertions.iter().any(|b| {
                    b.from_key == a.to_key
                        && b.to_key == a.from_key
                        && b.relationship == a.relationship
                });
                if reciprocal && !out.contains(&a.to_key) {
                    out.push(a.to_key.clone());
                }
            }
        }
        out
    }

    fn business_detail_impl(&self, key: &str) -> Result<&BusinessEntity, RegistryError> {
        self.businesses
            .get(key)
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))
    }

    fn service_detail_impl(
        &self,
        key: &str,
    ) -> Result<(&str, &BusinessService), RegistryError> {
        for be in self.businesses.values() {
            if let Some(svc) = be.services.iter().find(|s| s.service_key == key) {
                return Ok((be.business_key.as_str(), svc));
            }
        }
        Err(RegistryError::UnknownKey(key.to_string()))
    }

    fn binding_detail_impl(&self, key: &str) -> Result<&BindingTemplate, RegistryError> {
        for be in self.businesses.values() {
            for svc in &be.services {
                if let Some(bt) = svc
                    .binding_templates
                    .iter()
                    .find(|b| b.binding_key == key)
                {
                    return Ok(bt);
                }
            }
        }
        Err(RegistryError::UnknownKey(key.to_string()))
    }

    fn tmodel_detail_impl(&self, key: &str) -> Result<&TModel, RegistryError> {
        self.tmodels
            .get(key)
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))
    }

    fn business_view_for_impl(
        &self,
        key: &str,
        profile: &SubjectProfile,
    ) -> Result<Document, RegistryError> {
        let be = self.business_detail_impl(key)?;
        let doc = be.to_document();
        let view = self.engine.compute_view(&self.policies, profile, key, &doc);
        if view.node_count() == 0 {
            return Err(RegistryError::AccessDenied);
        }
        Ok(view)
    }

    fn find_business_for_impl(
        &self,
        q: &FindQualifier,
        profile: &SubjectProfile,
    ) -> Vec<BusinessOverview> {
        let name_path = Path::parse("/businessEntity/name").expect("static path");
        self.find_business_impl(q)
            .into_iter()
            .filter(|row| {
                let Ok(be) = self.business_detail_impl(&row.business_key) else {
                    return false;
                };
                let doc = be.to_document();
                let decision = self.engine.evaluate_document(
                    &self.policies,
                    profile,
                    &row.business_key,
                    &doc,
                    Privilege::Read,
                );
                name_path
                    .select_nodes(&doc)
                    .iter()
                    .all(|&n| decision.is_allowed(n))
            })
            .collect()
    }

    // --- deprecated positional inquiry methods -------------------------------

    /// `find_business`: overview rows for entries matching the qualifier.
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::find_business() and call inquire()"
    )]
    #[must_use]
    pub fn find_business(&self, q: &FindQualifier) -> Vec<BusinessOverview> {
        self.find_business_impl(q)
    }

    /// `find_service`: overview rows for services matching the qualifier.
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::find_service() and call inquire()"
    )]
    #[must_use]
    pub fn find_service(&self, q: &FindQualifier) -> Vec<ServiceOverview> {
        self.find_service_impl(q)
    }

    /// `find_tModel`: keys and names of matching tModels.
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::find_tmodel() and call inquire()"
    )]
    #[must_use]
    pub fn find_tmodel(&self, q: &FindQualifier) -> Vec<(String, String)> {
        self.find_tmodel_impl(q)
            .into_iter()
            .map(|tm| (tm.tmodel_key, tm.name))
            .collect()
    }

    /// Businesses related to `key` by **completed** publisher assertions
    /// (asserted in both directions).
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::find_related(key) and call inquire()"
    )]
    #[must_use]
    pub fn find_related_businesses(&self, key: &str) -> Vec<String> {
        self.find_related_impl(key)
    }

    /// `get_businessDetail`: the full entry (trusted/internal access).
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::get_business(key) and call inquire()"
    )]
    pub fn get_business_detail(&self, key: &str) -> Result<&BusinessEntity, RegistryError> {
        self.business_detail_impl(key)
    }

    /// `get_serviceDetail`: a service (and its owning business key) by
    /// service key.
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::get_service(key) and call inquire()"
    )]
    pub fn get_service_detail(
        &self,
        key: &str,
    ) -> Result<(&str, &BusinessService), RegistryError> {
        self.service_detail_impl(key)
    }

    /// `get_bindingDetail`: a binding template by binding key.
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::get_binding(key) and call inquire()"
    )]
    pub fn get_binding_detail(&self, key: &str) -> Result<&BindingTemplate, RegistryError> {
        self.binding_detail_impl(key)
    }

    /// `get_tModelDetail`.
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::get_tmodel(key) and call inquire()"
    )]
    pub fn get_tmodel_detail(&self, key: &str) -> Result<&TModel, RegistryError> {
        self.tmodel_detail_impl(key)
    }

    /// `get_businessDetail` under access control: the subject receives the
    /// **authorized view** of the entry document (possibly with portions
    /// pruned), or `AccessDenied` when nothing is visible.
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::get_business(key).on_behalf_of(profile) and call inquire()"
    )]
    pub fn get_business_detail_for(
        &self,
        key: &str,
        profile: &SubjectProfile,
    ) -> Result<Document, RegistryError> {
        self.business_view_for_impl(key, profile)
    }

    /// `find_business` under access control: only entries whose *name* the
    /// subject may read appear in the overview (confidential listings stay
    /// hidden).
    #[deprecated(
        since = "0.2.0",
        note = "build InquiryRequest::find_business().on_behalf_of(profile) and call inquire()"
    )]
    #[must_use]
    pub fn find_business_for(
        &self,
        q: &FindQualifier,
        profile: &SubjectProfile,
    ) -> Vec<BusinessOverview> {
        self.find_business_for_impl(q, profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::KeyedReference;
    use websec_policy::{Authorization, ObjectSpec, SubjectSpec};

    fn registry() -> UddiRegistry {
        let mut r = UddiRegistry::new();
        let mut acme = BusinessEntity::new("biz-acme", "Acme Healthcare");
        acme.category_bag.push(KeyedReference {
            tmodel_key: "uddi:naics".into(),
            key_name: "sector".into(),
            key_value: "62".into(),
        });
        let mut svc = BusinessService::new("svc-sched", "Scheduling");
        svc.binding_templates.push(crate::model::BindingTemplate {
            binding_key: "b1".into(),
            access_point: "https://acme.example".into(),
            description: String::new(),
            tmodel_keys: vec!["uddi:tm-sched".into()],
        });
        acme.services.push(svc);
        r.save_business(acme);

        let mut beta = BusinessEntity::new("biz-beta", "Beta Logistics");
        beta.services.push(BusinessService::new("svc-track", "Tracking"));
        r.save_business(beta);

        r.save_tmodel(TModel::new("uddi:tm-sched", "Scheduling Interface"));
        r
    }

    fn businesses(response: InquiryResponse) -> Vec<BusinessOverview> {
        match response {
            InquiryResponse::Businesses(rows) => rows,
            other => panic!("expected Businesses, got {other:?}"),
        }
    }

    #[test]
    fn find_business_by_name_prefix() {
        let r = registry();
        let rows = businesses(
            r.inquire(&InquiryRequest::find_business().name_approx("acme"))
                .unwrap(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].business_key, "biz-acme");
        assert!(businesses(
            r.inquire(&InquiryRequest::find_business().name_approx("zzz"))
                .unwrap()
        )
        .is_empty());
    }

    #[test]
    fn find_business_unqualified_matches_everything() {
        let r = registry();
        assert_eq!(
            businesses(r.inquire(&InquiryRequest::find_business()).unwrap()).len(),
            2
        );
    }

    #[test]
    fn find_business_by_category() {
        let r = registry();
        let rows = businesses(
            r.inquire(&InquiryRequest::find_business().category("uddi:naics", "62"))
                .unwrap(),
        );
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn find_business_by_tmodel() {
        let r = registry();
        let rows = businesses(
            r.inquire(&InquiryRequest::find_business().uses_tmodel("uddi:tm-sched"))
                .unwrap(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].business_key, "biz-acme");
    }

    #[test]
    fn find_service() {
        let r = registry();
        let InquiryResponse::Services(rows) = r
            .inquire(&InquiryRequest::find_service().name_approx("track"))
            .unwrap()
        else {
            panic!("expected Services");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].business_key, "biz-beta");
    }

    #[test]
    fn find_tmodel() {
        let r = registry();
        let InquiryResponse::TModels(rows) = r
            .inquire(&InquiryRequest::find_tmodel().name_approx("sched"))
            .unwrap()
        else {
            panic!("expected TModels");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tmodel_key, "uddi:tm-sched");
    }

    #[test]
    fn drill_down_and_delete() {
        let mut r = registry();
        assert!(r.inquire(&InquiryRequest::get_business("biz-acme")).is_ok());
        assert!(r
            .inquire(&InquiryRequest::get_tmodel("uddi:tm-sched"))
            .is_ok());
        assert_eq!(
            r.inquire(&InquiryRequest::get_business("nope")).unwrap_err(),
            RegistryError::UnknownKey("nope".into())
        );
        r.delete_business("biz-acme").unwrap();
        assert!(r.inquire(&InquiryRequest::get_business("biz-acme")).is_err());
        assert!(r.delete_business("biz-acme").is_err());
    }

    #[test]
    fn service_and_binding_drilldown() {
        let r = registry();
        let InquiryResponse::ServiceDetail {
            business_key,
            service,
        } = r.inquire(&InquiryRequest::get_service("svc-sched")).unwrap()
        else {
            panic!("expected ServiceDetail");
        };
        assert_eq!(business_key, "biz-acme");
        assert_eq!(service.name, "Scheduling");
        let InquiryResponse::BindingDetail(bt) =
            r.inquire(&InquiryRequest::get_binding("b1")).unwrap()
        else {
            panic!("expected BindingDetail");
        };
        assert_eq!(bt.access_point, "https://acme.example");
        assert!(r.inquire(&InquiryRequest::get_service("nope")).is_err());
        assert!(r.inquire(&InquiryRequest::get_binding("nope")).is_err());
    }

    #[test]
    fn assertions_require_reciprocity() {
        let mut r = registry();
        r.add_assertion(PublisherAssertion {
            from_key: "biz-acme".into(),
            to_key: "biz-beta".into(),
            relationship: "peer-peer".into(),
        });
        let related = |r: &UddiRegistry, key: &str| -> Vec<String> {
            match r.inquire(&InquiryRequest::find_related(key)).unwrap() {
                InquiryResponse::RelatedBusinesses(keys) => keys,
                other => panic!("expected RelatedBusinesses, got {other:?}"),
            }
        };
        // One-sided: not visible.
        assert!(related(&r, "biz-acme").is_empty());
        r.add_assertion(PublisherAssertion {
            from_key: "biz-beta".into(),
            to_key: "biz-acme".into(),
            relationship: "peer-peer".into(),
        });
        assert_eq!(related(&r, "biz-acme"), vec!["biz-beta"]);
        assert_eq!(related(&r, "biz-beta"), vec!["biz-acme"]);
    }

    #[test]
    fn access_controlled_detail() {
        let mut r = registry();
        r.policies.add(Authorization::for_subject(SubjectSpec::Identity("partner".into())).on(ObjectSpec::Document("biz-acme".into())).privilege(Privilege::Read).grant());
        let partner = SubjectProfile::new("partner");
        let stranger = SubjectProfile::new("stranger");
        let InquiryResponse::AuthorizedBusinessView(view) = r
            .inquire(&InquiryRequest::get_business("biz-acme").on_behalf_of(&partner))
            .unwrap()
        else {
            panic!("expected AuthorizedBusinessView");
        };
        assert!(view.to_xml_string().contains("Acme"));
        assert_eq!(
            r.inquire(&InquiryRequest::get_business("biz-acme").on_behalf_of(&stranger))
                .unwrap_err(),
            RegistryError::AccessDenied
        );
    }

    #[test]
    fn access_controlled_portion_pruning() {
        let mut r = registry();
        // Partner may read everything except binding templates.
        r.policies.add(Authorization::for_subject(SubjectSpec::Identity("partner".into())).on(ObjectSpec::Document("biz-acme".into())).privilege(Privilege::Read).grant());
        r.policies.add(Authorization::for_subject(SubjectSpec::Identity("partner".into())).on(ObjectSpec::Portion {
                document: "biz-acme".into(),
                path: Path::parse("//bindingTemplates").unwrap(),
            }).privilege(Privilege::Read).deny());
        let InquiryResponse::AuthorizedBusinessView(view) = r
            .inquire(
                &InquiryRequest::get_business("biz-acme")
                    .on_behalf_of(&SubjectProfile::new("partner")),
            )
            .unwrap()
        else {
            panic!("expected AuthorizedBusinessView");
        };
        let s = view.to_xml_string();
        assert!(!s.contains("accessPoint"), "{s}");
        assert!(s.contains("Scheduling"), "{s}");
    }

    #[test]
    fn access_controlled_find_hides_unreadable() {
        let mut r = registry();
        r.policies.add(Authorization::for_subject(SubjectSpec::Identity("partner".into())).on(ObjectSpec::Document("biz-acme".into())).privilege(Privilege::Read).grant());
        let all = businesses(r.inquire(&InquiryRequest::find_business()).unwrap());
        assert_eq!(all.len(), 2);
        let partner_rows = businesses(
            r.inquire(
                &InquiryRequest::find_business().on_behalf_of(&SubjectProfile::new("partner")),
            )
            .unwrap(),
        );
        assert_eq!(partner_rows.len(), 1);
        assert_eq!(partner_rows[0].business_key, "biz-acme");
        assert!(businesses(
            r.inquire(
                &InquiryRequest::find_business().on_behalf_of(&SubjectProfile::new("stranger"))
            )
            .unwrap()
        )
        .is_empty());
    }

    #[test]
    fn drill_down_without_key_is_invalid() {
        let r = registry();
        // find_related built without a key (possible only via clone-hackery
        // in-crate; externally the constructor always sets it) — exercise
        // the validation through the public surface instead: an empty key
        // is a well-formed inquiry that finds nothing.
        let InquiryResponse::RelatedBusinesses(keys) =
            r.inquire(&InquiryRequest::find_related("")).unwrap()
        else {
            panic!("expected RelatedBusinesses");
        };
        assert!(keys.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_positional_shims_agree_with_inquire() {
        let r = registry();
        let q = FindQualifier::NameApprox("acme".into());
        assert_eq!(
            r.find_business(&q),
            businesses(
                r.inquire(&InquiryRequest::find_business().name_approx("acme"))
                    .unwrap()
            )
        );
        assert_eq!(
            r.get_business_detail("biz-acme").unwrap().name,
            match r.inquire(&InquiryRequest::get_business("biz-acme")).unwrap() {
                InquiryResponse::BusinessDetail(be) => be.name,
                other => panic!("expected BusinessDetail, got {other:?}"),
            }
        );
        let legacy_tmodels = r.find_tmodel(&FindQualifier::NameApprox("sched".into()));
        assert_eq!(legacy_tmodels, vec![(
            "uddi:tm-sched".to_string(),
            "Scheduling Interface".to_string()
        )]);
    }

    #[test]
    fn save_replaces() {
        let mut r = registry();
        let mut acme2 = BusinessEntity::new("biz-acme", "Acme Renamed");
        acme2.description = "v2".into();
        r.save_business(acme2);
        assert_eq!(r.business_count(), 2);
        let InquiryResponse::BusinessDetail(be) =
            r.inquire(&InquiryRequest::get_business("biz-acme")).unwrap()
        else {
            panic!("expected BusinessDetail");
        };
        assert_eq!(be.name, "Acme Renamed");
    }
}
