//! The registry: publisher API, browse/drill-down inquiries, and the
//! two-party (trusted) deployment with access-controlled answers.
//!
//! "If UDDI registries are managed according to a two-party architecture,
//! integrity and confidentiality can be ensured using the standard
//! mechanisms adopted by conventional DBMSs. In particular, an access
//! control mechanism can be used to ensure that UDDI entries are accessed
//! and modified only according to the specified access control policies"
//! (§4.1). Entries are addressed by their business key, so `websec-policy`
//! object specifications apply directly to entry documents.

use crate::model::{BusinessEntity, PublisherAssertion, TModel};
use std::collections::BTreeMap;
use websec_policy::{PolicyEngine, PolicyStore, Privilege, SubjectProfile};
use websec_xml::{Document, Path};

/// Registry operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No entry under the given key.
    UnknownKey(String),
    /// The requesting subject may not perform the operation.
    AccessDenied,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownKey(k) => write!(f, "unknown key '{k}'"),
            RegistryError::AccessDenied => write!(f, "access denied"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Browse-pattern result row for businesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessOverview {
    /// Business key (drill-down handle).
    pub business_key: String,
    /// Business name.
    pub name: String,
}

/// Browse-pattern result row for services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceOverview {
    /// Service key.
    pub service_key: String,
    /// Owning business key.
    pub business_key: String,
    /// Service name.
    pub name: String,
}

/// Search criteria for `find_xxx` inquiries.
#[derive(Debug, Clone)]
pub enum FindQualifier {
    /// Case-insensitive name prefix match (UDDI "approximateMatch").
    NameApprox(String),
    /// Category-bag match on `(tmodel_key, key_value)`.
    Category {
        /// Taxonomy tModel.
        tmodel_key: String,
        /// Category value to match.
        key_value: String,
    },
    /// Matches services/bindings referencing this tModel.
    UsesTModel(String),
}

impl FindQualifier {
    fn matches_name(&self, name: &str) -> bool {
        match self {
            FindQualifier::NameApprox(prefix) => {
                name.to_lowercase().starts_with(&prefix.to_lowercase())
            }
            _ => false,
        }
    }
}

/// An in-memory UDDI registry.
#[derive(Default)]
pub struct Registry {
    businesses: BTreeMap<String, BusinessEntity>,
    tmodels: BTreeMap<String, TModel>,
    assertions: Vec<PublisherAssertion>,
    /// Two-party access control: policies over entry documents (named by
    /// business key).
    pub policies: PolicyStore,
    /// Evaluation engine for `policies`.
    pub engine: PolicyEngine,
}

impl Registry {
    /// Creates an empty registry with an empty (deny-nothing-to-internal,
    /// closed-to-subjects) policy base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    // --- publisher API -----------------------------------------------------

    /// Saves (inserts or replaces) a business entity.
    pub fn save_business(&mut self, entity: BusinessEntity) {
        self.businesses.insert(entity.business_key.clone(), entity);
    }

    /// Deletes a business entity.
    pub fn delete_business(&mut self, key: &str) -> Result<(), RegistryError> {
        self.businesses
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))
    }

    /// Saves (inserts or replaces) a tModel.
    pub fn save_tmodel(&mut self, tmodel: TModel) {
        self.tmodels.insert(tmodel.tmodel_key.clone(), tmodel);
    }

    /// Deletes a tModel.
    pub fn delete_tmodel(&mut self, key: &str) -> Result<(), RegistryError> {
        self.tmodels
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))
    }

    /// Records a publisher assertion. The relationship only becomes visible
    /// once **both** parties have asserted it.
    pub fn add_assertion(&mut self, assertion: PublisherAssertion) {
        self.assertions.push(assertion);
    }

    /// Number of stored business entries.
    #[must_use]
    pub fn business_count(&self) -> usize {
        self.businesses.len()
    }

    // --- browse-pattern inquiries (find_xxx) --------------------------------

    /// `find_business`: overview rows for entries matching the qualifier.
    #[must_use]
    pub fn find_business(&self, q: &FindQualifier) -> Vec<BusinessOverview> {
        self.businesses
            .values()
            .filter(|be| match q {
                FindQualifier::NameApprox(_) => q.matches_name(&be.name),
                FindQualifier::Category {
                    tmodel_key,
                    key_value,
                } => be
                    .category_bag
                    .iter()
                    .any(|kr| &kr.tmodel_key == tmodel_key && &kr.key_value == key_value),
                FindQualifier::UsesTModel(tk) => be.services.iter().any(|s| {
                    s.binding_templates
                        .iter()
                        .any(|bt| bt.tmodel_keys.iter().any(|k| k == tk))
                }),
            })
            .map(|be| BusinessOverview {
                business_key: be.business_key.clone(),
                name: be.name.clone(),
            })
            .collect()
    }

    /// `find_service`: overview rows for services matching the qualifier.
    #[must_use]
    pub fn find_service(&self, q: &FindQualifier) -> Vec<ServiceOverview> {
        let mut out = Vec::new();
        for be in self.businesses.values() {
            for s in &be.services {
                let hit = match q {
                    FindQualifier::NameApprox(_) => q.matches_name(&s.name),
                    FindQualifier::Category {
                        tmodel_key,
                        key_value,
                    } => s
                        .category_bag
                        .iter()
                        .any(|kr| &kr.tmodel_key == tmodel_key && &kr.key_value == key_value),
                    FindQualifier::UsesTModel(tk) => s
                        .binding_templates
                        .iter()
                        .any(|bt| bt.tmodel_keys.iter().any(|k| k == tk)),
                };
                if hit {
                    out.push(ServiceOverview {
                        service_key: s.service_key.clone(),
                        business_key: be.business_key.clone(),
                        name: s.name.clone(),
                    });
                }
            }
        }
        out
    }

    /// `find_tModel`: keys and names of matching tModels.
    #[must_use]
    pub fn find_tmodel(&self, q: &FindQualifier) -> Vec<(String, String)> {
        self.tmodels
            .values()
            .filter(|tm| q.matches_name(&tm.name))
            .map(|tm| (tm.tmodel_key.clone(), tm.name.clone()))
            .collect()
    }

    /// Businesses related to `key` by **completed** publisher assertions
    /// (asserted in both directions).
    #[must_use]
    pub fn find_related_businesses(&self, key: &str) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.assertions {
            if a.from_key == key {
                let reciprocal = self.assertions.iter().any(|b| {
                    b.from_key == a.to_key && b.to_key == a.from_key && b.relationship == a.relationship
                });
                if reciprocal && !out.contains(&a.to_key) {
                    out.push(a.to_key.clone());
                }
            }
        }
        out
    }

    // --- drill-down inquiries (get_xxx) --------------------------------------

    /// `get_businessDetail`: the full entry (trusted/internal access).
    pub fn get_business_detail(&self, key: &str) -> Result<&BusinessEntity, RegistryError> {
        self.businesses
            .get(key)
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))
    }

    /// `get_serviceDetail`: a service (and its owning business key) by
    /// service key.
    pub fn get_service_detail(
        &self,
        key: &str,
    ) -> Result<(&str, &crate::model::BusinessService), RegistryError> {
        for be in self.businesses.values() {
            if let Some(svc) = be.services.iter().find(|s| s.service_key == key) {
                return Ok((be.business_key.as_str(), svc));
            }
        }
        Err(RegistryError::UnknownKey(key.to_string()))
    }

    /// `get_bindingDetail`: a binding template by binding key.
    pub fn get_binding_detail(
        &self,
        key: &str,
    ) -> Result<&crate::model::BindingTemplate, RegistryError> {
        for be in self.businesses.values() {
            for svc in &be.services {
                if let Some(bt) = svc
                    .binding_templates
                    .iter()
                    .find(|b| b.binding_key == key)
                {
                    return Ok(bt);
                }
            }
        }
        Err(RegistryError::UnknownKey(key.to_string()))
    }

    /// `get_tModelDetail`.
    pub fn get_tmodel_detail(&self, key: &str) -> Result<&TModel, RegistryError> {
        self.tmodels
            .get(key)
            .ok_or_else(|| RegistryError::UnknownKey(key.to_string()))
    }

    // --- two-party access-controlled inquiries --------------------------------

    /// `get_businessDetail` under access control: the subject receives the
    /// **authorized view** of the entry document (possibly with portions
    /// pruned), or `AccessDenied` when nothing is visible.
    pub fn get_business_detail_for(
        &self,
        key: &str,
        profile: &SubjectProfile,
    ) -> Result<Document, RegistryError> {
        let be = self.get_business_detail(key)?;
        let doc = be.to_document();
        let view = self.engine.compute_view(&self.policies, profile, key, &doc);
        if view.node_count() == 0 {
            return Err(RegistryError::AccessDenied);
        }
        Ok(view)
    }

    /// `find_business` under access control: only entries whose *name* the
    /// subject may read appear in the overview (confidential listings stay
    /// hidden).
    #[must_use]
    pub fn find_business_for(
        &self,
        q: &FindQualifier,
        profile: &SubjectProfile,
    ) -> Vec<BusinessOverview> {
        let name_path = Path::parse("/businessEntity/name").expect("static path");
        self.find_business(q)
            .into_iter()
            .filter(|row| {
                let Ok(be) = self.get_business_detail(&row.business_key) else {
                    return false;
                };
                let doc = be.to_document();
                let decision = self.engine.evaluate_document(
                    &self.policies,
                    profile,
                    &row.business_key,
                    &doc,
                    Privilege::Read,
                );
                name_path
                    .select_nodes(&doc)
                    .iter()
                    .all(|&n| decision.is_allowed(n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BusinessService, KeyedReference};
    use websec_policy::{Authorization, ObjectSpec, SubjectSpec};

    fn registry() -> Registry {
        let mut r = Registry::new();
        let mut acme = BusinessEntity::new("biz-acme", "Acme Healthcare");
        acme.category_bag.push(KeyedReference {
            tmodel_key: "uddi:naics".into(),
            key_name: "sector".into(),
            key_value: "62".into(),
        });
        let mut svc = BusinessService::new("svc-sched", "Scheduling");
        svc.binding_templates.push(crate::model::BindingTemplate {
            binding_key: "b1".into(),
            access_point: "https://acme.example".into(),
            description: String::new(),
            tmodel_keys: vec!["uddi:tm-sched".into()],
        });
        acme.services.push(svc);
        r.save_business(acme);

        let mut beta = BusinessEntity::new("biz-beta", "Beta Logistics");
        beta.services.push(BusinessService::new("svc-track", "Tracking"));
        r.save_business(beta);

        r.save_tmodel(TModel::new("uddi:tm-sched", "Scheduling Interface"));
        r
    }

    #[test]
    fn find_business_by_name_prefix() {
        let r = registry();
        let rows = r.find_business(&FindQualifier::NameApprox("acme".into()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].business_key, "biz-acme");
        assert!(r
            .find_business(&FindQualifier::NameApprox("zzz".into()))
            .is_empty());
    }

    #[test]
    fn find_business_by_category() {
        let r = registry();
        let rows = r.find_business(&FindQualifier::Category {
            tmodel_key: "uddi:naics".into(),
            key_value: "62".into(),
        });
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn find_business_by_tmodel() {
        let r = registry();
        let rows = r.find_business(&FindQualifier::UsesTModel("uddi:tm-sched".into()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].business_key, "biz-acme");
    }

    #[test]
    fn find_service() {
        let r = registry();
        let rows = r.find_service(&FindQualifier::NameApprox("track".into()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].business_key, "biz-beta");
    }

    #[test]
    fn find_tmodel() {
        let r = registry();
        let rows = r.find_tmodel(&FindQualifier::NameApprox("sched".into()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "uddi:tm-sched");
    }

    #[test]
    fn drill_down_and_delete() {
        let mut r = registry();
        assert!(r.get_business_detail("biz-acme").is_ok());
        assert!(r.get_tmodel_detail("uddi:tm-sched").is_ok());
        assert_eq!(
            r.get_business_detail("nope"),
            Err(RegistryError::UnknownKey("nope".into()))
        );
        r.delete_business("biz-acme").unwrap();
        assert!(r.get_business_detail("biz-acme").is_err());
        assert!(r.delete_business("biz-acme").is_err());
    }

    #[test]
    fn service_and_binding_drilldown() {
        let r = registry();
        let (biz, svc) = r.get_service_detail("svc-sched").unwrap();
        assert_eq!(biz, "biz-acme");
        assert_eq!(svc.name, "Scheduling");
        let bt = r.get_binding_detail("b1").unwrap();
        assert_eq!(bt.access_point, "https://acme.example");
        assert!(r.get_service_detail("nope").is_err());
        assert!(r.get_binding_detail("nope").is_err());
    }

    #[test]
    fn assertions_require_reciprocity() {
        let mut r = registry();
        r.add_assertion(PublisherAssertion {
            from_key: "biz-acme".into(),
            to_key: "biz-beta".into(),
            relationship: "peer-peer".into(),
        });
        // One-sided: not visible.
        assert!(r.find_related_businesses("biz-acme").is_empty());
        r.add_assertion(PublisherAssertion {
            from_key: "biz-beta".into(),
            to_key: "biz-acme".into(),
            relationship: "peer-peer".into(),
        });
        assert_eq!(r.find_related_businesses("biz-acme"), vec!["biz-beta"]);
        assert_eq!(r.find_related_businesses("biz-beta"), vec!["biz-acme"]);
    }

    #[test]
    fn access_controlled_detail() {
        let mut r = registry();
        r.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity("partner".into()),
            ObjectSpec::Document("biz-acme".into()),
            Privilege::Read,
        ));
        let partner = SubjectProfile::new("partner");
        let stranger = SubjectProfile::new("stranger");
        let view = r.get_business_detail_for("biz-acme", &partner).unwrap();
        assert!(view.to_xml_string().contains("Acme"));
        assert_eq!(
            r.get_business_detail_for("biz-acme", &stranger).unwrap_err(),
            RegistryError::AccessDenied
        );
    }

    #[test]
    fn access_controlled_portion_pruning() {
        let mut r = registry();
        // Partner may read everything except binding templates.
        r.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity("partner".into()),
            ObjectSpec::Document("biz-acme".into()),
            Privilege::Read,
        ));
        r.policies.add(Authorization::deny(
            0,
            SubjectSpec::Identity("partner".into()),
            ObjectSpec::Portion {
                document: "biz-acme".into(),
                path: Path::parse("//bindingTemplates").unwrap(),
            },
            Privilege::Read,
        ));
        let view = r
            .get_business_detail_for("biz-acme", &SubjectProfile::new("partner"))
            .unwrap();
        let s = view.to_xml_string();
        assert!(!s.contains("accessPoint"), "{s}");
        assert!(s.contains("Scheduling"), "{s}");
    }

    #[test]
    fn access_controlled_find_hides_unreadable() {
        let mut r = registry();
        r.policies.add(Authorization::grant(
            0,
            SubjectSpec::Identity("partner".into()),
            ObjectSpec::Document("biz-acme".into()),
            Privilege::Read,
        ));
        let q = FindQualifier::NameApprox("".into());
        let all = r.find_business(&q);
        assert_eq!(all.len(), 2);
        let partner_rows = r.find_business_for(&q, &SubjectProfile::new("partner"));
        assert_eq!(partner_rows.len(), 1);
        assert_eq!(partner_rows[0].business_key, "biz-acme");
        assert!(r
            .find_business_for(&q, &SubjectProfile::new("stranger"))
            .is_empty());
    }

    #[test]
    fn save_replaces() {
        let mut r = registry();
        let mut acme2 = BusinessEntity::new("biz-acme", "Acme Renamed");
        acme2.description = "v2".into();
        r.save_business(acme2);
        assert_eq!(r.business_count(), 2);
        assert_eq!(r.get_business_detail("biz-acme").unwrap().name, "Acme Renamed");
    }
}
