//! Third-party deployment: an untrusted discovery agency serving entries
//! with Merkle-based authentication (the ICWS 2003 method, §4.1).
//!
//! "The approach requires that the service provider sends the discovery
//! agency a summary signature, generated using a technique based on Merkle
//! hash trees, for each entry it is entitled to manage. When a service
//! requestor queries the UDDI registry, the discovery agency sends it,
//! besides the query result, also the signatures of the entries on which
//! the enquiry is performed … the discovery agency sends the requestor a
//! set of additional hash values, referring to the missing portions, that
//! make it able to locally perform the computation of the summary
//! signature."
//!
//! The heavy lifting (leaf layout, multiproofs, client verification) is
//! reused from `websec-publish`; this module wires it to UDDI entries and
//! inquiry patterns.

use crate::model::BusinessEntity;
use crate::registry::{BusinessOverview, FindQualifier};
use std::collections::BTreeMap;
use websec_crypto::sig::PublicKey;
use websec_crypto::SecureRng;
use websec_publish::{verify_answer, Owner, Publisher, QueryAnswer, VerifyError};
use websec_xml::{Document, Path};

/// Identifier of a service provider (key-lookup handle for requestors).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProviderId(pub String);

/// A service provider: owns entries and signs their summaries.
pub struct ServiceProvider {
    /// Provider id.
    pub id: ProviderId,
    owner: Owner,
}

impl ServiceProvider {
    /// Creates a provider able to sign `2^height` entries.
    #[must_use]
    pub fn new(id: &str, rng: &mut SecureRng, height: u32) -> Self {
        ServiceProvider {
            id: ProviderId(id.to_string()),
            owner: Owner::new(rng, height),
        }
    }

    /// The provider's verification key (published out of band).
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.owner.public_key()
    }

    /// Signs an entry and submits it to `agency`.
    pub fn publish_to(
        &mut self,
        agency: &mut UntrustedAgency,
        entity: &BusinessEntity,
    ) -> Result<(), websec_crypto::sig::SignError> {
        let doc = entity.to_document();
        let (auth, sig) = self.owner.publish(&entity.business_key, &doc)?;
        agency.host(self.id.clone(), entity.clone(), doc, auth, sig);
        Ok(())
    }
}

struct HostedEntry {
    provider: ProviderId,
    entity: BusinessEntity,
}

/// The untrusted discovery agency: hosts signed entries, answers inquiries
/// with verification objects, and **can** tamper (for experiments) — which
/// requestors then detect.
#[derive(Default)]
pub struct UntrustedAgency {
    publisher: Publisher,
    entries: BTreeMap<String, HostedEntry>,
}

impl UntrustedAgency {
    /// Creates an empty agency.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn host(
        &mut self,
        provider: ProviderId,
        entity: BusinessEntity,
        doc: Document,
        auth: websec_publish::AuthenticDocument,
        sig: websec_publish::SummarySignature,
    ) {
        let key = entity.business_key.clone();
        self.publisher.host(doc, auth, sig);
        self.entries.insert(key, HostedEntry { provider, entity });
    }

    /// Number of hosted entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are hosted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Browse inquiry: overview rows (unverified — requestors drill down to
    /// verify what they intend to use).
    #[must_use]
    pub fn find_business(&self, q: &FindQualifier) -> Vec<BusinessOverview> {
        self.entries
            .values()
            .filter(|e| match q {
                FindQualifier::NameApprox(prefix) => e
                    .entity
                    .name
                    .to_lowercase()
                    .starts_with(&prefix.to_lowercase()),
                FindQualifier::Category {
                    tmodel_key,
                    key_value,
                } => e
                    .entity
                    .category_bag
                    .iter()
                    .any(|kr| &kr.tmodel_key == tmodel_key && &kr.key_value == key_value),
                FindQualifier::UsesTModel(tk) => e.entity.services.iter().any(|s| {
                    s.binding_templates
                        .iter()
                        .any(|bt| bt.tmodel_keys.iter().any(|k| k == tk))
                }),
            })
            .map(|e| BusinessOverview {
                business_key: e.entity.business_key.clone(),
                name: e.entity.name.clone(),
            })
            .collect()
    }

    /// Provider of an entry (so the requestor knows whose key verifies it).
    #[must_use]
    pub fn provider_of(&self, business_key: &str) -> Option<&ProviderId> {
        self.entries.get(business_key).map(|e| &e.provider)
    }

    /// Drill-down with verification object: answers `path` over the entry
    /// document of `business_key`.
    #[must_use]
    pub fn get_detail(&self, business_key: &str, path: &Path) -> Option<QueryAnswer> {
        self.entries.get(business_key)?;
        self.publisher.answer(business_key, path)
    }

    /// **Verified browse**: like [`Self::find_business`], but every hit is
    /// accompanied by a verification object proving its advertised name
    /// against the provider's summary signature — so even the overview list
    /// cannot be silently rewritten by the agency.
    #[must_use]
    pub fn find_business_verified(
        &self,
        q: &FindQualifier,
    ) -> Vec<(BusinessOverview, QueryAnswer)> {
        let name_path = Path::parse("/businessEntity/name").expect("static path");
        self.find_business(q)
            .into_iter()
            .filter_map(|row| {
                let answer = self.publisher.answer(&row.business_key, &name_path)?;
                Some((row, answer))
            })
            .collect()
    }

    /// Mutable access to the underlying publisher — used by experiments to
    /// simulate a *malicious* agency (tampered answers).
    pub fn publisher_mut(&mut self) -> &mut Publisher {
        &mut self.publisher
    }
}

/// A verified drill-down result.
#[derive(Debug)]
pub struct VerifiedEntry {
    /// The authenticated (partial) entry document.
    pub view: Document,
    /// Business key.
    pub business_key: String,
}

/// Requestor-side verification of an agency answer against the provider's
/// public key.
pub fn verify_entry(
    answer: &QueryAnswer,
    provider_key: &PublicKey,
    business_key: &str,
    path: &Path,
) -> Result<VerifiedEntry, VerifyError> {
    let verified = verify_answer(answer, provider_key, business_key, path)?;
    Ok(VerifiedEntry {
        view: verified.view,
        business_key: business_key.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BindingTemplate, BusinessService};

    fn setup() -> (UntrustedAgency, ServiceProvider) {
        let mut rng = SecureRng::seeded(21);
        let mut provider = ServiceProvider::new("acme-corp", &mut rng, 3);
        let mut agency = UntrustedAgency::new();

        let mut be = BusinessEntity::new("biz-acme", "Acme Healthcare");
        let mut svc = BusinessService::new("svc-1", "Scheduling");
        svc.binding_templates.push(BindingTemplate {
            binding_key: "b1".into(),
            access_point: "https://acme.example/soap".into(),
            description: String::new(),
            tmodel_keys: vec![],
        });
        be.services.push(svc);
        provider.publish_to(&mut agency, &be).unwrap();
        (agency, provider)
    }

    #[test]
    fn publish_and_browse() {
        let (agency, _) = setup();
        assert_eq!(agency.len(), 1);
        let rows = agency.find_business(&FindQualifier::NameApprox("acme".into()));
        assert_eq!(rows.len(), 1);
        assert_eq!(
            agency.provider_of("biz-acme"),
            Some(&ProviderId("acme-corp".into()))
        );
    }

    #[test]
    fn verified_drilldown() {
        let (agency, provider) = setup();
        let path = Path::parse("/businessEntity").unwrap();
        let ans = agency.get_detail("biz-acme", &path).unwrap();
        let entry = verify_entry(&ans, &provider.public_key(), "biz-acme", &path).unwrap();
        let s = entry.view.to_xml_string();
        assert!(s.contains("Acme Healthcare"), "{s}");
        assert!(s.contains("accessPoint"), "{s}");
    }

    #[test]
    fn verified_partial_drilldown() {
        let (agency, provider) = setup();
        // Only the service names, not the bindings.
        let path = Path::parse("/businessEntity/businessServices/businessService/name").unwrap();
        let ans = agency.get_detail("biz-acme", &path).unwrap();
        let entry = verify_entry(&ans, &provider.public_key(), "biz-acme", &path).unwrap();
        let s = entry.view.to_xml_string();
        assert!(s.contains("Scheduling"), "{s}");
        assert!(!s.contains("accessPoint"), "{s}");
    }

    #[test]
    fn tampered_agency_detected() {
        let (agency, provider) = setup();
        let path = Path::parse("/businessEntity").unwrap();
        let mut ans = agency.get_detail("biz-acme", &path).unwrap();
        // The agency rewrites the access point to hijack traffic.
        for (summary, content) in &mut ans.revealed {
            let text = String::from_utf8_lossy(content);
            if text.contains("acme.example") {
                *content = text.replace("acme.example", "evil.example").into_bytes();
                let _ = summary; // hash left stale: detected as ContentMismatch
            }
        }
        let err = verify_entry(&ans, &provider.public_key(), "biz-acme", &path).unwrap_err();
        assert!(
            matches!(err, VerifyError::ContentMismatch(_) | VerifyError::ProofInvalid),
            "{err:?}"
        );
    }

    #[test]
    fn wrong_provider_key_rejected() {
        let (agency, _) = setup();
        let mut rng = SecureRng::seeded(22);
        let other = ServiceProvider::new("other", &mut rng, 2);
        let path = Path::parse("/businessEntity").unwrap();
        let ans = agency.get_detail("biz-acme", &path).unwrap();
        let err = verify_entry(&ans, &other.public_key(), "biz-acme", &path).unwrap_err();
        assert_eq!(err, VerifyError::SignatureInvalid);
    }

    #[test]
    fn unknown_entry_is_none() {
        let (agency, _) = setup();
        assert!(agency
            .get_detail("missing", &Path::parse("/businessEntity").unwrap())
            .is_none());
    }

    #[test]
    fn verified_browse_proves_names() {
        let (agency, provider) = setup();
        let hits = agency.find_business_verified(&FindQualifier::NameApprox("acme".into()));
        assert_eq!(hits.len(), 1);
        let (row, answer) = &hits[0];
        let name_path = Path::parse("/businessEntity/name").unwrap();
        let verified =
            verify_entry(answer, &provider.public_key(), &row.business_key, &name_path)
                .expect("honest browse verifies");
        assert!(verified.view.to_xml_string().contains("Acme Healthcare"));
    }

    #[test]
    fn verified_browse_detects_renamed_overview() {
        let (agency, provider) = setup();
        let mut hits = agency.find_business_verified(&FindQualifier::NameApprox("acme".into()));
        let (row, answer) = &mut hits[0];
        // The agency rewrites the advertised name inside the proof payload.
        for (_, content) in &mut answer.revealed {
            let text = String::from_utf8_lossy(content).to_string();
            if text.contains("Acme") {
                *content = text.replace("Acme", "Evil").into_bytes();
            }
        }
        let name_path = Path::parse("/businessEntity/name").unwrap();
        assert!(verify_entry(answer, &provider.public_key(), &row.business_key, &name_path)
            .is_err());
    }

    #[test]
    fn multiple_providers_coexist() {
        let mut rng = SecureRng::seeded(23);
        let mut p1 = ServiceProvider::new("p1", &mut rng, 2);
        let mut p2 = ServiceProvider::new("p2", &mut rng, 2);
        let mut agency = UntrustedAgency::new();
        p1.publish_to(&mut agency, &BusinessEntity::new("b1", "One"))
            .unwrap();
        p2.publish_to(&mut agency, &BusinessEntity::new("b2", "Two"))
            .unwrap();
        assert_eq!(agency.len(), 2);
        // Each entry verifies only under its own provider's key.
        let path = Path::parse("/businessEntity").unwrap();
        let a1 = agency.get_detail("b1", &path).unwrap();
        assert!(verify_entry(&a1, &p1.public_key(), "b1", &path).is_ok());
        assert!(verify_entry(&a1, &p2.public_key(), "b1", &path).is_err());
    }
}
