//! The five UDDI data structures and their canonical XML renderings.
//!
//! "The BusinessEntity data structure provides overall information about the
//! organization providing the web service, whereas the BusinessService data
//! structure provides a technical description of the service" (§2.2).

use websec_xml::{Document, NodeId};

/// A keyed categorization reference (taxonomy entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedReference {
    /// The taxonomy tModel this reference belongs to.
    pub tmodel_key: String,
    /// Human-readable name of the category.
    pub key_name: String,
    /// The category value (e.g. a NAICS code).
    pub key_value: String,
}

/// A bag of categorization references.
pub type CategoryBag = Vec<KeyedReference>;

/// Technical binding information: where and how to reach a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingTemplate {
    /// Unique binding key.
    pub binding_key: String,
    /// Network endpoint.
    pub access_point: String,
    /// Free-text description.
    pub description: String,
    /// tModels this binding implements (interface fingerprints).
    pub tmodel_keys: Vec<String>,
}

/// A service offered by a business.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessService {
    /// Unique service key.
    pub service_key: String,
    /// Service name.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Categorization.
    pub category_bag: CategoryBag,
    /// Technical bindings.
    pub binding_templates: Vec<BindingTemplate>,
}

/// Overall information about a service-providing organization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusinessEntity {
    /// Unique business key.
    pub business_key: String,
    /// Organization name.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Contact addresses (may be sensitive — §4.1 motivates protecting
    /// them: "a service provider may not want that the information about
    /// its web services are accessible to everyone").
    pub contacts: Vec<String>,
    /// Categorization.
    pub category_bag: CategoryBag,
    /// The services this business publishes.
    pub services: Vec<BusinessService>,
}

/// A reusable technical model (interface/taxonomy descriptor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TModel {
    /// Unique tModel key.
    pub tmodel_key: String,
    /// Name.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Pointer to the technical specification.
    pub overview_url: String,
}

/// A relationship assertion between two business entities (e.g.
/// parent–subsidiary); visible only when both sides assert it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublisherAssertion {
    /// Asserting business.
    pub from_key: String,
    /// Related business.
    pub to_key: String,
    /// Relationship type (e.g. "parent-child", "peer-peer").
    pub relationship: String,
}

impl BusinessEntity {
    /// Minimal constructor.
    #[must_use]
    pub fn new(business_key: &str, name: &str) -> Self {
        BusinessEntity {
            business_key: business_key.to_string(),
            name: name.to_string(),
            description: String::new(),
            contacts: Vec::new(),
            category_bag: Vec::new(),
            services: Vec::new(),
        }
    }

    /// Renders the entry as its canonical XML document, the representation
    /// signed and disseminated by the security layers.
    #[must_use]
    pub fn to_document(&self) -> Document {
        let mut d = Document::new("businessEntity");
        let root = d.root();
        d.set_attribute(root, "businessKey", &self.business_key);
        let name = d.add_element(root, "name");
        d.add_text(name, &self.name);
        if !self.description.is_empty() {
            let desc = d.add_element(root, "description");
            d.add_text(desc, &self.description);
        }
        if !self.contacts.is_empty() {
            let contacts = d.add_element(root, "contacts");
            for c in &self.contacts {
                let contact = d.add_element(contacts, "contact");
                d.add_text(contact, c);
            }
        }
        write_category_bag(&mut d, root, &self.category_bag);
        if !self.services.is_empty() {
            let services = d.add_element(root, "businessServices");
            for s in &self.services {
                s.write_into(&mut d, services);
            }
        }
        d
    }
}

impl BusinessService {
    /// Minimal constructor.
    #[must_use]
    pub fn new(service_key: &str, name: &str) -> Self {
        BusinessService {
            service_key: service_key.to_string(),
            name: name.to_string(),
            description: String::new(),
            category_bag: Vec::new(),
            binding_templates: Vec::new(),
        }
    }

    fn write_into(&self, d: &mut Document, parent: NodeId) {
        let svc = d.add_element(parent, "businessService");
        d.set_attribute(svc, "serviceKey", &self.service_key);
        let name = d.add_element(svc, "name");
        d.add_text(name, &self.name);
        if !self.description.is_empty() {
            let desc = d.add_element(svc, "description");
            d.add_text(desc, &self.description);
        }
        write_category_bag(d, svc, &self.category_bag);
        if !self.binding_templates.is_empty() {
            let bts = d.add_element(svc, "bindingTemplates");
            for bt in &self.binding_templates {
                let b = d.add_element(bts, "bindingTemplate");
                d.set_attribute(b, "bindingKey", &bt.binding_key);
                d.set_attribute(b, "accessPoint", &bt.access_point);
                if !bt.description.is_empty() {
                    let desc = d.add_element(b, "description");
                    d.add_text(desc, &bt.description);
                }
                for tk in &bt.tmodel_keys {
                    let t = d.add_element(b, "tModelInstance");
                    d.set_attribute(t, "tModelKey", tk);
                }
            }
        }
    }
}

impl TModel {
    /// Minimal constructor.
    #[must_use]
    pub fn new(tmodel_key: &str, name: &str) -> Self {
        TModel {
            tmodel_key: tmodel_key.to_string(),
            name: name.to_string(),
            description: String::new(),
            overview_url: String::new(),
        }
    }

    /// Canonical XML rendering.
    #[must_use]
    pub fn to_document(&self) -> Document {
        let mut d = Document::new("tModel");
        let root = d.root();
        d.set_attribute(root, "tModelKey", &self.tmodel_key);
        let name = d.add_element(root, "name");
        d.add_text(name, &self.name);
        if !self.description.is_empty() {
            let desc = d.add_element(root, "description");
            d.add_text(desc, &self.description);
        }
        if !self.overview_url.is_empty() {
            let o = d.add_element(root, "overviewDoc");
            d.set_attribute(o, "overviewURL", &self.overview_url);
        }
        d
    }
}

fn write_category_bag(d: &mut Document, parent: NodeId, bag: &CategoryBag) {
    if bag.is_empty() {
        return;
    }
    let bag_el = d.add_element(parent, "categoryBag");
    for kr in bag {
        let r = d.add_element(bag_el, "keyedReference");
        d.set_attribute(r, "tModelKey", &kr.tmodel_key);
        d.set_attribute(r, "keyName", &kr.key_name);
        d.set_attribute(r, "keyValue", &kr.key_value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BusinessEntity {
        let mut be = BusinessEntity::new("biz-1", "Acme Healthcare");
        be.description = "Hospital services".into();
        be.contacts.push("ops@acme.example".into());
        be.category_bag.push(KeyedReference {
            tmodel_key: "uddi:naics".into(),
            key_name: "sector".into(),
            key_value: "62".into(),
        });
        let mut svc = BusinessService::new("svc-1", "Appointment Scheduling");
        svc.description = "SOAP scheduling endpoint".into();
        svc.binding_templates.push(BindingTemplate {
            binding_key: "bind-1".into(),
            access_point: "https://acme.example/soap".into(),
            description: "production".into(),
            tmodel_keys: vec!["uddi:tm-1".into()],
        });
        be.services.push(svc);
        be
    }

    #[test]
    fn entity_document_structure() {
        let d = sample().to_document();
        let s = d.to_xml_string();
        assert!(s.starts_with("<businessEntity businessKey=\"biz-1\">"), "{s}");
        assert!(s.contains("<name>Acme Healthcare</name>"), "{s}");
        assert!(s.contains("serviceKey=\"svc-1\""), "{s}");
        assert!(s.contains("accessPoint=\"https://acme.example/soap\""), "{s}");
        assert!(s.contains("keyValue=\"62\""), "{s}");
        assert!(s.contains("ops@acme.example"), "{s}");
    }

    #[test]
    fn entity_document_queryable() {
        let d = sample().to_document();
        let p = websec_xml::Path::parse("/businessEntity/businessServices/businessService/@serviceKey")
            .unwrap();
        assert_eq!(p.select(&d).len(), 1);
    }

    #[test]
    fn empty_sections_omitted() {
        let be = BusinessEntity::new("b", "n");
        let s = be.to_document().to_xml_string();
        assert!(!s.contains("contacts"));
        assert!(!s.contains("categoryBag"));
        assert!(!s.contains("businessServices"));
        assert!(!s.contains("description"));
    }

    #[test]
    fn tmodel_document() {
        let mut tm = TModel::new("uddi:tm-1", "Scheduling Interface");
        tm.overview_url = "https://spec.example/wsdl".into();
        let s = tm.to_document().to_xml_string();
        assert!(s.contains("tModelKey=\"uddi:tm-1\""), "{s}");
        assert!(s.contains("overviewURL"), "{s}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = sample().to_document().to_xml_string();
        let b = sample().to_document().to_xml_string();
        assert_eq!(a, b);
    }
}
