//! # websec-uddi
//!
//! A UDDI-style registry (§2.2 of the paper) with the security machinery of
//! §4.1: "an UDDI registry is a collection of entry, each of one providing
//! information on a specific web service. Each entry is in turn composed by
//! five main data structures — businessEntity, businessService,
//! bindingTemplate, publisherAssertion, and tModel."
//!
//! * [`model`] — the five data structures, with canonical XML renderings so
//!   entries plug into the workspace's XML security machinery.
//! * [`registry`] — the registry proper: publisher API plus the two inquiry
//!   families, "drill-down pattern inquiries (i.e., get_xxx API functions)"
//!   and "browse pattern inquiries (i.e., find_xxx API functions)", all
//!   flowing through one builder-style entry point
//!   ([`InquiryRequest`] → [`UddiRegistry::inquire`] → [`InquiryResponse`]);
//!   two-party deployments enforce access control with `websec-policy`
//!   ("an access control mechanism can be used to ensure that UDDI entries
//!   are accessed and modified only according to the specified policies").
//! * [`auth`] — the third-party deployment: an untrusted discovery agency
//!   serving entries authenticated by per-entry Merkle **summary
//!   signatures**, so "the requestor can locally recompute the same hash
//!   value signed by the service provider … and can thus verify whether the
//!   discovery agency has altered the content of the query answer".

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod auth;
pub mod model;
pub mod registry;

pub use auth::{ProviderId, ServiceProvider, UntrustedAgency, VerifiedEntry};
pub use model::{
    BindingTemplate, BusinessEntity, BusinessService, CategoryBag, KeyedReference,
    PublisherAssertion, TModel,
};
#[allow(deprecated)]
pub use registry::Registry;
pub use registry::{
    BusinessOverview, FindQualifier, InquiryRequest, InquiryResponse, RegistryError,
    ServiceOverview, TModelOverview, UddiRegistry,
};
