//! Diagnostic and report types shared by all analyzer passes.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, not necessarily wrong.
    Info,
    /// Likely misconfiguration; the stack still functions.
    Warning,
    /// Definite misconfiguration; strict mode refuses to boot.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`WS001`..`WS005`).
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// The subject/object span the finding is about (e.g. an authorization
    /// pair, a label name, a constraint's attribute set).
    pub span: String,
    /// Human-readable description of the problem.
    pub message: String,
    /// Actionable suggestion, when one exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic without a suggestion.
    #[must_use]
    pub fn new(
        code: &'static str,
        severity: Severity,
        span: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            span: span.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Line-oriented machine form: `CODE|severity|span|message`.
    #[must_use]
    pub fn machine_line(&self) -> String {
        format!("{}|{}|{}|{}", self.code, self.severity, self.span, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    suggestion: {s}")?;
        }
        Ok(())
    }
}

/// The aggregate result of an analyzer run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in pass order (WS001 first).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no diagnostics were produced.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one finding is [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Findings with the given code.
    #[must_use]
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Count of findings at `severity` or worse.
    #[must_use]
    pub fn count_at_least(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= severity)
            .count()
    }

    /// Human-readable multi-line rendering.
    #[must_use]
    pub fn human(&self) -> String {
        if self.is_clean() {
            return "analysis clean: no findings".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} finding(s): {} error(s), {} warning(s), {} info",
            self.diagnostics.len(),
            self.with_code_severity(Severity::Error),
            self.with_code_severity(Severity::Warning),
            self.with_code_severity(Severity::Info),
        ));
        out
    }

    fn with_code_severity(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Line-oriented machine rendering: one `machine_line` per finding.
    #[must_use]
    pub fn machine(&self) -> String {
        self.diagnostics
            .iter()
            .map(Diagnostic::machine_line)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Sorts diagnostics into the canonical emission order — by
    /// `(code, span, severity, message, suggestion)` — so that two runs over
    /// the same input produce byte-identical [`Report::machine`] and
    /// [`Report::to_json`] output regardless of pass scheduling.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.code, &a.span, a.severity, &a.message, &a.suggestion).cmp(&(
                b.code,
                &b.span,
                b.severity,
                &b.message,
                &b.suggestion,
            ))
        });
    }

    /// Stable JSON serialization: an object with a `diagnostics` array whose
    /// entries carry `code`, `severity`, `span`, `message` and (when present)
    /// `suggestion`, in normalized field order with deterministic escaping.
    /// Two byte-identical inputs yield two byte-identical JSON documents, so
    /// CI can diff runs directly.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":");
            push_json_string(&mut out, d.code);
            out.push_str(",\"severity\":");
            push_json_string(&mut out, &d.severity.to_string());
            out.push_str(",\"span\":");
            push_json_string(&mut out, &d.span);
            out.push_str(",\"message\":");
            push_json_string(&mut out, &d.message);
            if let Some(s) = &d.suggestion {
                out.push_str(",\"suggestion\":");
                push_json_string(&mut out, s);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends `value` to `out` as a JSON string literal with standard escaping.
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn machine_line_shape() {
        let d = Diagnostic::new("WS001", Severity::Error, "a1/a2", "conflict");
        assert_eq!(d.machine_line(), "WS001|error|a1/a2|conflict");
    }

    #[test]
    fn report_queries() {
        let mut r = Report::default();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        r.diagnostics
            .push(Diagnostic::new("WS002", Severity::Warning, "x", "m"));
        r.diagnostics
            .push(Diagnostic::new("WS001", Severity::Error, "y", "n"));
        assert!(!r.is_clean());
        assert!(r.has_errors());
        assert_eq!(r.with_code("WS002").len(), 1);
        assert_eq!(r.count_at_least(Severity::Warning), 2);
        assert_eq!(r.count_at_least(Severity::Error), 1);
    }

    #[test]
    fn human_rendering_mentions_suggestion() {
        let d = Diagnostic::new("WS005", Severity::Warning, "s", "dangling")
            .with_suggestion("remove the rule");
        assert!(d.to_string().contains("suggestion: remove the rule"));
    }

    #[test]
    fn normalize_sorts_by_code_then_span() {
        let mut r = Report::default();
        r.diagnostics
            .push(Diagnostic::new("WS007", Severity::Warning, "b", "m2"));
        r.diagnostics
            .push(Diagnostic::new("WS007", Severity::Warning, "a", "m1"));
        r.diagnostics
            .push(Diagnostic::new("WS001", Severity::Error, "z", "m0"));
        r.normalize();
        let order: Vec<(&str, &str)> = r
            .diagnostics
            .iter()
            .map(|d| (d.code, d.span.as_str()))
            .collect();
        assert_eq!(order, vec![("WS001", "z"), ("WS007", "a"), ("WS007", "b")]);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = Report::default();
        r.diagnostics.push(
            Diagnostic::new("WS003", Severity::Info, "label \"x\"", "line1\nline2")
                .with_suggestion("tab\there"),
        );
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"diagnostics\":[{\"code\":\"WS003\",\"severity\":\"info\",\
             \"span\":\"label \\\"x\\\"\",\"message\":\"line1\\nline2\",\
             \"suggestion\":\"tab\\there\"}]}"
        );
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn empty_report_json() {
        assert_eq!(Report::default().to_json(), "{\"diagnostics\":[]}");
    }
}
