//! Static verification of the compiled policy plane (WS013–WS018).
//!
//! PR 8 made the decision path an analyzable artifact: every published
//! snapshot carries [`CompiledPolicies`] — interned decision tables and
//! per-document equivalence classes. The passes here reason over that
//! artifact (falling back to the compiled `check` oracle where static
//! coverage alone cannot decide) and emit six diagnostics:
//!
//! * **WS013 rule shadowing** — an earlier authorization covers a later
//!   same-signed one everywhere it applies, at a resolution key at
//!   least as strong, making the later rule unreachable.
//! * **WS014 conflict** — a grant and a denial for overlapping subjects
//!   land in the same equivalence class for a shared privilege; an
//!   exact resolution-key tie under a keyed strategy is an error.
//! * **WS015 dead policy** — an authorization covers no element and no
//!   attribute of any compiled document.
//! * **WS016 privilege-escalation chain** — the role-dominator closure
//!   grants a senior role access that a direct denial on that role
//!   would forbid.
//! * **WS017 revocation gap** — an identity-level denial (a revocation)
//!   is still reachable through a role the identity can activate.
//! * **WS018 inference channel** — a subject is denied an element but
//!   granted every element child, so the permitted views compose to
//!   the denied element's full content.
//!
//! All passes read only the [`Section::Policy`] and
//! [`Section::Documents`] sections, so the server's epoch-keyed
//! incremental analysis can skip the whole suite when neither changed.
//! Reports are normalized: identical inputs yield byte-identical
//! machine output.

use std::collections::{BTreeMap, BTreeSet};

use websec_policy::{
    AccessDecision, Authorization, CompiledPolicies, Credential, CredentialExpr, PolicyEngine,
    Privilege, Sign, SubjectProfile, SubjectSpec,
};
use websec_xml::Document;

use crate::diagnostics::{Diagnostic, Report, Severity};
use crate::passes::{pair_span, subject_covers, subjects_may_overlap, Section};

/// Privileges in implication order, with their relevance-mask bits.
const PRIVILEGES: [(Privilege, u8); 4] = [
    (Privilege::Browse, 1),
    (Privilege::Read, 2),
    (Privilege::Write, 4),
    (Privilege::Admin, 8),
];

/// Input to the policy-verifier passes: the compiled artifact plus the
/// source documents it was compiled over (needed by WS018 to walk
/// element/child structure).
#[derive(Clone)]
pub struct PolicyVerifyInput<'a> {
    /// The compiled decision plane under verification.
    pub compiled: &'a CompiledPolicies,
    /// `(name, document)` pairs; only documents also present in the
    /// compiled artifact are inspected.
    pub documents: Vec<(&'a str, &'a Document)>,
}

impl<'a> PolicyVerifyInput<'a> {
    /// Creates an input over `compiled` with no documents attached.
    #[must_use]
    pub fn new(compiled: &'a CompiledPolicies) -> Self {
        PolicyVerifyInput {
            compiled,
            documents: Vec::new(),
        }
    }

    /// Attaches a source document (builder style).
    #[must_use]
    pub fn with_document(mut self, name: &'a str, doc: &'a Document) -> Self {
        self.documents.push((name, doc));
        self
    }
}

/// Identifies one policy-verifier pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyPassId {
    /// WS013 rule shadowing over the compiled plane.
    Ws013,
    /// WS014 grant/deny conflict inside an equivalence class.
    Ws014,
    /// WS015 dead policy (covers nothing anywhere).
    Ws015,
    /// WS016 privilege escalation through the role-dominator closure.
    Ws016,
    /// WS017 revocation gap through a dominator path.
    Ws017,
    /// WS018 inference channel via view composition.
    Ws018,
}

impl PolicyPassId {
    /// Every policy-verifier pass, in code order.
    pub const ALL: [PolicyPassId; 6] = [
        PolicyPassId::Ws013,
        PolicyPassId::Ws014,
        PolicyPassId::Ws015,
        PolicyPassId::Ws016,
        PolicyPassId::Ws017,
        PolicyPassId::Ws018,
    ];

    /// The stable diagnostic code the pass emits.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            PolicyPassId::Ws013 => "WS013",
            PolicyPassId::Ws014 => "WS014",
            PolicyPassId::Ws015 => "WS015",
            PolicyPassId::Ws016 => "WS016",
            PolicyPassId::Ws017 => "WS017",
            PolicyPassId::Ws018 => "WS018",
        }
    }

    /// One-line description of what the pass proves.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            PolicyPassId::Ws013 => "rule shadowing: an earlier rule makes a later one unreachable",
            PolicyPassId::Ws014 => {
                "conflict: overlapping subjects both granted and denied in one equivalence class"
            }
            PolicyPassId::Ws015 => "dead policy: authorization matches no element in any document",
            PolicyPassId::Ws016 => {
                "privilege escalation: role-dominator closure overrides a direct denial"
            }
            PolicyPassId::Ws017 => {
                "revocation gap: revoked identity still reachable through a role path"
            }
            PolicyPassId::Ws018 => {
                "inference channel: permitted child views compose to a denied element"
            }
        }
    }

    /// The input sections the pass reads; every policy pass depends on
    /// the policy base and the registered documents, nothing else.
    #[must_use]
    pub fn sections(self) -> &'static [Section] {
        &[Section::Policy, Section::Documents]
    }
}

/// Runs a single policy-verifier pass over `input`.
#[must_use]
pub fn run_policy_pass(input: &PolicyVerifyInput<'_>, pass: PolicyPassId) -> Vec<Diagnostic> {
    match pass {
        PolicyPassId::Ws013 => ws013_shadowing(input),
        PolicyPassId::Ws014 => ws014_class_conflicts(input),
        PolicyPassId::Ws015 => ws015_dead_policies(input),
        PolicyPassId::Ws016 => ws016_escalation_chains(input),
        PolicyPassId::Ws017 => ws017_revocation_gaps(input),
        PolicyPassId::Ws018 => ws018_inference_channels(input),
    }
}

/// Runs WS013–WS018 and aggregates the findings into a normalized
/// report (byte-identical for identical inputs).
#[must_use]
pub fn verify_policies(input: &PolicyVerifyInput<'_>) -> Report {
    let mut diagnostics = Vec::new();
    for pass in PolicyPassId::ALL {
        diagnostics.extend(run_policy_pass(input, pass));
    }
    let mut report = Report { diagnostics };
    report.normalize();
    report
}

/// Bitmask of privileges the authorization is relevant to (grant of `q`
/// supports any `p ≤ q`; denial of `q` blocks any `p ≥ q`).
fn relevance_mask(auth: &Authorization) -> u8 {
    let mut mask = 0u8;
    for (p, bit) in PRIVILEGES {
        if PolicyEngine::relevant(auth, p) {
            mask |= bit;
        }
    }
    mask
}

/// First (weakest) privilege both masks are relevant to.
fn first_shared_privilege(a: u8, b: u8) -> Option<Privilege> {
    PRIVILEGES
        .iter()
        .find(|(_, bit)| a & bit != 0 && b & bit != 0)
        .map(|&(p, _)| p)
}

/// Equivalence-class membership of every source authorization:
/// `(doc index in sorted name order, class id)` pairs.
fn class_memberships(compiled: &CompiledPolicies) -> BTreeMap<u32, BTreeSet<(usize, u32)>> {
    let mut memberships: BTreeMap<u32, BTreeSet<(usize, u32)>> = BTreeMap::new();
    for (doc_idx, name) in compiled.document_names().iter().enumerate() {
        let Some(classes) = compiled.classes_of(name) else {
            continue;
        };
        for cv in classes {
            for auth in cv.auths {
                memberships
                    .entry(auth.id.0)
                    .or_default()
                    .insert((doc_idx, cv.class));
            }
        }
    }
    memberships
}

/// Ids with attribute-granularity coverage anywhere; WS013 skips these
/// conservatively (element classes alone cannot prove an attribute rule
/// unreachable).
fn attr_level_ids(compiled: &CompiledPolicies) -> BTreeSet<u32> {
    let mut ids = BTreeSet::new();
    for name in compiled.document_names() {
        if let Some(doc_ids) = compiled.attr_auth_ids(name) {
            ids.extend(doc_ids.into_iter().map(|id| id.0));
        }
    }
    ids
}

/// WS013: an earlier authorization of the same sign covers a later one
/// everywhere it applies (same classes, covering subject, superset
/// relevance) at a resolution key at least as strong — so removing the
/// later rule cannot change any decision: it is shadowed.
fn ws013_shadowing(input: &PolicyVerifyInput<'_>) -> Vec<Diagnostic> {
    let compiled = input.compiled;
    let auths = compiled.source_authorizations();
    let hierarchy = compiled.hierarchy();
    let memberships = class_memberships(compiled);
    let attr_ids = attr_level_ids(compiled);
    let empty = BTreeSet::new();
    let masks: Vec<u8> = auths.iter().map(relevance_mask).collect();

    let mut out = Vec::new();
    for (li, later) in auths.iter().enumerate() {
        if attr_ids.contains(&later.id.0) {
            continue;
        }
        let later_classes = memberships.get(&later.id.0).unwrap_or(&empty);
        if later_classes.is_empty() {
            // Covers nothing: WS015 territory, not shadowing.
            continue;
        }
        for (ei, earlier) in auths.iter().enumerate().take(li) {
            if earlier.sign != later.sign
                || attr_ids.contains(&earlier.id.0)
                || masks[ei] & masks[li] != masks[li]
                || !subject_covers(&earlier.subject, &later.subject, hierarchy)
                || compiled.resolution_key(earlier) < compiled.resolution_key(later)
            {
                continue;
            }
            let earlier_classes = memberships.get(&earlier.id.0).unwrap_or(&empty);
            if !later_classes.is_subset(earlier_classes) {
                continue;
            }
            let sign = match later.sign {
                Sign::Plus => "grant",
                Sign::Minus => "denial",
            };
            out.push(
                Diagnostic::new(
                    "WS013",
                    Severity::Warning,
                    pair_span(earlier, later),
                    format!(
                        "{sign} #{} is shadowed: #{} applies to every subject, privilege, and \
                         equivalence class it covers, at a resolution key at least as strong",
                        later.id.0, earlier.id.0
                    ),
                )
                .with_suggestion(format!(
                    "remove authorization #{} or narrow #{} so the later rule can take effect",
                    later.id.0, earlier.id.0
                )),
            );
            break; // one shadower per victim is enough
        }
    }
    out
}

/// WS014: a grant and a denial for possibly-overlapping subjects cover
/// the same equivalence class for a shared privilege. Under a keyed
/// strategy an exact key tie is an error (the outcome rests on the
/// deny-wins tiebreak, not on anything the author expressed); otherwise
/// the overlap is reported as a warning.
fn ws014_class_conflicts(input: &PolicyVerifyInput<'_>) -> Vec<Diagnostic> {
    let compiled = input.compiled;
    let hierarchy = compiled.hierarchy();
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    for name in compiled.document_names() {
        let Some(classes) = compiled.classes_of(name) else {
            continue;
        };
        for cv in classes {
            for grant in cv.auths.iter().filter(|a| a.sign == Sign::Plus) {
                for denial in cv.auths.iter().filter(|a| a.sign == Sign::Minus) {
                    let shared = first_shared_privilege(
                        relevance_mask(grant),
                        relevance_mask(denial),
                    );
                    let Some(privilege) = shared else { continue };
                    if !subjects_may_overlap(&grant.subject, &denial.subject, hierarchy)
                        || !seen.insert((grant.id.0, denial.id.0))
                    {
                        continue;
                    }
                    let tied = compiled.strategy_is_keyed()
                        && compiled.resolution_key(grant) == compiled.resolution_key(denial);
                    let severity = if tied { Severity::Error } else { Severity::Warning };
                    let tie_note = if tied {
                        " at an exact resolution-key tie"
                    } else {
                        ""
                    };
                    out.push(
                        Diagnostic::new(
                            "WS014",
                            severity,
                            pair_span(grant, denial),
                            format!(
                                "grant #{} and denial #{} both cover equivalence class {} of \
                                 '{}' for privilege {:?} with overlapping subjects{}",
                                grant.id.0, denial.id.0, cv.class, name, privilege, tie_note
                            ),
                        )
                        .with_suggestion(
                            "separate the subjects or set distinct resolution keys so the \
                             intended rule wins",
                        ),
                    );
                }
            }
        }
    }
    out
}

/// WS015: an authorization whose object spec matches no element and no
/// attribute of any compiled document — dead weight in the policy base,
/// usually a typo in a path or document name.
fn ws015_dead_policies(input: &PolicyVerifyInput<'_>) -> Vec<Diagnostic> {
    let compiled = input.compiled;
    if compiled.doc_count() == 0 {
        // Nothing registered yet: every rule would be trivially "dead".
        return Vec::new();
    }
    let mut live: BTreeSet<u32> = BTreeSet::new();
    for name in compiled.document_names() {
        if let Some(ids) = compiled.covered_auth_ids(name) {
            live.extend(ids.into_iter().map(|id| id.0));
        }
    }
    compiled
        .source_authorizations()
        .iter()
        .filter(|auth| !live.contains(&auth.id.0))
        .map(|auth| {
            Diagnostic::new(
                "WS015",
                Severity::Warning,
                crate::passes::auth_span(auth),
                format!(
                    "dead policy: authorization #{} on {:?} matches no element or attribute \
                     in any registered document",
                    auth.id.0, auth.object
                ),
            )
            .with_suggestion("fix the document name or path, or remove the authorization")
        })
        .collect()
}

/// WS016: inside one equivalence class, a grant to a junior role and a
/// denial to a senior role — and the dominator closure (senior subjects
/// activate everything they dominate) makes the senior *pass* anyway.
/// Confirmed against the compiled oracle before reporting.
fn ws016_escalation_chains(input: &PolicyVerifyInput<'_>) -> Vec<Diagnostic> {
    let compiled = input.compiled;
    let hierarchy = compiled.hierarchy();
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    for name in compiled.document_names() {
        let Some(classes) = compiled.classes_of(name) else {
            continue;
        };
        for cv in classes {
            for grant in cv.auths.iter().filter(|a| a.sign == Sign::Plus) {
                let SubjectSpec::InRole(junior) = &grant.subject else {
                    continue;
                };
                for denial in cv.auths.iter().filter(|a| a.sign == Sign::Minus) {
                    let SubjectSpec::InRole(senior) = &denial.subject else {
                        continue;
                    };
                    if senior == junior || !hierarchy.dominates(senior, junior) {
                        continue;
                    }
                    let Some(privilege) = first_shared_privilege(
                        relevance_mask(grant),
                        relevance_mask(denial),
                    ) else {
                        continue;
                    };
                    let witness =
                        SubjectProfile::new("ws016:witness").with_role(senior.clone());
                    if compiled.check(&witness, name, cv.nodes[0], privilege)
                        != Some(AccessDecision::Granted)
                        || !seen.insert((grant.id.0, denial.id.0))
                    {
                        continue;
                    }
                    out.push(
                        Diagnostic::new(
                            "WS016",
                            Severity::Warning,
                            pair_span(grant, denial),
                            format!(
                                "privilege escalation: role '{}' dominates '{}', so grant #{} \
                                 reaches it through the hierarchy and overrides denial #{} for \
                                 {:?} on class {} of '{}'",
                                senior.0, junior.0, grant.id.0, denial.id.0, privilege,
                                cv.class, name
                            ),
                        )
                        .with_suggestion(
                            "deny at higher priority/specificity, or break the seniority edge \
                             the escalation rides",
                        ),
                    );
                }
            }
        }
    }
    out
}

/// WS017: an identity-level denial (the revocation idiom) coexists with
/// a role grant in the same class, and the identity *with the role
/// activated* still gets through while the bare identity is denied —
/// the revocation has a gap through the dominator path.
fn ws017_revocation_gaps(input: &PolicyVerifyInput<'_>) -> Vec<Diagnostic> {
    let compiled = input.compiled;
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    for name in compiled.document_names() {
        let Some(classes) = compiled.classes_of(name) else {
            continue;
        };
        for cv in classes {
            for denial in cv.auths.iter().filter(|a| a.sign == Sign::Minus) {
                let SubjectSpec::Identity(who) = &denial.subject else {
                    continue;
                };
                for grant in cv.auths.iter().filter(|a| a.sign == Sign::Plus) {
                    let SubjectSpec::InRole(role) = &grant.subject else {
                        continue;
                    };
                    let Some(privilege) = first_shared_privilege(
                        relevance_mask(grant),
                        relevance_mask(denial),
                    ) else {
                        continue;
                    };
                    let with_role = SubjectProfile::new(who).with_role(role.clone());
                    let bare = SubjectProfile::new(who);
                    if compiled.check(&with_role, name, cv.nodes[0], privilege)
                        != Some(AccessDecision::Granted)
                        || compiled.check(&bare, name, cv.nodes[0], privilege)
                            != Some(AccessDecision::Denied)
                        || !seen.insert((denial.id.0, grant.id.0))
                    {
                        continue;
                    }
                    out.push(
                        Diagnostic::new(
                            "WS017",
                            Severity::Warning,
                            pair_span(denial, grant),
                            format!(
                                "revocation gap: '{}' is denied {:?} by #{} but regains it on \
                                 class {} of '{}' by activating role '{}' (grant #{})",
                                who, privilege, denial.id.0, cv.class, name, role.0, grant.id.0
                            ),
                        )
                        .with_suggestion(
                            "revoke at role level too, or raise the denial's priority above \
                             the role grant",
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Best-effort construction of a credential set satisfying `expr`.
/// `None` when satisfaction cannot be guaranteed statically (negations).
fn satisfy(expr: &CredentialExpr) -> Option<Vec<Credential>> {
    match expr {
        CredentialExpr::OfType(t) => Some(vec![Credential::new(t, "ws018:witness")]),
        CredentialExpr::AttrEq(name, value) => Some(vec![
            Credential::new("ws018:cred", "ws018:witness").with_attr(name, value.clone()),
        ]),
        CredentialExpr::AttrGe(name, bound) | CredentialExpr::AttrLe(name, bound) => Some(vec![
            Credential::new("ws018:cred", "ws018:witness").with_attr(name, *bound),
        ]),
        CredentialExpr::HasAttr(name) => Some(vec![
            Credential::new("ws018:cred", "ws018:witness").with_attr(name, 1i64),
        ]),
        CredentialExpr::And(a, b) => {
            let mut creds = satisfy(a)?;
            creds.extend(satisfy(b)?);
            Some(creds)
        }
        CredentialExpr::Or(a, b) => satisfy(a).or_else(|| satisfy(b)),
        CredentialExpr::Not(_) => None,
    }
}

/// Deterministic witness subjects drawn from the policy base: the
/// anonymous subject plus one witness per distinct subject spec.
fn witness_profiles(compiled: &CompiledPolicies) -> Vec<SubjectProfile> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let mut push = |profile: SubjectProfile, seen: &mut BTreeSet<String>| {
        if seen.insert(format!("{profile:?}")) {
            out.push(profile);
        }
    };
    push(SubjectProfile::new("ws018:anonymous"), &mut seen);
    for auth in compiled.source_authorizations() {
        match &auth.subject {
            SubjectSpec::Anyone => {}
            SubjectSpec::Identity(who) => push(SubjectProfile::new(who), &mut seen),
            SubjectSpec::InRole(role) => push(
                SubjectProfile::new(&format!("ws018:role:{}", role.0)).with_role(role.clone()),
                &mut seen,
            ),
            SubjectSpec::WithCredentials(expr) => {
                if let Some(creds) = satisfy(expr) {
                    let mut profile = SubjectProfile::new("ws018:credentialed");
                    for cred in creds {
                        profile = profile.with_credential(cred);
                    }
                    push(profile, &mut seen);
                }
            }
        }
    }
    out
}

/// WS018: for some witness subject, an element is denied `Read` but
/// every element child is granted it — the union of the permitted child
/// views reconstructs the denied element's full content. This is a
/// decision-plane property: per-portion queries answer for each child
/// regardless of how a single pruned view would be rendered.
fn ws018_inference_channels(input: &PolicyVerifyInput<'_>) -> Vec<Diagnostic> {
    let compiled = input.compiled;
    let witnesses = witness_profiles(compiled);
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut out = Vec::new();
    for &(name, doc) in &input.documents {
        for (pos, node) in doc.all_nodes().into_iter().enumerate() {
            let Some(elem) = doc.name(node) else { continue };
            let children: Vec<_> = doc
                .children(node)
                .filter(|&c| doc.name(c).is_some())
                .collect();
            if children.is_empty() {
                continue;
            }
            for witness in &witnesses {
                if compiled.check(witness, name, node, Privilege::Read)
                    != Some(AccessDecision::Denied)
                {
                    continue;
                }
                let all_children_granted = children.iter().all(|&c| {
                    compiled.check(witness, name, c, Privilege::Read)
                        == Some(AccessDecision::Granted)
                });
                if !all_children_granted || !seen.insert((name.to_string(), pos)) {
                    continue;
                }
                out.push(
                    Diagnostic::new(
                        "WS018",
                        Severity::Warning,
                        format!("document '{name}' element '{elem}'"),
                        format!(
                            "inference channel: subject '{}' is denied Read on <{}> but \
                             granted all {} element children — the permitted views compose \
                             to the denied element's content",
                            witness.identity,
                            elem,
                            children.len()
                        ),
                    )
                    .with_suggestion(
                        "propagate the denial to the children (Cascade) or deny the \
                         children explicitly",
                    ),
                );
                break; // one witness per element is enough
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use websec_policy::{
        Authorization, ConflictStrategy, ObjectSpec, PolicySnapshot, PolicyStore, Propagation,
        Role,
    };
    use websec_xml::{Document, DocumentStore, Path};

    fn hospital_doc() -> Document {
        Document::parse(
            "<hospital><patient id=\"p1\" ssn=\"123\"><name>Ann</name><diagnosis>flu\
             </diagnosis></patient><admin><budget>100</budget></admin></hospital>",
        )
        .expect("fixture parses")
    }

    fn compile(
        store: &PolicyStore,
        strategy: ConflictStrategy,
        doc: &Document,
    ) -> std::sync::Arc<CompiledPolicies> {
        let mut documents = DocumentStore::new();
        documents.insert("h.xml", doc.clone());
        PolicySnapshot::new(store, strategy, &documents).compile()
    }

    fn codes(report: &Report) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn ws013_fires_on_covered_later_rule_and_respects_keys() {
        let doc = hospital_doc();
        let mut store = PolicyStore::new();
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Portion {
                    document: "h.xml".into(),
                    path: Path::parse("//patient").expect("path"),
                })
                .privilege(Privilege::Read)
                .grant(),
        );
        let compiled = compile(&store, ConflictStrategy::DenialsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        let found = run_policy_pass(&input, PolicyPassId::Ws013);
        assert_eq!(found.len(), 1, "portion rule is shadowed: {found:?}");

        // Under MostSpecificObject the finer portion rule wins ties, so it
        // is NOT shadowed.
        let compiled = compile(&store, ConflictStrategy::MostSpecificObject, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        assert!(run_policy_pass(&input, PolicyPassId::Ws013).is_empty());
    }

    #[test]
    fn ws014_tie_is_error_and_disjoint_subjects_are_clean() {
        let doc = hospital_doc();
        let mut store = PolicyStore::new();
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .priority(3)
                .grant(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .priority(3)
                .deny(),
        );
        let compiled = compile(&store, ConflictStrategy::ExplicitPriority, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        let found = run_policy_pass(&input, PolicyPassId::Ws014);
        assert!(
            found.iter().any(|d| d.severity == Severity::Error),
            "priority tie must be an error: {found:?}"
        );

        let mut store = PolicyStore::new();
        store.add(
            Authorization::for_subject(SubjectSpec::Identity("ann".into()))
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::Identity("bob".into()))
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .deny(),
        );
        let compiled = compile(&store, ConflictStrategy::ExplicitPriority, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        assert!(run_policy_pass(&input, PolicyPassId::Ws014).is_empty());
    }

    #[test]
    fn ws015_flags_only_rules_that_cover_nothing() {
        let doc = hospital_doc();
        let mut store = PolicyStore::new();
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("ghost.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        let compiled = compile(&store, ConflictStrategy::DenialsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        let found = run_policy_pass(&input, PolicyPassId::Ws015);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("ghost.xml"));
    }

    #[test]
    fn ws016_fires_only_when_the_dominator_actually_passes() {
        let doc = hospital_doc();
        let mut store = PolicyStore::new();
        store
            .hierarchy
            .add_seniority(Role::new("chief"), Role::new("intern"));
        store.add(
            Authorization::for_subject(SubjectSpec::InRole(Role::new("intern")))
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::InRole(Role::new("chief")))
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .deny(),
        );
        let compiled = compile(&store, ConflictStrategy::PermissionsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        assert_eq!(run_policy_pass(&input, PolicyPassId::Ws016).len(), 1);

        // Deny-wins closes the chain: the chief is denied, no escalation.
        let compiled = compile(&store, ConflictStrategy::DenialsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        assert!(run_policy_pass(&input, PolicyPassId::Ws016).is_empty());
    }

    #[test]
    fn ws017_fires_only_when_the_role_path_reopens_access() {
        let doc = hospital_doc();
        let mut store = PolicyStore::new();
        store.add(
            Authorization::for_subject(SubjectSpec::Identity("eve".into()))
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .deny(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::InRole(Role::new("staff")))
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        let compiled = compile(&store, ConflictStrategy::PermissionsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        assert_eq!(run_policy_pass(&input, PolicyPassId::Ws017).len(), 1);

        let compiled = compile(&store, ConflictStrategy::DenialsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        assert!(run_policy_pass(&input, PolicyPassId::Ws017).is_empty());
    }

    #[test]
    fn ws018_fires_on_uncascaded_denial_and_not_on_cascade() {
        let doc = hospital_doc();
        let mut store = PolicyStore::new();
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Portion {
                    document: "h.xml".into(),
                    path: Path::parse("/hospital/admin").expect("path"),
                })
                .privilege(Privilege::Read)
                .deny()
                .with_propagation(Propagation::None),
        );
        let compiled = compile(&store, ConflictStrategy::DenialsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        let found = run_policy_pass(&input, PolicyPassId::Ws018);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("admin"), "{found:?}");

        // Cascading the denial closes the channel.
        let mut store = PolicyStore::new();
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Portion {
                    document: "h.xml".into(),
                    path: Path::parse("/hospital/admin").expect("path"),
                })
                .privilege(Privilege::Read)
                .deny()
                .with_propagation(Propagation::Cascade),
        );
        let compiled = compile(&store, ConflictStrategy::DenialsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        assert!(run_policy_pass(&input, PolicyPassId::Ws018).is_empty());
    }

    #[test]
    fn verify_policies_is_deterministic() {
        let doc = hospital_doc();
        let mut store = PolicyStore::new();
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("h.xml".into()))
                .privilege(Privilege::Read)
                .grant(),
        );
        store.add(
            Authorization::for_subject(SubjectSpec::Anyone)
                .on(ObjectSpec::Document("ghost.xml".into()))
                .privilege(Privilege::Read)
                .deny(),
        );
        let compiled = compile(&store, ConflictStrategy::DenialsTakePrecedence, &doc);
        let input = PolicyVerifyInput::new(&compiled).with_document("h.xml", &doc);
        let a = verify_policies(&input).to_json();
        let b = verify_policies(&input).to_json();
        assert_eq!(a, b);
        assert!(codes(&verify_policies(&input)).contains(&"WS015"));
    }
}
