//! The single source of truth for every stable `WSxxx` code.
//!
//! Codes are minted in three places — the static analyzer passes
//! (`WS0xx`, [`crate::passes`] and [`crate::policy_verify`]), the
//! serving layer's runtime error enum (`WS1xx`,
//! `websec_core::Error`), and the concurrency detector (`WS110`/
//! `WS111`, `websec_core::sync`). Before this registry each side kept
//! its own list and nothing failed when they drifted. Now both sides
//! assert against [`REGISTRY`]: the analyzer proves every pass code is
//! registered with the right phase, and the core crate proves every
//! `Error` variant's code is registered as [`Phase::Runtime`] — an
//! exhaustive match on the variant list means adding a code to one
//! side without the other fails a test, not a code review.

use crate::diagnostics::Severity;

/// Which layer of the stack emits a code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Emitted by a static analyzer pass over configuration (WS0xx).
    Static,
    /// Emitted by the serving layer at request/update time (WS101–WS109).
    Runtime,
    /// Emitted by the lockdep/race detector (WS110/WS111).
    Concurrency,
}

/// Registry row: everything tooling needs to render or gate a code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code, e.g. `"WS014"`.
    pub code: &'static str,
    /// The *maximum* severity the code is emitted at (several passes
    /// emit a lower severity for weaker variants of the same finding).
    pub severity: Severity,
    /// The emitting layer.
    pub phase: Phase,
    /// One-line human description.
    pub description: &'static str,
}

/// Every stable code, in code order.
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: "WS001",
        severity: Severity::Error,
        phase: Phase::Static,
        description: "authorization conflict (grant and denial may both apply)",
    },
    CodeInfo {
        code: "WS002",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "shadowed or unreachable authorization rule",
    },
    CodeInfo {
        code: "WS003",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "MLS label flow: effective level varies across contexts",
    },
    CodeInfo {
        code: "WS004",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "privacy inference channel within a single table",
    },
    CodeInfo {
        code: "WS005",
        severity: Severity::Error,
        phase: Phase::Static,
        description: "dangling reference between configured stores",
    },
    CodeInfo {
        code: "WS006",
        severity: Severity::Error,
        phase: Phase::Static,
        description: "RDF schema-entailed triple below its premises' label",
    },
    CodeInfo {
        code: "WS007",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "cross-table privacy joinability closure",
    },
    CodeInfo {
        code: "WS008",
        severity: Severity::Error,
        phase: Phase::Static,
        description: "dissemination key over-coverage past entitlement",
    },
    CodeInfo {
        code: "WS009",
        severity: Severity::Error,
        phase: Phase::Static,
        description: "role-hierarchy privilege-escalation cycle",
    },
    CodeInfo {
        code: "WS010",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "context-label declassification without a sanitizer",
    },
    CodeInfo {
        code: "WS011",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "UDDI binding without a signed tModel chain",
    },
    CodeInfo {
        code: "WS012",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "credential type no enrolled profile can satisfy",
    },
    CodeInfo {
        code: "WS013",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "compiled-plane rule shadowing (later rule unreachable)",
    },
    CodeInfo {
        code: "WS014",
        severity: Severity::Error,
        phase: Phase::Static,
        description: "compiled-plane grant/deny conflict in one equivalence class",
    },
    CodeInfo {
        code: "WS015",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "dead policy: matches no element or attribute anywhere",
    },
    CodeInfo {
        code: "WS016",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "privilege escalation through the role-dominator closure",
    },
    CodeInfo {
        code: "WS017",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "revocation gap: revoked identity reachable via a role path",
    },
    CodeInfo {
        code: "WS018",
        severity: Severity::Warning,
        phase: Phase::Static,
        description: "inference channel: permitted views compose to denied content",
    },
    CodeInfo {
        code: "WS101",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "unknown document",
    },
    CodeInfo {
        code: "WS102",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "document label dominates the subject's clearance",
    },
    CodeInfo {
        code: "WS103",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "secure-channel transit failure",
    },
    CodeInfo {
        code: "WS104",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "strict boot gate found error findings",
    },
    CodeInfo {
        code: "WS105",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "malformed request",
    },
    CodeInfo {
        code: "WS106",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "shard poisoned / worker panicked (degraded)",
    },
    CodeInfo {
        code: "WS107",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "per-request deadline budget exhausted",
    },
    CodeInfo {
        code: "WS108",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "admission control shed the request",
    },
    CodeInfo {
        code: "WS109",
        severity: Severity::Error,
        phase: Phase::Runtime,
        description: "gated update introduced critical findings",
    },
    CodeInfo {
        code: "WS110",
        severity: Severity::Error,
        phase: Phase::Concurrency,
        description: "lock-order inversion (potential deadlock cycle)",
    },
    CodeInfo {
        code: "WS111",
        severity: Severity::Error,
        phase: Phase::Concurrency,
        description: "happens-before violation on a synchronizing atomic",
    },
];

/// Looks up a code's registry row.
#[must_use]
pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|info| info.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::PassId;
    use crate::policy_verify::PolicyPassId;
    use std::collections::BTreeSet;

    #[test]
    fn registry_is_sorted_and_distinct() {
        let codes: Vec<&str> = REGISTRY.iter().map(|i| i.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "registry must be sorted with no duplicates");
    }

    /// Exhaustive parity between the registry's Static rows and the two
    /// pass enums. Adding a pass without a registry row (or vice versa)
    /// fails here; the `match`es below additionally fail to *compile*
    /// when a new `PassId`/`PolicyPassId` variant is added, forcing the
    /// author to look at this test.
    #[test]
    fn static_codes_match_the_pass_enums_exhaustively() {
        let mut from_passes = BTreeSet::new();
        for pass in PassId::ALL {
            // Exhaustive: new variants must be added here and registered.
            let code = match pass {
                PassId::Ws001 => "WS001",
                PassId::Ws002 => "WS002",
                PassId::Ws003 => "WS003",
                PassId::Ws004 => "WS004",
                PassId::Ws005 => "WS005",
                PassId::Ws006 => "WS006",
                PassId::Ws007 => "WS007",
                PassId::Ws008 => "WS008",
                PassId::Ws009 => "WS009",
                PassId::Ws010 => "WS010",
                PassId::Ws011 => "WS011",
                PassId::Ws012 => "WS012",
            };
            assert_eq!(code, pass.code());
            from_passes.insert(code);
        }
        for pass in PolicyPassId::ALL {
            let code = match pass {
                PolicyPassId::Ws013 => "WS013",
                PolicyPassId::Ws014 => "WS014",
                PolicyPassId::Ws015 => "WS015",
                PolicyPassId::Ws016 => "WS016",
                PolicyPassId::Ws017 => "WS017",
                PolicyPassId::Ws018 => "WS018",
            };
            assert_eq!(code, pass.code());
            from_passes.insert(code);
        }
        let registered: BTreeSet<&str> = REGISTRY
            .iter()
            .filter(|i| i.phase == Phase::Static)
            .map(|i| i.code)
            .collect();
        assert_eq!(registered, from_passes);
    }

    #[test]
    fn concurrency_codes_are_the_detector_pair() {
        let registered: BTreeSet<&str> = REGISTRY
            .iter()
            .filter(|i| i.phase == Phase::Concurrency)
            .map(|i| i.code)
            .collect();
        assert_eq!(registered, BTreeSet::from(["WS110", "WS111"]));
    }

    #[test]
    fn lookup_finds_rows_and_rejects_unknowns() {
        let info = lookup("WS014").expect("registered");
        assert_eq!(info.phase, Phase::Static);
        assert_eq!(info.severity, Severity::Error);
        assert!(lookup("WS999").is_none());
    }

    #[test]
    fn runtime_rows_are_the_ws1xx_block() {
        let runtime: Vec<&str> = REGISTRY
            .iter()
            .filter(|i| i.phase == Phase::Runtime)
            .map(|i| i.code)
            .collect();
        assert_eq!(
            runtime,
            vec![
                "WS101", "WS102", "WS103", "WS104", "WS105", "WS106", "WS107", "WS108", "WS109"
            ]
        );
    }
}
